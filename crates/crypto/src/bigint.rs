//! Arbitrary-precision unsigned integers, from scratch.
//!
//! This is the arithmetic substrate for the Schnorr signature scheme, the
//! Chaum–Pedersen DLEQ proofs, and the VRF (all over RFC 3526 MODP groups).
//! Limbs are 64-bit, stored little-endian, always normalized (no trailing
//! zero limbs; zero is the empty limb vector).
//!
//! Division uses Knuth's Algorithm D. Modular exponentiation is
//! left-to-right square-and-multiply with a Montgomery-multiplication fast
//! path for odd multi-limb moduli (every prime this crate touches), making
//! 2048-bit Schnorr operations a few milliseconds; the simulation signer
//! avoids even that cost for high-volume runs.

use std::cmp::Ordering;
use std::fmt;

use rand::Rng;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use prb_crypto::bigint::BigUint;
///
/// let a = BigUint::from_u64(10).pow_mod(&BigUint::from_u64(20), &BigUint::from_hex("1000000007").unwrap());
/// assert_eq!(a, BigUint::from_u64(0xb03e8c6d2)); // 10^20 mod 0x1000000007
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian 64-bit limbs, normalized.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut n = BigUint {
            limbs: vec![lo, hi],
        };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first_nonzero = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first_nonzero..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to big-endian bytes left-padded to `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Vec<u8> {
        let raw = self.to_bytes_be();
        assert!(
            raw.len() <= len,
            "value needs {} bytes, buffer is {len}",
            raw.len()
        );
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        out
    }

    /// Parses a hex string (no prefix, case-insensitive).
    ///
    /// Accepts odd-length strings. Returns `None` on invalid characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        let padded = if s.len() % 2 == 1 {
            format!("0{s}")
        } else {
            s.to_owned()
        };
        let bytes = crate::hex::decode(&padded).ok()?;
        Some(Self::from_bytes_be(&bytes))
    }

    /// Hex representation without leading zeros ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        let s = crate::hex::encode(&self.to_bytes_be());
        s.trim_start_matches('0').to_owned()
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let limb = i / 64;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry != 0 {
            out.push(carry);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`, or `None` if the result would be negative.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        let mut n = BigUint { limbs: out };
        n.normalize();
        Some(n)
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &BigUint) -> BigUint {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// Schoolbook multiplication `self * other`.
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 64;
        let bit_shift = bits % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                out.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> BigUint {
        let limb_shift = bits / 64;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 64;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let lo = src[i] >> bit_shift;
                let hi = src.get(i + 1).map(|&l| l << (64 - bit_shift)).unwrap_or(0);
                out.push(lo | hi);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Divides by a single limb, returning `(quotient, remainder)`.
    fn div_rem_limb(&self, divisor: u64) -> (BigUint, u64) {
        assert_ne!(divisor, 0, "division by zero");
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quotient[i] = (cur / divisor as u128) as u64;
            rem = cur % divisor as u128;
        }
        let mut q = BigUint { limbs: quotient };
        q.normalize();
        (q, rem as u64)
    }

    /// Euclidean division: returns `(self / divisor, self % divisor)`.
    ///
    /// Implements Knuth TAOCP vol. 2 Algorithm D for multi-limb divisors.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        if self < divisor {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.div_rem_limb(divisor.limbs[0]);
            return (q, BigUint::from_u64(r));
        }

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs.last().expect("nonzero").leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        let n = v.len();
        let m = u.len() - n;
        u.push(0); // extra high limb u[m+n]

        let mut q = vec![0u64; m + 1];
        let v_top = v[n - 1];
        let v_second = v[n - 2];

        // D2..D7: main loop.
        for j in (0..=m).rev() {
            // D3: estimate qhat.
            let numerator = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
            let mut qhat = numerator / v_top as u128;
            let mut rhat = numerator % v_top as u128;
            while qhat >= 1u128 << 64
                || qhat * v_second as u128 > ((rhat << 64) | u[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += v_top as u128;
                if rhat >= 1u128 << 64 {
                    break;
                }
            }

            // D4: multiply and subtract u[j..j+n] -= qhat * v.
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let product = qhat * v[i] as u128 + carry;
                carry = product >> 64;
                let sub = u[j + i] as i128 - (product as u64) as i128 - borrow;
                if sub < 0 {
                    u[j + i] = (sub + (1i128 << 64)) as u64;
                    borrow = 1;
                } else {
                    u[j + i] = sub as u64;
                    borrow = 0;
                }
            }
            let sub = u[j + n] as i128 - carry as i128 - borrow;
            if sub < 0 {
                // D6: qhat was one too large; add divisor back.
                u[j + n] = (sub + (1i128 << 64)) as u64;
                qhat -= 1;
                let mut carry2 = 0u128;
                for i in 0..n {
                    let sum = u[j + i] as u128 + v[i] as u128 + carry2;
                    u[j + i] = sum as u64;
                    carry2 = sum >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry2 as u64);
            } else {
                u[j + n] = sub as u64;
            }
            q[j] = qhat as u64;
        }

        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint { limbs: u };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod modulus`.
    pub fn rem(&self, modulus: &BigUint) -> BigUint {
        self.div_rem(modulus).1
    }

    /// `(self * other) mod modulus`.
    pub fn mul_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        self.mul(other).rem(modulus)
    }

    /// `(self + other) mod modulus`. Both inputs must already be reduced.
    pub fn add_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        let sum = self.add(other);
        if &sum >= modulus {
            sum.sub(modulus)
        } else {
            sum
        }
    }

    /// `(self - other) mod modulus`. Both inputs must already be reduced.
    pub fn sub_mod(&self, other: &BigUint, modulus: &BigUint) -> BigUint {
        if self >= other {
            self.sub(other)
        } else {
            self.add(modulus).sub(other)
        }
    }

    /// Modular exponentiation `self^exponent mod modulus`.
    ///
    /// Odd multi-limb moduli (every prime this crate works with) take the
    /// Montgomery fast path — one REDC per step instead of a full Knuth
    /// division; other moduli fall back to plain square-and-multiply.
    ///
    /// Callers that exponentiate repeatedly under the same modulus should
    /// build a [`Montgomery`] context once and call [`Montgomery::pow`]
    /// instead: this convenience wrapper re-derives `n'` and `R² mod n` on
    /// every invocation.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is zero.
    pub fn pow_mod(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus == &BigUint::one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        if !modulus.is_even() && modulus.limbs.len() >= 2 {
            return Montgomery::new(modulus).pow(self, exponent);
        }
        crate::stats::record_modexp();
        self.pow_mod_plain(exponent, modulus)
    }

    /// The pre-Montgomery reference implementation (kept for the fallback
    /// and as the oracle in property tests).
    fn pow_mod_plain(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        let mut result = BigUint::one();
        let base = self.rem(modulus);
        // Left-to-right square and multiply.
        let bits = exponent.bit_len();
        for i in (0..bits).rev() {
            result = result.mul_mod(&result, modulus);
            if exponent.bit(i) {
                result = result.mul_mod(&base, modulus);
            }
        }
        result
    }

    /// Plain square-and-multiply oracle for the optimized paths.
    ///
    /// Every fast route in this crate ([`pow_mod`](Self::pow_mod),
    /// [`Montgomery::pow`], [`Montgomery::multi_pow`],
    /// [`FixedBaseTable::pow`]) is property-tested byte-identical against
    /// this implementation; it performs a full Knuth division per step and
    /// touches none of the precomputation machinery.
    pub fn pow_mod_reference(&self, exponent: &BigUint, modulus: &BigUint) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        if modulus == &BigUint::one() {
            return BigUint::zero();
        }
        if exponent.is_zero() {
            return BigUint::one();
        }
        self.pow_mod_plain(exponent, modulus)
    }

    /// The 4-bit window of the exponent starting at bit `4 * d`.
    ///
    /// Window boundaries never straddle a limb because 4 divides 64.
    fn window4(&self, d: usize) -> usize {
        let bit = 4 * d;
        match self.limbs.get(bit / 64) {
            Some(limb) => ((limb >> (bit % 64)) & 0xF) as usize,
            None => 0,
        }
    }

    /// Modular inverse via the extended Euclidean algorithm.
    ///
    /// Returns `None` when `gcd(self, modulus) != 1`.
    pub fn inv_mod(&self, modulus: &BigUint) -> Option<BigUint> {
        if modulus.is_zero() || self.is_zero() {
            return None;
        }
        // Extended Euclid with signed coefficients tracked as (sign, magnitude).
        let mut r0 = modulus.clone();
        let mut r1 = self.rem(modulus);
        let mut t0 = (false, BigUint::zero()); // coefficient of modulus
        let mut t1 = (false, BigUint::one()); // coefficient of self
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(&t0, &(t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if r0 != BigUint::one() {
            return None;
        }
        let (neg, mag) = t0;
        let mag = mag.rem(modulus);
        Some(if neg && !mag.is_zero() {
            modulus.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniformly samples a value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
        assert!(!bound.is_zero(), "empty sampling range");
        let bits = bound.bit_len();
        let limbs = bits.div_ceil(64);
        let top_mask = if bits.is_multiple_of(64) {
            u64::MAX
        } else {
            (1u64 << (bits % 64)) - 1
        };
        // Rejection sampling: expected < 2 iterations.
        loop {
            let mut candidate_limbs: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
            if let Some(top) = candidate_limbs.last_mut() {
                *top &= top_mask;
            }
            let mut candidate = BigUint {
                limbs: candidate_limbs,
            };
            candidate.normalize();
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Miller–Rabin probabilistic primality test with `rounds` random bases.
    ///
    /// Error probability is at most `4^-rounds` for composite inputs.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rounds: u32, rng: &mut R) -> bool {
        if self.is_zero() || self == &BigUint::one() {
            return false;
        }
        let two = BigUint::from_u64(2);
        if self == &two {
            return true;
        }
        if self.is_even() {
            return false;
        }
        for &p in &[3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
            let bp = BigUint::from_u64(p);
            if self == &bp {
                return true;
            }
            if self.rem(&bp).is_zero() {
                return false;
            }
        }
        // Write self - 1 = d * 2^s with d odd.
        let n_minus_1 = self.sub(&BigUint::one());
        let mut d = n_minus_1.clone();
        let mut s = 0usize;
        while d.is_even() {
            d = d.shr(1);
            s += 1;
        }
        'witness: for _ in 0..rounds {
            // Sample a base in [2, n-2].
            let upper = self.sub(&BigUint::from_u64(3));
            let a = BigUint::random_below(rng, &upper).add(&two);
            let mut x = a.pow_mod(&d, self);
            if x == BigUint::one() || x == n_minus_1 {
                continue 'witness;
            }
            for _ in 0..s - 1 {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }
}

/// Montgomery arithmetic context for a fixed odd modulus.
///
/// Precomputes `n' = -n^{-1} mod 2^64`, `R² mod n`, and `R mod n` (with
/// `R = 2^{64·k}`, `k` the limb count of `n`) so that modular
/// exponentiation needs only multiply-and-REDC steps — no division in the
/// hot loop. Build the context once per modulus and reuse it: the
/// precomputation performs two division-heavy reductions that would
/// otherwise be paid on every [`BigUint::pow_mod`] call.
#[derive(Clone, Debug)]
pub struct Montgomery {
    n: Vec<u64>,
    n_prime: u64,
    r2: BigUint,
    /// `R mod n`: the Montgomery form of 1.
    one_m: BigUint,
    modulus: BigUint,
}

/// Exponents at or below this bit count skip the windowed table (the
/// 14-multiplication precomputation would outweigh the saved multiplies).
const WINDOW_MIN_BITS: usize = 48;

impl Montgomery {
    /// Builds the context for an odd modulus `> 1`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus` is even, zero, or one.
    pub fn new(modulus: &BigUint) -> Self {
        assert!(
            !modulus.is_even() && !modulus.is_zero(),
            "Montgomery modulus must be odd"
        );
        assert!(modulus != &BigUint::one(), "Montgomery modulus must be > 1");
        let n = modulus.limbs.clone();
        let k = n.len();
        // Newton iteration for the inverse of n[0] modulo 2^64:
        // x_{i+1} = x_i·(2 − n0·x_i); 6 steps double precision to 64 bits.
        let n0 = n[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n_prime = inv.wrapping_neg();
        // R² mod n and R mod n, computed once with the general division.
        let r2 = BigUint::one().shl(2 * 64 * k).rem(modulus);
        let one_m = BigUint::one().shl(64 * k).rem(modulus);
        Montgomery {
            n,
            n_prime,
            r2,
            one_m,
            modulus: modulus.clone(),
        }
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.modulus
    }

    fn k(&self) -> usize {
        self.n.len()
    }

    /// Montgomery reduction of a (≤ 2k)-limb value `t`: returns
    /// `t · R^{-1} mod n`.
    fn redc(&self, mut t: Vec<u64>) -> BigUint {
        let k = self.k();
        t.resize(2 * k + 1, 0);
        for i in 0..k {
            let m = t[i].wrapping_mul(self.n_prime);
            let mut carry = 0u128;
            for (j, &nj) in self.n.iter().enumerate() {
                let cur = t[i + j] as u128 + (m as u128) * (nj as u128) + carry;
                t[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut idx = i + k;
            while carry != 0 {
                let cur = t[idx] as u128 + carry;
                t[idx] = cur as u64;
                carry = cur >> 64;
                idx += 1;
            }
        }
        let mut out = BigUint {
            limbs: t[k..].to_vec(),
        };
        out.normalize();
        if out >= self.modulus {
            out = out.sub(&self.modulus);
        }
        out
    }

    /// Montgomery product of two reduced, Montgomery-form values.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.redc(a.mul(b).limbs)
    }

    /// Converts into Montgomery form: `x·R = REDC(x · R²)`.
    fn to_mont(&self, x: &BigUint) -> BigUint {
        if x < &self.modulus {
            self.redc(x.mul(&self.r2).limbs)
        } else {
            self.redc(x.rem(&self.modulus).mul(&self.r2).limbs)
        }
    }

    /// Converts out of Montgomery form: `REDC(x·R) = x`.
    fn demont(&self, x_m: &BigUint) -> BigUint {
        self.redc(x_m.limbs.clone())
    }

    /// `base^exponent mod n`.
    ///
    /// Uses 4-bit fixed windows (left-to-right) for long exponents and
    /// plain square-and-multiply for short ones.
    pub fn pow(&self, base: &BigUint, exponent: &BigUint) -> BigUint {
        crate::stats::record_modexp();
        if exponent.is_zero() {
            return BigUint::one().rem(&self.modulus);
        }
        let base_m = self.to_mont(base);
        let result_m = if exponent.bit_len() <= WINDOW_MIN_BITS {
            self.pow_binary_m(&base_m, exponent)
        } else {
            self.pow_windowed_m(&base_m, exponent)
        };
        self.demont(&result_m)
    }

    /// Square-and-multiply on Montgomery-form values.
    fn pow_binary_m(&self, base_m: &BigUint, exponent: &BigUint) -> BigUint {
        let mut result_m = self.one_m.clone();
        for i in (0..exponent.bit_len()).rev() {
            result_m = self.mont_mul(&result_m, &result_m);
            if exponent.bit(i) {
                result_m = self.mont_mul(&result_m, base_m);
            }
        }
        result_m
    }

    /// Fixed 4-bit-window exponentiation on Montgomery-form values:
    /// ~`bits/4 · 15/16` multiplications instead of `bits/2`.
    fn pow_windowed_m(&self, base_m: &BigUint, exponent: &BigUint) -> BigUint {
        // powers[v - 1] = base^v for v in 1..=15.
        let mut powers = Vec::with_capacity(15);
        powers.push(base_m.clone());
        for v in 1..15 {
            let next = self.mont_mul(&powers[v - 1], base_m);
            powers.push(next);
        }
        let windows = exponent.bit_len().div_ceil(4);
        let mut result_m = self.one_m.clone();
        for d in (0..windows).rev() {
            if d != windows - 1 {
                for _ in 0..4 {
                    result_m = self.mont_mul(&result_m, &result_m);
                }
            }
            let v = exponent.window4(d);
            if v != 0 {
                result_m = self.mont_mul(&result_m, &powers[v - 1]);
            }
        }
        result_m
    }

    /// Straus/Shamir simultaneous multi-exponentiation:
    /// `∏ baseᵢ^expᵢ mod n` with one shared squaring chain.
    ///
    /// Cost is `max(bits)` squarings plus one multiplication per nonzero
    /// 4-bit exponent window — for `k` exponents of similar width this is
    /// nearly `k`× cheaper than `k` separate exponentiations. The canonical
    /// use is signature-style checks of the form `g^s · y^{-e} == r`.
    pub fn multi_pow(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        crate::stats::record_multi_pow();
        // Coalesce repeated bases first: `b^{e₁} · b^{e₂} = b^{e₁+e₂}`.
        // Batched signature checks repeat a handful of public keys across
        // many items, so merging saves both the per-base table build and
        // that base's window multiplications — the comparison scan is a few
        // word-compares per pair, noise next to one modular multiply.
        let mut merged: Vec<(&BigUint, BigUint)> = Vec::with_capacity(pairs.len());
        for &(base, e) in pairs {
            match merged.iter_mut().find(|(b, _)| *b == base) {
                Some((_, acc)) => *acc = acc.add(e),
                None => merged.push((base, e.clone())),
            }
        }
        let max_bits = merged.iter().map(|(_, e)| e.bit_len()).max().unwrap_or(0);
        if max_bits == 0 {
            return BigUint::one().rem(&self.modulus);
        }
        // tables[i][v - 1] = baseᵢ^v (Montgomery form) for v in 1..=15.
        let tables: Vec<Vec<BigUint>> = merged
            .iter()
            .map(|(base, _)| {
                let base_m = self.to_mont(base);
                let mut powers = Vec::with_capacity(15);
                powers.push(base_m);
                for v in 1..15 {
                    let next = self.mont_mul(&powers[v - 1], &powers[0]);
                    powers.push(next);
                }
                powers
            })
            .collect();
        let windows = max_bits.div_ceil(4);
        let mut result_m = self.one_m.clone();
        for d in (0..windows).rev() {
            if d != windows - 1 {
                for _ in 0..4 {
                    result_m = self.mont_mul(&result_m, &result_m);
                }
            }
            for (i, (_, e)) in merged.iter().enumerate() {
                let v = e.window4(d);
                if v != 0 {
                    result_m = self.mont_mul(&result_m, &tables[i][v - 1]);
                }
            }
        }
        self.demont(&result_m)
    }
}

/// A fixed-base precomputation table (Brickell–Gordon–McCurley–Wilson
/// radix-16 variant).
///
/// Stores `base^(v · 16^d)` in Montgomery form for every 4-bit digit
/// position `d` and digit value `v ∈ 1..=15`, so an exponentiation by any
/// exponent up to `max_bits` becomes one table multiplication per nonzero
/// digit — **no squarings at all**. For a 2048-bit group that is ~480
/// multiplications instead of ~3070, at a one-time build cost of ~15
/// multiplications per digit and ~2 MiB of memory.
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    digits: usize,
    /// Row-major: `rows[d * 15 + (v - 1)] = base^(v · 16^d)` (Montgomery).
    rows: Vec<BigUint>,
}

impl FixedBaseTable {
    /// Precomputes the table for exponents up to `max_exp_bits` bits.
    pub fn build(ctx: &Montgomery, base: &BigUint, max_exp_bits: usize) -> Self {
        crate::stats::record_table_build();
        let digits = max_exp_bits.div_ceil(4).max(1);
        let mut rows = Vec::with_capacity(digits * 15);
        // cur = base^(16^d) in Montgomery form.
        let mut cur = ctx.to_mont(base);
        for _ in 0..digits {
            let row_start = rows.len();
            rows.push(cur.clone());
            for v in 2..=15 {
                let prev = &rows[row_start + v - 2];
                rows.push(ctx.mont_mul(prev, &cur));
            }
            // base^(16^(d+1)) = base^(15·16^d) · base^(16^d).
            cur = ctx.mont_mul(&rows[row_start + 14], &cur);
        }
        FixedBaseTable { digits, rows }
    }

    /// The widest exponent this table covers, in bits.
    pub fn max_bits(&self) -> usize {
        self.digits * 4
    }

    /// `base^exponent mod n`, or `None` when the exponent is wider than
    /// the table (callers fall back to [`Montgomery::pow`]).
    pub fn pow(&self, ctx: &Montgomery, exponent: &BigUint) -> Option<BigUint> {
        if exponent.bit_len() > self.max_bits() {
            return None;
        }
        crate::stats::record_table_pow();
        let mut acc = ctx.one_m.clone();
        for d in 0..self.digits {
            let v = exponent.window4(d);
            if v != 0 {
                acc = ctx.mont_mul(&acc, &self.rows[d * 15 + v - 1]);
            }
        }
        Some(ctx.demont(&acc))
    }
}

/// The Jacobi symbol `(a/n)` for odd positive `n`, via the binary
/// reciprocity algorithm — no exponentiation.
///
/// For an odd prime `n` this is the Legendre symbol: `1` when `a` is a
/// nonzero quadratic residue, `-1` when a non-residue, `0` when `n`
/// divides `a`. In a safe-prime group `p = 2q + 1` the order-`q` subgroup
/// is exactly the set of quadratic residues, so `(x/p) == 1` decides
/// subgroup membership ~30× faster than the Euler-criterion
/// exponentiation `x^q mod p`.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn jacobi(a: &BigUint, n: &BigUint) -> i32 {
    assert!(!n.is_even() && !n.is_zero(), "Jacobi symbol needs odd n");
    // Binary algorithm: one initial reduction, then only shifts, compares
    // and subtractions — no long division in the loop. Each round strips at
    // least one bit from `a`, so the loop runs O(bits) cheap iterations
    // where the division-based variant pays a full `rem` per round.
    let mut a = a.rem(n);
    let mut n = n.clone();
    let mut t = 1i32;
    while !a.is_zero() {
        while a.is_even() {
            a = a.shr(1);
            // (2/n) = -1 iff n ≡ ±3 (mod 8).
            let r = n.low_u64() % 8;
            if r == 3 || r == 5 {
                t = -t;
            }
        }
        if a < n {
            // Quadratic reciprocity flips the sign iff both ≡ 3 (mod 4).
            std::mem::swap(&mut a, &mut n);
            if a.low_u64() % 4 == 3 && n.low_u64() % 4 == 3 {
                t = -t;
            }
        }
        // Both odd and a ≥ n: (a/n) = ((a−n)/n), and the difference is
        // even, so the next round halves it.
        a = a.sub(&n);
    }
    if n == BigUint::one() {
        t
    } else {
        0
    }
}

/// `a - b` on (sign, magnitude) pairs: returns sign-magnitude of the result.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with same signs: magnitude subtraction.
        (false, false) => {
            if a.1 >= b.1 {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        (true, true) => {
            if b.1 >= a.1 {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
        // (+a) - (-b) = a + b ; (-a) - (+b) = -(a + b)
        (false, true) => (false, a.1.add(&b.1)),
        (true, false) => (true, a.1.add(&b.1)),
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                Ordering::Equal
            }
            non_eq => non_eq,
        }
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(hex: &str) -> BigUint {
        BigUint::from_hex(hex).unwrap()
    }

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::from_u64(0), BigUint::zero());
        assert!(BigUint::zero().is_even());
        assert!(!BigUint::one().is_even());
    }

    #[test]
    fn bytes_roundtrip() {
        let n = b("0123456789abcdef0011223344556677");
        assert_eq!(BigUint::from_bytes_be(&n.to_bytes_be()), n);
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 0]), BigUint::zero());
        let padded = n.to_bytes_be_padded(32);
        assert_eq!(padded.len(), 32);
        assert_eq!(BigUint::from_bytes_be(&padded), n);
    }

    #[test]
    #[should_panic(expected = "buffer is 4")]
    fn padded_too_small_panics() {
        b("aabbccddee").to_bytes_be_padded(4);
    }

    #[test]
    fn hex_roundtrip() {
        for hex in [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef01",
            "100000000000000000000000001",
        ] {
            assert_eq!(b(hex).to_hex(), hex);
        }
        assert!(BigUint::from_hex("zz").is_none());
    }

    #[test]
    fn add_with_carry_chain() {
        let a = b("ffffffffffffffffffffffffffffffff");
        assert_eq!(
            a.add(&BigUint::one()),
            b("100000000000000000000000000000000")
        );
        assert_eq!(BigUint::zero().add(&a), a);
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = b("100000000000000000000000000000000");
        assert_eq!(
            a.sub(&BigUint::one()),
            b("ffffffffffffffffffffffffffffffff")
        );
        assert_eq!(a.checked_sub(&a.add(&BigUint::one())), None);
        assert_eq!(a.sub(&a), BigUint::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        BigUint::one().sub(&BigUint::from_u64(2));
    }

    #[test]
    fn mul_known_values() {
        assert_eq!(
            b("ffffffffffffffff").mul(&b("ffffffffffffffff")),
            b("fffffffffffffffe0000000000000001")
        );
        assert_eq!(b("abc").mul(&BigUint::zero()), BigUint::zero());
        assert_eq!(b("abc").mul(&BigUint::one()), b("abc"));
    }

    #[test]
    fn shifts() {
        let a = b("1");
        assert_eq!(a.shl(64), b("10000000000000000"));
        assert_eq!(a.shl(65), b("20000000000000000"));
        assert_eq!(b("20000000000000000").shr(65), b("1"));
        assert_eq!(b("ff").shr(200), BigUint::zero());
        assert_eq!(b("ff00").shr(8), b("ff"));
    }

    #[test]
    fn div_rem_small() {
        let (q, r) = b("64").div_rem(&b("a")); // 100 / 10
        assert_eq!(q, b("a"));
        assert_eq!(r, BigUint::zero());
        let (q, r) = b("65").div_rem(&b("a"));
        assert_eq!(q, b("a"));
        assert_eq!(r, BigUint::one());
    }

    #[test]
    fn div_rem_dividend_smaller() {
        let (q, r) = b("5").div_rem(&b("1000000000000000000000000"));
        assert_eq!(q, BigUint::zero());
        assert_eq!(r, b("5"));
    }

    #[test]
    fn div_rem_multi_limb_known() {
        // Computed with an independent tool:
        // 0x123456789abcdef0fedcba9876543210ffeeddccbbaa9988 /
        // 0x1000000000000000f = q: 0x123456789abcdeeffc...; verify via identity.
        let u = b("123456789abcdef0fedcba9876543210ffeeddccbbaa9988");
        let v = b("1000000000000000f");
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(q.mul(&v).add(&r), u);
    }

    #[test]
    fn div_rem_triggers_correction_step() {
        // Crafted so that qhat estimation overshoots (divisor with small
        // second limb, dividend near the boundary).
        let u = b("80000000000000000000000000000000000000000000000000000000");
        let v = b("8000000000000000000000000000000000000001");
        let (q, r) = u.div_rem(&v);
        assert!(r < v);
        assert_eq!(q.mul(&v).add(&r), u);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        b("5").div_rem(&BigUint::zero());
    }

    #[test]
    fn pow_mod_known_values() {
        let p = b("fffffffb"); // prime 2^32 - 5
                               // Fermat: a^(p-1) = 1 mod p
        let a = b("deadbeef");
        assert_eq!(a.pow_mod(&p.sub(&BigUint::one()), &p), BigUint::one());
        assert_eq!(a.pow_mod(&BigUint::zero(), &p), BigUint::one());
        assert_eq!(a.pow_mod(&BigUint::one(), &p), a.rem(&p));
        assert_eq!(a.pow_mod(&b("10"), &BigUint::one()), BigUint::zero());
    }

    #[test]
    fn inv_mod_known_values() {
        let p = b("fffffffb");
        let a = b("12345");
        let inv = a.inv_mod(&p).unwrap();
        assert_eq!(a.mul_mod(&inv, &p), BigUint::one());
        // Non-invertible: gcd(6, 9) = 3.
        assert_eq!(BigUint::from_u64(6).inv_mod(&BigUint::from_u64(9)), None);
        assert_eq!(BigUint::zero().inv_mod(&p), None);
    }

    #[test]
    fn add_sub_mod() {
        let m = b("11"); // 17
        let a = b("10"); // 16
        let c = a.add_mod(&a, &m); // 32 mod 17 = 15
        assert_eq!(c, b("f"));
        assert_eq!(b("3").sub_mod(&b("5"), &m), b("f")); // 3-5 mod 17 = 15
        assert_eq!(b("5").sub_mod(&b("3"), &m), b("2"));
    }

    #[test]
    fn miller_rabin_on_known_primes_and_composites() {
        let mut rng = StdRng::seed_from_u64(7);
        for p in [2u64, 3, 5, 17, 101, 65537, 4294967291, 4294967311] {
            assert!(
                BigUint::from_u64(p).is_probable_prime(16, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [1u64, 4, 100, 65539 * 3, 4294967297, 561, 41041] {
            // 561 and 41041 are Carmichael numbers.
            assert!(
                !BigUint::from_u64(c).is_probable_prime(16, &mut rng),
                "{c} should be composite"
            );
        }
        // A known 256-bit prime (secp256k1 field prime).
        let p256 = b("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        assert!(p256.is_probable_prime(8, &mut rng));
        assert!(!p256
            .add(&BigUint::from_u64(2))
            .is_probable_prime(8, &mut rng));
    }

    #[test]
    fn montgomery_matches_reference_on_odd_moduli() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..40 {
            // Random odd multi-limb modulus (2..=5 limbs).
            let limbs = 2 + (rng.gen::<u8>() % 4) as usize;
            let mut m_bytes = vec![0u8; limbs * 8];
            rng.fill(&mut m_bytes[..]);
            m_bytes[0] |= 0x80; // keep it multi-limb
            let last = m_bytes.len() - 1;
            m_bytes[last] |= 1; // odd
            let m = BigUint::from_bytes_be(&m_bytes);
            let base = BigUint::random_below(&mut rng, &m);
            let mut e_bytes = vec![0u8; 16];
            rng.fill(&mut e_bytes[..]);
            let e = BigUint::from_bytes_be(&e_bytes);
            assert_eq!(
                base.pow_mod(&e, &m),
                base.pow_mod_reference(&e, &m),
                "base={base} e={e} m={m}"
            );
        }
    }

    #[test]
    fn montgomery_edge_exponents() {
        let m = b("ffffffffffffffffffffffffffffff61"); // odd, 2 limbs
        let a = b("123456789abcdef0");
        assert_eq!(a.pow_mod(&BigUint::zero(), &m), BigUint::one());
        assert_eq!(a.pow_mod(&BigUint::one(), &m), a.rem(&m));
        assert_eq!(BigUint::zero().pow_mod(&b("5"), &m), BigUint::zero());
        assert_eq!(m.pow_mod(&b("3"), &m), BigUint::zero());
        // base larger than modulus reduces first.
        let big = m.mul(&b("7")).add(&b("2"));
        assert_eq!(big.pow_mod(&b("9"), &m), b("2").pow_mod(&b("9"), &m));
    }

    #[test]
    fn even_modulus_falls_back_correctly() {
        let m = b("10000000000000000000000000000000"); // even, 2^124
        let a = b("3");
        assert_eq!(a.pow_mod(&b("40"), &m), a.pow_mod_reference(&b("40"), &m));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound = b("100000000000000000001");
        for _ in 0..200 {
            let x = BigUint::random_below(&mut rng, &bound);
            assert!(x < bound);
        }
        // Tiny bound: always zero.
        for _ in 0..10 {
            assert!(BigUint::random_below(&mut rng, &BigUint::one()).is_zero());
        }
    }

    #[test]
    fn ordering() {
        assert!(b("100") > b("ff"));
        assert!(b("ff") < b("100"));
        assert_eq!(b("ff").cmp(&b("ff")), Ordering::Equal);
        assert!(b("10000000000000000") > b("ffffffffffffffff"));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", b("ff")), "0xff");
        assert_eq!(format!("{:?}", b("ff")), "BigUint(0xff)");
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
    }

    fn random_odd_modulus(rng: &mut StdRng, limbs: usize) -> BigUint {
        let mut m_bytes = vec![0u8; limbs * 8];
        rng.fill(&mut m_bytes[..]);
        m_bytes[0] |= 0x80; // keep the limb count
        let last = m_bytes.len() - 1;
        m_bytes[last] |= 1; // odd
        BigUint::from_bytes_be(&m_bytes)
    }

    #[test]
    fn cached_context_matches_oneshot_pow_mod() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            let limbs = 2 + (rng.gen::<u8>() % 3) as usize;
            let m = random_odd_modulus(&mut rng, limbs);
            let ctx = Montgomery::new(&m);
            let base = BigUint::random_below(&mut rng, &m);
            let e_limbs = 1 + (rng.gen::<u8>() % 3) as usize;
            let e = random_odd_modulus(&mut rng, e_limbs);
            assert_eq!(ctx.pow(&base, &e), base.pow_mod(&e, &m));
            assert_eq!(ctx.pow(&base, &BigUint::zero()), BigUint::one());
            // Base larger than the modulus reduces first.
            let big = base.add(&m);
            assert_eq!(ctx.pow(&big, &e), base.pow_mod(&e, &m));
        }
    }

    #[test]
    fn windowed_and_binary_paths_agree() {
        let mut rng = StdRng::seed_from_u64(22);
        let m = random_odd_modulus(&mut rng, 4);
        let ctx = Montgomery::new(&m);
        let base = BigUint::random_below(&mut rng, &m);
        // Exponents straddling WINDOW_MIN_BITS take different code paths.
        for bits in [1usize, 17, 47, 48, 49, 130, 255] {
            let e = BigUint::one().shl(bits).sub(&BigUint::one());
            assert_eq!(
                ctx.pow(&base, &e),
                base.pow_mod_reference(&e, &m),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn multi_pow_matches_sequential_product() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..10 {
            let limbs = 2 + (rng.gen::<u8>() % 3) as usize;
            let m = random_odd_modulus(&mut rng, limbs);
            let ctx = Montgomery::new(&m);
            let bases: Vec<BigUint> = (0..3)
                .map(|_| BigUint::random_below(&mut rng, &m))
                .collect();
            let exps: Vec<BigUint> = vec![
                random_odd_modulus(&mut rng, 2),
                BigUint::from_u64(rng.gen()),
                BigUint::zero(),
            ];
            let pairs: Vec<(&BigUint, &BigUint)> = bases.iter().zip(exps.iter()).collect();
            let got = ctx.multi_pow(&pairs);
            let want = bases
                .iter()
                .zip(exps.iter())
                .fold(BigUint::one(), |acc, (b, e)| {
                    acc.mul_mod(&b.pow_mod_reference(e, &m), &m)
                });
            assert_eq!(got, want);
        }
        // Empty product is 1.
        let m = b("ffffffffffffffffffffffffffffff61");
        assert_eq!(Montgomery::new(&m).multi_pow(&[]), BigUint::one());
    }

    #[test]
    fn fixed_base_table_matches_reference() {
        let mut rng = StdRng::seed_from_u64(24);
        let m = random_odd_modulus(&mut rng, 4);
        let ctx = Montgomery::new(&m);
        let base = BigUint::random_below(&mut rng, &m);
        let table = FixedBaseTable::build(&ctx, &base, 256);
        assert_eq!(table.max_bits(), 256);
        for _ in 0..10 {
            let e = random_odd_modulus(&mut rng, 4);
            assert_eq!(table.pow(&ctx, &e).unwrap(), base.pow_mod_reference(&e, &m));
        }
        assert_eq!(table.pow(&ctx, &BigUint::zero()).unwrap(), BigUint::one());
        assert_eq!(table.pow(&ctx, &BigUint::one()).unwrap(), base.rem(&m));
        // Exponent wider than the table: caller must fall back.
        let wide = BigUint::one().shl(257);
        assert_eq!(table.pow(&ctx, &wide), None);
    }

    #[test]
    fn jacobi_matches_euler_criterion_on_small_prime() {
        // p = 2^32 - 5 is prime; Euler: (a/p) = a^((p-1)/2) mod p.
        let p = b("fffffffb");
        let exp = p.shr(1);
        let mut rng = StdRng::seed_from_u64(25);
        for _ in 0..50 {
            let a = BigUint::random_below(&mut rng, &p);
            let euler = a.pow_mod(&exp, &p);
            let want = if a.is_zero() {
                0
            } else if euler == BigUint::one() {
                1
            } else {
                -1
            };
            assert_eq!(jacobi(&a, &p), want, "a={a}");
        }
        assert_eq!(jacobi(&BigUint::zero(), &p), 0);
        assert_eq!(jacobi(&p, &p), 0);
    }

    #[test]
    #[should_panic(expected = "odd n")]
    fn jacobi_rejects_even_modulus() {
        jacobi(&b("3"), &b("10"));
    }

    #[test]
    #[should_panic(expected = "must be odd")]
    fn montgomery_rejects_even_modulus() {
        Montgomery::new(&b("10"));
    }
}

//! A from-scratch implementation of the SHA-256 collision-resistant hash
//! function (FIPS 180-4).
//!
//! The paper requires a public collision-resistant hash function `H` for
//! block chaining (`h' = H(B)`, Chain Integrity property in §3.1) and for
//! transaction identifiers. This module provides both a streaming
//! [`Sha256`] hasher and the one-shot [`sha256`] convenience function.
//!
//! # Examples
//!
//! ```
//! use prb_crypto::sha256::{sha256, Sha256};
//!
//! let d1 = sha256(b"abc");
//! let mut h = Sha256::new();
//! h.update(b"a");
//! h.update(b"bc");
//! assert_eq!(h.finalize(), d1);
//! ```

use std::fmt;

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// A SHA-256 digest.
///
/// Wraps the raw 32 bytes and provides hex formatting plus constant-time
/// friendly equality (derived `Eq` on fixed arrays; timing is irrelevant in
/// the simulation context but the type keeps digests distinct from plain
/// byte arrays per the newtype guideline).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Returns the digest as an owned byte array.
    pub fn to_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Builds a digest from exactly 32 bytes.
    ///
    /// Returns `None` when `bytes` is not 32 bytes long.
    pub fn from_slice(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != DIGEST_LEN {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        out.copy_from_slice(bytes);
        Some(Digest(out))
    }

    /// Hex-encodes the digest.
    pub fn to_hex(&self) -> String {
        crate::hex::encode(&self.0)
    }

    /// Parses a digest from a 64-character hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        let bytes = crate::hex::decode(s).ok()?;
        Self::from_slice(&bytes)
    }

    /// Interprets the first 8 bytes as a big-endian `u64`.
    ///
    /// Used where a pseudorandom integer is derived from a hash (e.g. the
    /// VRF-based leader election compares hash outputs numerically).
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has 32 bytes"))
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use prb_crypto::sha256::Sha256;
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let digest = hasher.finalize();
/// assert_eq!(
///     digest.to_hex(),
///     "b94d27b9934d3e08a52e52d7da7dabfac484efe37a5380ee9088f7ace2efcde9"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffer_len > 0 {
            let want = 64 - self.buffer_len;
            let take = want.min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffer_len = input.len();
        }
        self
    }

    /// Absorbs a length-prefixed field, for unambiguous multi-field hashing.
    ///
    /// Writes the field length as an 8-byte big-endian integer followed by
    /// the bytes, so that `("ab", "c")` and `("a", "bc")` hash differently.
    pub fn update_field(&mut self, data: &[u8]) -> &mut Self {
        self.update(&(data.len() as u64).to_be_bytes());
        self.update(data)
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_raw(&[0x80]);
        while self.buffer_len != 56 {
            self.update_raw(&[0]);
        }
        self.update_raw(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    /// Like `update` but does not advance `total_len` (used for padding).
    fn update_raw(&mut self, data: &[u8]) {
        for &byte in data {
            self.buffer[self.buffer_len] = byte;
            self.buffer_len += 1;
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("chunk of 4"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// let d = prb_crypto::sha256::sha256(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

/// Hashes a sequence of length-prefixed fields with a domain-separation tag.
///
/// Every hash use in the protocol goes through a distinct `domain` so that
/// a hash computed in one context can never be replayed in another (e.g. a
/// transaction id never collides with a block hash input).
pub fn hash_fields(domain: &str, fields: &[&[u8]]) -> Digest {
    let mut hasher = Sha256::new();
    hasher.update_field(domain.as_bytes());
    for field in fields {
        hasher.update_field(field);
    }
    hasher.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known test vectors.
    #[test]
    fn empty_vector() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc_vector() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_vector() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a_vector() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_for_all_split_points() {
        let data: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let want = sha256(&data);
        for split in 0..data.len() {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn update_field_is_injective_on_boundaries() {
        let mut a = Sha256::new();
        a.update_field(b"ab").update_field(b"c");
        let mut b = Sha256::new();
        b.update_field(b"a").update_field(b"bc");
        assert_ne!(a.finalize(), b.finalize());
    }

    #[test]
    fn hash_fields_domain_separates() {
        assert_ne!(
            hash_fields("tx", &[b"payload"]),
            hash_fields("block", &[b"payload"])
        );
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex("ab"), None);
    }

    #[test]
    fn digest_from_slice_checks_length() {
        assert!(Digest::from_slice(&[0u8; 32]).is_some());
        assert!(Digest::from_slice(&[0u8; 31]).is_none());
        assert!(Digest::from_slice(&[0u8; 33]).is_none());
    }

    #[test]
    fn digest_to_u64_is_prefix() {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&0x0123_4567_89ab_cdefu64.to_be_bytes());
        assert_eq!(Digest(bytes).to_u64(), 0x0123_4567_89ab_cdef);
    }
}

//! Randomized linear-combination (RLC) batch verification for Schnorr
//! signatures and DLEQ proofs.
//!
//! A governor screening a block verifies dozens of signatures against the
//! same handful of provider keys; a stake-block certificate carries one
//! signature per governor over the *same* message. Verifying each item
//! independently repeats the most expensive part — a full-width
//! exponentiation chain — `n` times. Batch verification instead checks one
//! random linear combination of all `n` statements:
//!
//! For Schnorr (`g^{s_i} == r_i · y_i^{e_i}`), sample small non-zero
//! randomizers `z_i` and check
//!
//! ```text
//! g^{Σ z_i·s_i mod q}  ==  Π r_i^{z_i} · y_i^{z_i·e_i}
//! ```
//!
//! with a single Straus multi-exponentiation on the right. If any single
//! statement is false, the combined check fails except with probability
//! `≤ 2^-64` per forged item (the randomizer width). The left side is one
//! fixed-base `pow_g`; the right side shares one squaring chain whose
//! length is the *randomized* exponent width (`64 + 256` bits), not the
//! group width — that asymmetry is where the batch win comes from, and why
//! `z_i·e_i` is deliberately **not** reduced mod `q` (reduction would
//! stretch every right-hand exponent back to full group width and cost
//! more than sequential verification).
//!
//! DLEQ proofs (`g^{s_i} == a_i·y_i^{c_i}` and `h_i^{s_i} == b_i·z_i^{c_i}`)
//! batch the same way with two independent randomizers `u_i`, `v_i` per
//! proof, folding both sides of every proof into one equation.
//!
//! # Randomizer derivation
//!
//! The `z_i` are derived by hashing the entire batch (Fiat–Shamir style, as
//! in deterministic ed25519 batch verification): reproducible across runs
//! and threads, no RNG plumbing, and an adversary controlling batch items
//! cannot aim at the randomizers without inverting SHA-256.
//!
//! # Failure bisection contract
//!
//! On batch failure the batch is split in half and each half re-checked
//! recursively; single-item leaves fall back to the per-item verifier.
//! [`verify_batch`] therefore returns `Err(indices)` naming **exactly** the
//! items that fail individual verification — callers get per-item verdicts
//! (for the governor's memo cache and forgery attribution) at roughly
//! `O(k·log n)` extra combined checks for `k` bad items instead of `n`
//! sequential ones.

use crate::bigint::BigUint;
use crate::dleq::{self, DleqProof, DleqStatement};
use crate::group::SchnorrGroup;
use crate::schnorr::{self, Signature, VerifyingKey};
use crate::sha256::Sha256;

/// Outcome of a batch check: `Ok(())` when every item verifies, otherwise
/// the sorted indices of the items that fail individual verification.
pub type BatchResult = Result<(), Vec<usize>>;

/// Randomizer width in bytes (64 bits). This keeps the combined right-hand
/// exponents short — the whole point of the batch — while bounding the
/// per-item cheat probability by `2^-64`, ample for a simulation and in
/// line with batch-verification practice.
const RANDOMIZER_BYTES: usize = 8;

type SchnorrItem<'a> = (usize, &'a [u8], &'a Signature, &'a VerifyingKey);
type DleqItem<'a> = (usize, &'a DleqStatement<'a>, &'a DleqProof);

/// Verifies a batch of Schnorr signatures.
///
/// Equivalent to calling [`VerifyingKey::verify`] on every item (property
/// tests pin this), but sublinear in full-width exponentiations: one
/// `pow_g` plus one Straus multi-exponentiation over short randomized
/// exponents per group represented in the batch. Mixed-group batches are
/// partitioned and combined per group.
///
/// Returns `Err` with the sorted indices of the offending items, found by
/// bisection (see the module docs for the contract).
pub fn verify_batch(items: &[(&[u8], &Signature, &VerifyingKey)]) -> BatchResult {
    crate::stats::record_batch(items.len() as u64);
    let mut parts: Vec<(&SchnorrGroup, Vec<SchnorrItem<'_>>)> = Vec::new();
    let mut invalid = Vec::new();
    for (idx, &(msg, sig, vk)) in items.iter().enumerate() {
        let group = vk.group();
        // Degenerate values (r outside the subgroup, s out of range) cannot
        // enter the linear combination; they fail outright.
        if !group.is_element(sig.r()) || sig.s() >= group.q() {
            invalid.push(idx);
            continue;
        }
        match parts.iter_mut().find(|(g, _)| *g == group) {
            Some((_, v)) => v.push((idx, msg, sig, vk)),
            None => parts.push((group, vec![(idx, msg, sig, vk)])),
        }
    }
    for (group, part) in &parts {
        schnorr_check_or_bisect(group, part, &mut invalid);
    }
    finish(invalid)
}

/// Verifies a batch of DLEQ proofs against their statements.
///
/// Equivalent to calling [`DleqProof::verify`] on every item; same
/// partitioning, randomization, and bisection contract as [`verify_batch`].
pub fn verify_dleq_batch(items: &[(&DleqStatement<'_>, &DleqProof)]) -> BatchResult {
    crate::stats::record_batch(items.len() as u64);
    let mut parts: Vec<(&SchnorrGroup, Vec<DleqItem<'_>>)> = Vec::new();
    let mut invalid = Vec::new();
    for (idx, &(st, proof)) in items.iter().enumerate() {
        let group = st.group;
        if !group.is_element(proof.a()) || !group.is_element(proof.b()) || proof.s() >= group.q() {
            invalid.push(idx);
            continue;
        }
        match parts.iter_mut().find(|(g, _)| *g == group) {
            Some((_, v)) => v.push((idx, st, proof)),
            None => parts.push((group, vec![(idx, st, proof)])),
        }
    }
    for (group, part) in &parts {
        dleq_check_or_bisect(group, part, &mut invalid);
    }
    finish(invalid)
}

fn finish(mut invalid: Vec<usize>) -> BatchResult {
    if invalid.is_empty() {
        Ok(())
    } else {
        invalid.sort_unstable();
        Err(invalid)
    }
}

fn schnorr_check_or_bisect(
    group: &SchnorrGroup,
    items: &[SchnorrItem<'_>],
    invalid: &mut Vec<usize>,
) {
    match items {
        [] => {}
        // A single item gains nothing from the linear combination; the
        // per-key verifier (with its trained tables) is the cheapest check
        // and doubles as the bisection leaf.
        [(idx, msg, sig, vk)] => {
            crate::stats::record_batch_fallback(1);
            if !vk.verify(msg, sig) {
                invalid.push(*idx);
            }
        }
        _ => {
            if schnorr_rlc_holds(group, items) {
                return;
            }
            crate::stats::record_batch_bisect();
            let mid = items.len() / 2;
            schnorr_check_or_bisect(group, &items[..mid], invalid);
            schnorr_check_or_bisect(group, &items[mid..], invalid);
        }
    }
}

/// The combined Schnorr check
/// `g^{Σ z_i·s_i} == Π r_i^{z_i} · y_i^{z_i·e_i}` for pre-validated items.
fn schnorr_rlc_holds(group: &SchnorrGroup, items: &[SchnorrItem<'_>]) -> bool {
    let zs = derive_randomizers(b"schnorr-batch", group, items.len(), |h| {
        for (_, msg, sig, vk) in items {
            h.update_field(&group.element_to_bytes(sig.r()));
            h.update_field(&sig.s().to_bytes_be_padded(group.element_len()));
            h.update_field(&group.element_to_bytes(vk.element()));
            h.update_field(msg);
        }
    });
    // Generator exponent: reduced mod q so it stays within the generator
    // table's width (scalar arithmetic is cheap; the table is sized to |q|
    // bits). Right-hand exponents: z_i and the unreduced product z_i·e_i.
    let mut s_comb = BigUint::zero();
    let mut ze = Vec::with_capacity(items.len());
    for ((_, msg, sig, vk), z) in items.iter().zip(&zs) {
        let e = schnorr::challenge(group, sig.r(), vk.element(), msg);
        s_comb = group.scalar_add(&s_comb, &group.scalar_mul(z, sig.s()));
        ze.push(z.mul(&e));
    }
    let mut pairs = Vec::with_capacity(2 * items.len());
    for ((_, _, sig, vk), (z, ze)) in items.iter().zip(zs.iter().zip(&ze)) {
        pairs.push((sig.r(), z));
        pairs.push((vk.element(), ze));
    }
    group.pow_g(&s_comb) == group.multi_pow(&pairs)
}

fn dleq_check_or_bisect(group: &SchnorrGroup, items: &[DleqItem<'_>], invalid: &mut Vec<usize>) {
    match items {
        [] => {}
        [(idx, st, proof)] => {
            crate::stats::record_batch_fallback(1);
            if !proof.verify(st) {
                invalid.push(*idx);
            }
        }
        _ => {
            if dleq_rlc_holds(group, items) {
                return;
            }
            crate::stats::record_batch_bisect();
            let mid = items.len() / 2;
            dleq_check_or_bisect(group, &items[..mid], invalid);
            dleq_check_or_bisect(group, &items[mid..], invalid);
        }
    }
}

/// The combined DLEQ check with per-proof randomizers `u_i`, `v_i`:
///
/// ```text
/// g^{Σ u_i·s_i} · Π h_i^{v_i·s_i}
///     == Π a_i^{u_i} · y_i^{u_i·c_i} · b_i^{v_i} · z_i^{v_i·c_i}
/// ```
///
/// Statement bases equal to the group generator fold into one fixed-base
/// `pow_g`; the `h_i` are statement-specific (fresh per VRF message), so
/// their exponents `v_i·s_i` are reduced mod `q` (full width either way)
/// and share the left-hand squaring chain. The right-hand exponents stay
/// short (`64 + 256` bits) and unreduced.
fn dleq_rlc_holds(group: &SchnorrGroup, items: &[DleqItem<'_>]) -> bool {
    let rs = derive_randomizers(b"dleq-batch", group, 2 * items.len(), |h| {
        for (_, st, proof) in items {
            for el in [st.g, st.y, st.h, st.z, proof.a(), proof.b()] {
                h.update_field(&group.element_to_bytes(el));
            }
            h.update_field(&proof.s().to_bytes_be_padded(group.element_len()));
        }
    });
    let mut s_g = BigUint::zero();
    // Owned exponents; the pair slices below borrow from these.
    let mut lhs_owned: Vec<(&BigUint, BigUint)> = Vec::with_capacity(2 * items.len());
    let mut rhs_owned: Vec<(BigUint, BigUint)> = Vec::with_capacity(items.len());
    for ((_, st, proof), uv) in items.iter().zip(rs.chunks(2)) {
        let (u, v) = (&uv[0], &uv[1]);
        let c = dleq::challenge(st, proof.a(), proof.b());
        let us = group.scalar_mul(u, proof.s());
        if st.g == group.g() {
            s_g = group.scalar_add(&s_g, &us);
        } else {
            lhs_owned.push((st.g, us));
        }
        lhs_owned.push((st.h, group.scalar_mul(v, proof.s())));
        rhs_owned.push((u.mul(&c), v.mul(&c)));
    }
    let lhs_pairs: Vec<(&BigUint, &BigUint)> =
        lhs_owned.iter().map(|(base, e)| (*base, e)).collect();
    let lhs = group.mul(&group.pow_g(&s_g), &group.multi_pow(&lhs_pairs));
    let mut rhs_pairs: Vec<(&BigUint, &BigUint)> = Vec::with_capacity(4 * items.len());
    for (((_, st, proof), uv), (uc, vc)) in items.iter().zip(rs.chunks(2)).zip(&rhs_owned) {
        rhs_pairs.push((proof.a(), &uv[0]));
        rhs_pairs.push((st.y, uc));
        rhs_pairs.push((proof.b(), &uv[1]));
        rhs_pairs.push((st.z, vc));
    }
    lhs == group.multi_pow(&rhs_pairs)
}

/// Derives `count` non-zero 64-bit randomizers by hashing the whole batch
/// transcript (written by `absorb`) and expanding per index.
fn derive_randomizers(
    domain: &'static [u8],
    group: &SchnorrGroup,
    count: usize,
    absorb: impl FnOnce(&mut Sha256),
) -> Vec<BigUint> {
    let mut h = Sha256::new();
    h.update_field(b"batch-randomizer");
    h.update_field(domain);
    h.update_field(group.name().as_bytes());
    absorb(&mut h);
    let base = h.finalize();
    (0..count)
        .map(|i| {
            let mut hi = Sha256::new();
            hi.update_field(b"batch-z");
            hi.update_field(base.as_bytes());
            hi.update_field(&(i as u64).to_be_bytes());
            let d = hi.finalize();
            let z = u64::from_be_bytes(
                d.as_bytes()[..RANDOMIZER_BYTES]
                    .try_into()
                    .expect("8 bytes"),
            );
            // A zero randomizer would drop its item from the combination;
            // probability 2^-64, but cheap to exclude outright.
            BigUint::from_u64(z.max(1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schnorr::SigningKey;

    fn keys(group: &SchnorrGroup, n: usize) -> Vec<SigningKey> {
        (0..n)
            .map(|i| SigningKey::from_seed(group, format!("batch-key-{i}").as_bytes()))
            .collect()
    }

    /// Textbook per-item verification: the oracle every batch result is
    /// pinned to (same reference as `schnorr::tests::verify_reference`).
    fn sequential_verdicts(items: &[(&[u8], &Signature, &VerifyingKey)]) -> Vec<bool> {
        items
            .iter()
            .map(|(msg, sig, vk)| {
                let group = vk.group();
                if !group.is_element(sig.r()) || sig.s() >= group.q() {
                    return false;
                }
                let e = schnorr::challenge(group, sig.r(), vk.element(), msg);
                let lhs = group.g().pow_mod_reference(sig.s(), group.p());
                let ye = vk.element().pow_mod_reference(&e, group.p());
                lhs == group.mul(sig.r(), &ye)
            })
            .collect()
    }

    fn batch_verdicts(items: &[(&[u8], &Signature, &VerifyingKey)]) -> Vec<bool> {
        match verify_batch(items) {
            Ok(()) => vec![true; items.len()],
            Err(bad) => {
                let mut v = vec![true; items.len()];
                for i in bad {
                    v[i] = false;
                }
                v
            }
        }
    }

    #[test]
    fn all_valid_batch_accepts_across_groups() {
        for group in [SchnorrGroup::test_256(), SchnorrGroup::test_512()] {
            let sks = keys(&group, 3);
            let msgs: Vec<Vec<u8>> = (0..8u32).map(|i| i.to_be_bytes().to_vec()).collect();
            let sigs: Vec<Signature> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| sks[i % 3].sign(m))
                .collect();
            let items: Vec<(&[u8], &Signature, &VerifyingKey)> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| (&m[..], &sigs[i], sks[i % 3].verifying_key()))
                .collect();
            assert_eq!(verify_batch(&items), Ok(()), "{}", group.name());
        }
    }

    #[test]
    fn bisection_names_exactly_the_forged_indices() {
        let group = SchnorrGroup::test_256();
        let sks = keys(&group, 2);
        let msgs: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut sigs: Vec<Signature> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| sks[i % 2].sign(m))
            .collect();
        // Forge items 2 and 7: swap in signatures over a different message.
        sigs[2] = sks[0].sign(b"not message 2");
        sigs[7] = sks[1].sign(b"not message 7");
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (&m[..], &sigs[i], sks[i % 2].verifying_key()))
            .collect();
        assert_eq!(verify_batch(&items), Err(vec![2, 7]));
        assert_eq!(batch_verdicts(&items), sequential_verdicts(&items));
    }

    #[test]
    fn degenerate_signatures_rejected_without_poisoning_batch() {
        let group = SchnorrGroup::test_256();
        let sks = keys(&group, 1);
        let good = sks[0].sign(b"good");
        // r outside the subgroup; s out of range.
        let bad_r = Signature::from_parts(group.p().sub(&BigUint::one()), good.s().clone());
        let bad_s = Signature::from_parts(good.r().clone(), group.q().clone());
        let vk = sks[0].verifying_key();
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = vec![
            (b"good", &good, vk),
            (b"good", &bad_r, vk),
            (b"good", &bad_s, vk),
        ];
        assert_eq!(verify_batch(&items), Err(vec![1, 2]));
    }

    #[test]
    fn mixed_group_batches_partition_correctly() {
        let g256 = SchnorrGroup::test_256();
        let g512 = SchnorrGroup::test_512();
        let sk256 = SigningKey::from_seed(&g256, b"mixed-256");
        let sk512 = SigningKey::from_seed(&g512, b"mixed-512");
        let s1 = sk256.sign(b"m1");
        let s2 = sk512.sign(b"m2");
        let forged = sk512.sign(b"elsewhere");
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = vec![
            (b"m1", &s1, sk256.verifying_key()),
            (b"m2", &s2, sk512.verifying_key()),
            (b"m3", &forged, sk512.verifying_key()),
        ];
        assert_eq!(verify_batch(&items), Err(vec![2]));
    }

    #[test]
    fn empty_and_singleton_batches() {
        assert_eq!(verify_batch(&[]), Ok(()));
        let group = SchnorrGroup::test_256();
        let sk = SigningKey::from_seed(&group, b"solo");
        let sig = sk.sign(b"m");
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> = vec![(b"m", &sig, sk.verifying_key())];
        assert_eq!(verify_batch(&items), Ok(()));
        let items: Vec<(&[u8], &Signature, &VerifyingKey)> =
            vec![(b"other", &sig, sk.verifying_key())];
        assert_eq!(verify_batch(&items), Err(vec![0]));
    }

    #[test]
    fn dleq_batch_accepts_valid_and_names_invalid() {
        let group = SchnorrGroup::test_256();
        let xs: Vec<BigUint> = (1..=5u64)
            .map(|i| BigUint::from_u64(i * 1000 + 7))
            .collect();
        let hs: Vec<BigUint> = (0..5u32)
            .map(|i| group.hash_to_group("batch-test", &i.to_be_bytes()))
            .collect();
        let ys: Vec<BigUint> = xs.iter().map(|x| group.pow_g(x)).collect();
        let mut zs: Vec<BigUint> = xs.iter().zip(&hs).map(|(x, h)| group.pow(h, x)).collect();
        let sts: Vec<DleqStatement<'_>> = (0..5)
            .map(|i| DleqStatement {
                group: &group,
                g: group.g(),
                y: &ys[i],
                h: &hs[i],
                z: &zs[i],
            })
            .collect();
        let proofs: Vec<DleqProof> = sts
            .iter()
            .zip(&xs)
            .map(|(st, x)| DleqProof::prove(st, x))
            .collect();
        let items: Vec<(&DleqStatement<'_>, &DleqProof)> = sts.iter().zip(&proofs).collect();
        assert_eq!(verify_dleq_batch(&items), Ok(()));
        // Corrupt statement 3: z no longer matches the proven exponent.
        zs[3] = group.pow(&hs[3], &BigUint::from_u64(99));
        let sts_bad: Vec<DleqStatement<'_>> = (0..5)
            .map(|i| DleqStatement {
                group: &group,
                g: group.g(),
                y: &ys[i],
                h: &hs[i],
                z: &zs[i],
            })
            .collect();
        let items_bad: Vec<(&DleqStatement<'_>, &DleqProof)> =
            sts_bad.iter().zip(&proofs).collect();
        assert_eq!(verify_dleq_batch(&items_bad), Err(vec![3]));
    }

    #[test]
    fn dleq_batch_rejects_out_of_group_commitments() {
        let group = SchnorrGroup::test_256();
        let x = BigUint::from_u64(424242);
        let h = group.hash_to_group("batch-test", b"oog");
        let y = group.pow_g(&x);
        let z = group.pow(&h, &x);
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let good = DleqProof::prove(&st, &x);
        let bad = DleqProof::from_parts(
            group.p().sub(&BigUint::one()),
            good.b().clone(),
            good.s().clone(),
        );
        let items: Vec<(&DleqStatement<'_>, &DleqProof)> = vec![(&st, &good), (&st, &bad)];
        assert_eq!(verify_dleq_batch(&items), Err(vec![1]));
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(16))]

        /// The anchor property: batch verdicts equal the textbook
        /// `pow_mod_reference` oracle item-for-item, for every mix of valid,
        /// forged, and cross-key signatures.
        #[test]
        fn batch_matches_sequential_oracle(
            n in 2usize..10,
            forged_mask in proptest::collection::vec(proptest::any::<bool>(), 10),
        ) {
            let group = SchnorrGroup::test_256();
            let sks = keys(&group, 3);
            let msgs: Vec<Vec<u8>> = (0..n as u32).map(|i| i.to_be_bytes().to_vec()).collect();
            let sigs: Vec<Signature> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    if forged_mask[i] {
                        // Signature by the right key over the wrong message.
                        sks[i % 3].sign(b"forged")
                    } else {
                        sks[i % 3].sign(m)
                    }
                })
                .collect();
            let items: Vec<(&[u8], &Signature, &VerifyingKey)> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| (&m[..], &sigs[i], sks[i % 3].verifying_key()))
                .collect();
            proptest::prop_assert_eq!(batch_verdicts(&items), sequential_verdicts(&items));
        }

        /// A batch with exactly one forged signature: the bisection must
        /// name it, wherever it sits.
        #[test]
        fn single_forgery_bisection_names_it(n in 2usize..12, pos_seed in 0usize..12) {
            let group = SchnorrGroup::test_256();
            let sks = keys(&group, 2);
            let pos = pos_seed % n;
            let msgs: Vec<Vec<u8>> = (0..n as u32).map(|i| i.to_be_bytes().to_vec()).collect();
            let sigs: Vec<Signature> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| {
                    if i == pos {
                        sks[i % 2].sign(b"the forgery")
                    } else {
                        sks[i % 2].sign(m)
                    }
                })
                .collect();
            let items: Vec<(&[u8], &Signature, &VerifyingKey)> = msgs
                .iter()
                .enumerate()
                .map(|(i, m)| (&m[..], &sigs[i], sks[i % 2].verifying_key()))
                .collect();
            proptest::prop_assert_eq!(verify_batch(&items), Err(vec![pos]));
        }
    }
}

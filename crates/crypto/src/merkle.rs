//! Merkle trees over SHA-256, with inclusion proofs.
//!
//! Blocks commit to their transaction list via a Merkle root so that a
//! node holding only block headers can verify that a given transaction was
//! included (used by providers checking how their transactions were labeled
//! before invoking `argue`).
//!
//! Leaf and interior hashes are domain-separated (`0x00` / `0x01` prefixes)
//! to rule out second-preimage attacks that reinterpret interior nodes as
//! leaves. An odd node at any level is promoted (not duplicated), matching
//! the simple binary Merkle construction.

use crate::sha256::{Digest, Sha256};

/// A Merkle tree built from a list of leaf byte strings.
///
/// # Examples
///
/// ```
/// use prb_crypto::merkle::MerkleTree;
///
/// let tree = MerkleTree::from_leaves(["a".as_bytes(), b"b", b"c"]);
/// let proof = tree.prove(1).unwrap();
/// assert!(proof.verify(&tree.root(), b"b"));
/// assert!(!proof.verify(&tree.root(), b"x"));
/// ```
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = single root.
    levels: Vec<Vec<Digest>>,
}

/// An inclusion proof: the sibling path from a leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    /// Index of the proven leaf.
    leaf_index: usize,
    /// Sibling hash at each level, bottom-up; `None` when the node was
    /// promoted without a sibling.
    path: Vec<Option<Digest>>,
}

fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// Root reported for an empty tree: the hash of the empty string under the
/// leaf domain, so it cannot collide with any real single-leaf root that
/// hashes actual content... it *can* equal the root of a tree whose single
/// leaf is empty, which is why [`MerkleTree::from_leaves`] over zero leaves
/// and over one empty leaf are distinguished by leaf count, carried in the
/// block header alongside the root.
pub fn empty_root() -> Digest {
    hash_leaf(&[])
}

impl MerkleTree {
    /// Builds a tree from leaf values.
    pub fn from_leaves<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Digest> = leaves.into_iter().map(|l| hash_leaf(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        if leaf_hashes.is_empty() {
            return MerkleTree {
                levels: vec![Vec::new()],
            };
        }
        let mut levels = vec![leaf_hashes];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                match pair {
                    [left, right] => next.push(hash_node(left, right)),
                    [promoted] => next.push(*promoted),
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Digest {
        self.levels
            .last()
            .and_then(|l| l.first())
            .copied()
            .unwrap_or_else(empty_root)
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` when `index` is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut path = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) { i + 1 } else { i - 1 };
            path.push(level.get(sibling).copied());
            i /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            path,
        })
    }
}

impl MerkleProof {
    /// Verifies that `leaf_data` is at this proof's index under `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        self.verify_hash(root, &hash_leaf(leaf_data))
    }

    /// Verifies from a pre-hashed leaf.
    pub fn verify_hash(&self, root: &Digest, leaf_hash: &Digest) -> bool {
        let mut current = *leaf_hash;
        let mut i = self.leaf_index;
        for sibling in &self.path {
            current = match sibling {
                Some(s) if i.is_multiple_of(2) => hash_node(&current, s),
                Some(s) => hash_node(s, &current),
                None => current, // promoted node
            };
            i /= 2;
        }
        current == *root
    }

    /// The index of the leaf this proof covers.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn empty_tree_has_stable_root() {
        let tree = MerkleTree::from_leaves(Vec::<&[u8]>::new());
        assert_eq!(tree.root(), empty_root());
        assert_eq!(tree.leaf_count(), 0);
        assert!(tree.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves([b"only".as_slice()]);
        assert_eq!(tree.root(), hash_leaf(b"only"));
        let proof = tree.prove(0).unwrap();
        assert!(proof.verify(&tree.root(), b"only"));
    }

    #[test]
    fn all_proofs_verify_for_many_sizes() {
        for n in 1..=20 {
            let data = leaves(n);
            let tree = MerkleTree::from_leaves(&data);
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
            assert!(tree.prove(n).is_none());
        }
    }

    #[test]
    fn proof_fails_for_wrong_leaf_or_root() {
        let data = leaves(7);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), b"not-a-leaf"));
        let other = MerkleTree::from_leaves(leaves(8));
        assert!(!proof.verify(&other.root(), &data[3]));
    }

    #[test]
    fn proof_fails_for_wrong_position() {
        let data = leaves(8);
        let tree = MerkleTree::from_leaves(&data);
        let proof = tree.prove(2).unwrap();
        // Correct data for index 3, proven at index 2: must fail.
        assert!(!proof.verify(&tree.root(), &data[3]));
        assert_eq!(proof.leaf_index(), 2);
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let t2 = MerkleTree::from_leaves([b"b".as_slice(), b"a"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // Root of [a, b] must differ from the single leaf whose content is
        // the concatenation of the two leaf hashes.
        let t = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let mut concat = Vec::new();
        concat.extend_from_slice(hash_leaf(b"a").as_bytes());
        concat.extend_from_slice(hash_leaf(b"b").as_bytes());
        let fake = MerkleTree::from_leaves([concat]);
        assert_ne!(t.root(), fake.root());
    }

    #[test]
    fn from_leaf_hashes_matches_from_leaves() {
        let data = leaves(5);
        let t1 = MerkleTree::from_leaves(&data);
        let hashes = data.iter().map(|d| hash_leaf(d)).collect();
        let t2 = MerkleTree::from_leaf_hashes(hashes);
        assert_eq!(t1.root(), t2.root());
    }
}

//! Scheme-agnostic signing and VRF interface.
//!
//! The protocol layers never name a concrete signature scheme; they work
//! with [`KeyPair`] / [`PublicKey`] / [`Sig`], which dispatch to either the
//! real Schnorr construction ([`crate::schnorr`]) or the fast simulation
//! scheme ([`crate::sim`]). Every experiment binary accepts a `--crypto
//! {sim,schnorr-256,schnorr-512,schnorr-2048,schnorr-3072,schnorr-4096}`
//! switch backed by [`CryptoScheme`].

use rand::Rng;

use crate::group::SchnorrGroup;
use crate::schnorr::{self, SigningKey, VerifyingKey};
use crate::sha256::{Digest, Sha256};
use crate::sim::{sim_vrf_output, SimKeyPair, SimPublicKey, SimSignature};
use crate::vrf::{self, VrfProof};

/// Selects the signature/VRF implementation for a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CryptoScheme {
    /// Hash-tag signatures; see [`crate::sim`] for the security model.
    Sim,
    /// Schnorr signatures + DLEQ VRF over the given group.
    Schnorr(SchnorrGroup),
}

impl CryptoScheme {
    /// The fast simulation scheme (default for high-volume experiments).
    pub fn sim() -> Self {
        CryptoScheme::Sim
    }

    /// Schnorr over the insecure 256-bit test group (fast-ish, real math).
    pub fn schnorr_test_256() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::test_256())
    }

    /// Schnorr over the insecure 512-bit test group.
    pub fn schnorr_test_512() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::test_512())
    }

    /// Schnorr over RFC 3526 group 14 (secure, slow).
    pub fn schnorr_2048() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_2048())
    }

    /// Schnorr over RFC 3526 group 15 (secure, slower).
    pub fn schnorr_3072() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_3072())
    }

    /// Schnorr over RFC 3526 group 16 (secure, slowest).
    pub fn schnorr_4096() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_4096())
    }

    /// Parses a command-line name.
    ///
    /// Accepts `sim`, `schnorr-256`, `schnorr-512`, `schnorr-2048`,
    /// `schnorr-3072`, `schnorr-4096`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "sim" => Some(Self::sim()),
            "schnorr-256" => Some(Self::schnorr_test_256()),
            "schnorr-512" => Some(Self::schnorr_test_512()),
            "schnorr-2048" => Some(Self::schnorr_2048()),
            "schnorr-3072" => Some(Self::schnorr_3072()),
            "schnorr-4096" => Some(Self::schnorr_4096()),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CryptoScheme::Sim => "sim",
            CryptoScheme::Schnorr(g) => g.name(),
        }
    }

    /// Derives a key pair deterministically from a seed.
    pub fn keypair_from_seed(&self, seed: &[u8]) -> KeyPair {
        match self {
            CryptoScheme::Sim => KeyPair::Sim(SimKeyPair::from_seed(seed)),
            CryptoScheme::Schnorr(group) => {
                KeyPair::Schnorr(Box::new(SigningKey::from_seed(group, seed)))
            }
        }
    }

    /// Generates a random key pair.
    pub fn generate_keypair<R: Rng + ?Sized>(&self, rng: &mut R) -> KeyPair {
        match self {
            CryptoScheme::Sim => KeyPair::Sim(SimKeyPair::generate(rng)),
            CryptoScheme::Schnorr(group) => {
                KeyPair::Schnorr(Box::new(SigningKey::generate(group, rng)))
            }
        }
    }
}

/// A key pair under some [`CryptoScheme`].
#[derive(Clone, Debug)]
pub enum KeyPair {
    /// Simulation scheme key.
    Sim(SimKeyPair),
    /// Schnorr key (boxed: it carries group parameters).
    Schnorr(Box<SigningKey>),
}

/// A public key under some [`CryptoScheme`].
#[derive(Clone, Debug, PartialEq)]
pub enum PublicKey {
    /// Simulation scheme public key.
    Sim(SimPublicKey),
    /// Schnorr verification key.
    Schnorr(Box<VerifyingKey>),
}

/// A signature under some [`CryptoScheme`].
///
/// `Eq + Hash` so signatures can key verification memo caches (e.g. the
/// governor's screening memo).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Sig {
    /// Simulation tag.
    Sim(SimSignature),
    /// Schnorr signature.
    Schnorr(Box<schnorr::Signature>),
}

/// A VRF output together with its proof, scheme-dispatched.
#[derive(Clone, Debug, PartialEq)]
pub enum VrfEvaluation {
    /// Sim VRF: the output is self-certifying given the public key.
    Sim(Digest),
    /// Real VRF: output plus DLEQ proof.
    Schnorr {
        /// The authenticated output.
        output: Digest,
        /// Proof of correct evaluation.
        proof: Box<VrfProof>,
    },
}

impl KeyPair {
    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        match self {
            KeyPair::Sim(kp) => PublicKey::Sim(*kp.public_key()),
            KeyPair::Schnorr(sk) => PublicKey::Schnorr(Box::new(sk.verifying_key().clone())),
        }
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Sig {
        match self {
            KeyPair::Sim(kp) => Sig::Sim(kp.sign(message)),
            KeyPair::Schnorr(sk) => Sig::Schnorr(Box::new(sk.sign(message))),
        }
    }

    /// Evaluates the scheme's VRF on `message`.
    pub fn vrf_evaluate(&self, message: &[u8]) -> VrfEvaluation {
        match self {
            KeyPair::Sim(kp) => {
                let vrf = SimVrfFromKey(kp);
                VrfEvaluation::Sim(vrf.evaluate(message))
            }
            KeyPair::Schnorr(sk) => {
                let (output, proof) = vrf::evaluate_with_key(sk, message);
                VrfEvaluation::Schnorr {
                    output,
                    proof: Box::new(proof),
                }
            }
        }
    }
}

/// Adapter so the sim VRF can run off a [`SimKeyPair`] without re-deriving.
struct SimVrfFromKey<'a>(&'a SimKeyPair);

impl SimVrfFromKey<'_> {
    fn evaluate(&self, message: &[u8]) -> Digest {
        sim_vrf_output(self.0.public_key(), message)
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// A scheme mismatch (e.g. a sim tag presented to a Schnorr key) is a
    /// failed verification, not an error: it is what a forged message looks
    /// like on the wire.
    pub fn verify(&self, message: &[u8], sig: &Sig) -> bool {
        match (self, sig) {
            (PublicKey::Sim(pk), Sig::Sim(s)) => pk.verify(message, s),
            (PublicKey::Schnorr(pk), Sig::Schnorr(s)) => pk.verify(message, s),
            _ => false,
        }
    }

    /// Verifies a VRF evaluation, returning the authenticated output.
    pub fn vrf_verify(&self, message: &[u8], eval: &VrfEvaluation) -> Option<Digest> {
        match (self, eval) {
            (PublicKey::Sim(pk), VrfEvaluation::Sim(output)) => {
                (sim_vrf_output(pk, message) == *output).then_some(*output)
            }
            (PublicKey::Schnorr(pk), VrfEvaluation::Schnorr { output, proof }) => {
                let verified = proof.verify(pk, message)?;
                (verified == *output).then_some(verified)
            }
            _ => None,
        }
    }

    /// Canonical byte encoding (for hashing into node ids, certificates…).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PublicKey::Sim(pk) => pk.to_bytes().to_vec(),
            PublicKey::Schnorr(pk) => pk.to_bytes(),
        }
    }

    /// A short stable fingerprint of the key.
    pub fn fingerprint(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"pk-fingerprint");
        h.update_field(&self.to_bytes());
        h.finalize()
    }
}

/// Verifies a batch of signatures across schemes, returning per-item
/// verdicts in order.
///
/// Schnorr items are routed through the randomized-linear-combination
/// batch ([`crate::batch::verify_batch`]) with failure bisection; sim
/// items and scheme mismatches are verified individually (they are cheap
/// hash checks or immediate rejections). Verdicts are identical to calling
/// [`PublicKey::verify`] per item.
pub fn verify_batch(items: &[(&[u8], &Sig, &PublicKey)]) -> Vec<bool> {
    let mut out = vec![false; items.len()];
    let mut schnorr_idx = Vec::new();
    let mut schnorr_items: Vec<(&[u8], &schnorr::Signature, &VerifyingKey)> = Vec::new();
    for (i, &(msg, sig, pk)) in items.iter().enumerate() {
        match (pk, sig) {
            (PublicKey::Schnorr(vk), Sig::Schnorr(s)) => {
                schnorr_idx.push(i);
                schnorr_items.push((msg, s, vk));
            }
            _ => out[i] = pk.verify(msg, sig),
        }
    }
    match crate::batch::verify_batch(&schnorr_items) {
        Ok(()) => {
            for &i in &schnorr_idx {
                out[i] = true;
            }
        }
        Err(bad) => {
            let mut good = vec![true; schnorr_idx.len()];
            for b in bad {
                good[b] = false;
            }
            for (&i, ok) in schnorr_idx.iter().zip(good) {
                out[i] = ok;
            }
        }
    }
    out
}

/// Verifies a batch of VRF evaluations across schemes, returning the
/// authenticated output per item (`None` where verification fails).
///
/// Schnorr evaluations batch their DLEQ proofs through
/// [`crate::vrf::verify_batch`]; sim evaluations and scheme mismatches are
/// handled individually. Results are identical to calling
/// [`PublicKey::vrf_verify`] per item.
pub fn vrf_verify_batch(items: &[(&[u8], &VrfEvaluation, &PublicKey)]) -> Vec<Option<Digest>> {
    let mut out = vec![None; items.len()];
    let mut schnorr_idx = Vec::new();
    let mut schnorr_items: Vec<(&[u8], &VrfProof, &VerifyingKey)> = Vec::new();
    for (i, &(msg, eval, pk)) in items.iter().enumerate() {
        match (pk, eval) {
            (PublicKey::Schnorr(vk), VrfEvaluation::Schnorr { proof, .. }) => {
                schnorr_idx.push(i);
                schnorr_items.push((msg, proof, vk));
            }
            _ => out[i] = pk.vrf_verify(msg, eval),
        }
    }
    for (&i, verified) in schnorr_idx.iter().zip(vrf::verify_batch(&schnorr_items)) {
        // Authenticated output must also match the claimed one, exactly as
        // in the per-item `vrf_verify` path.
        out[i] = verified.filter(|v| *v == items[i].1.output());
    }
    out
}

impl VrfEvaluation {
    /// The claimed output (unauthenticated until verified).
    pub fn output(&self) -> Digest {
        match self {
            VrfEvaluation::Sim(d) => *d,
            VrfEvaluation::Schnorr { output, .. } => *output,
        }
    }
}

impl Sig {
    /// A forgery attempt without the secret key: random bytes shaped like a
    /// signature of the given scheme. Fails verification (except with
    /// negligible probability), modeling the paper's forging collector.
    pub fn forged<R: Rng + ?Sized>(scheme: &CryptoScheme, rng: &mut R) -> Sig {
        match scheme {
            CryptoScheme::Sim => Sig::Sim(SimSignature::forged(rng)),
            CryptoScheme::Schnorr(group) => {
                let r = group.pow_g(&group.random_scalar(rng));
                let s = group.random_scalar(rng);
                Sig::Schnorr(Box::new(schnorr::Signature::from_parts(r, s)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schemes() -> Vec<CryptoScheme> {
        vec![CryptoScheme::sim(), CryptoScheme::schnorr_test_256()]
    }

    #[test]
    fn sign_verify_roundtrip_all_schemes() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"node");
            let sig = kp.sign(b"msg");
            let pk = kp.public_key();
            assert!(pk.verify(b"msg", &sig), "{}", scheme.name());
            assert!(!pk.verify(b"other", &sig), "{}", scheme.name());
        }
    }

    #[test]
    fn forged_signatures_fail_all_schemes() {
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"victim");
            let pk = kp.public_key();
            for _ in 0..10 {
                let forged = Sig::forged(&scheme, &mut rng);
                assert!(!pk.verify(b"msg", &forged), "{}", scheme.name());
            }
        }
    }

    #[test]
    fn scheme_mismatch_fails_closed() {
        let sim_kp = CryptoScheme::sim().keypair_from_seed(b"a");
        let sch_kp = CryptoScheme::schnorr_test_256().keypair_from_seed(b"a");
        let sim_sig = sim_kp.sign(b"m");
        let sch_sig = sch_kp.sign(b"m");
        assert!(!sim_kp.public_key().verify(b"m", &sch_sig));
        assert!(!sch_kp.public_key().verify(b"m", &sim_sig));
    }

    #[test]
    fn vrf_roundtrip_all_schemes() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"gov");
            let eval = kp.vrf_evaluate(b"round-3");
            let pk = kp.public_key();
            assert_eq!(
                pk.vrf_verify(b"round-3", &eval),
                Some(eval.output()),
                "{}",
                scheme.name()
            );
            assert_eq!(pk.vrf_verify(b"round-4", &eval), None, "{}", scheme.name());
        }
    }

    #[test]
    fn vrf_wrong_key_rejected() {
        for scheme in schemes() {
            let kp1 = scheme.keypair_from_seed(b"g1");
            let kp2 = scheme.keypair_from_seed(b"g2");
            let eval = kp1.vrf_evaluate(b"r");
            assert_eq!(kp2.public_key().vrf_verify(b"r", &eval), None);
        }
    }

    #[test]
    fn vrf_output_deterministic() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"gov");
            assert_eq!(
                kp.vrf_evaluate(b"r").output(),
                kp.vrf_evaluate(b"r").output()
            );
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(CryptoScheme::parse("sim"), Some(CryptoScheme::sim()));
        assert_eq!(
            CryptoScheme::parse("schnorr-256"),
            Some(CryptoScheme::schnorr_test_256())
        );
        assert!(CryptoScheme::parse("schnorr-2048").is_some());
        assert!(CryptoScheme::parse("rsa").is_none());
    }

    #[test]
    fn scheme_level_batch_matches_per_item_verify() {
        let mut rng = StdRng::seed_from_u64(7);
        // A deliberately mixed batch: sim and Schnorr keys, valid sigs,
        // forged sigs, and a scheme mismatch.
        let sim_kp = CryptoScheme::sim().keypair_from_seed(b"sim");
        let sch_kp = CryptoScheme::schnorr_test_256().keypair_from_seed(b"sch");
        let sim_sig = sim_kp.sign(b"m0");
        let sch_sig = sch_kp.sign(b"m1");
        let forged = Sig::forged(&CryptoScheme::schnorr_test_256(), &mut rng);
        let sch_sig2 = sch_kp.sign(b"m3");
        let (sim_pk, sch_pk) = (sim_kp.public_key(), sch_kp.public_key());
        let items: Vec<(&[u8], &Sig, &PublicKey)> = vec![
            (b"m0", &sim_sig, &sim_pk),
            (b"m1", &sch_sig, &sch_pk),
            (b"m2", &forged, &sch_pk),
            (b"m3", &sch_sig2, &sch_pk),
            (b"m4", &sim_sig, &sch_pk), // scheme mismatch
        ];
        let batch = verify_batch(&items);
        let individual: Vec<bool> = items.iter().map(|(m, s, pk)| pk.verify(m, s)).collect();
        assert_eq!(batch, individual);
        assert_eq!(batch, vec![true, true, false, true, false]);
    }

    #[test]
    fn scheme_level_vrf_batch_matches_per_item_verify() {
        let sim_kp = CryptoScheme::sim().keypair_from_seed(b"sim");
        let sch_kp = CryptoScheme::schnorr_test_256().keypair_from_seed(b"sch");
        let sim_eval = sim_kp.vrf_evaluate(b"r1");
        let sch_eval = sch_kp.vrf_evaluate(b"r1");
        let (sim_pk, sch_pk) = (sim_kp.public_key(), sch_kp.public_key());
        let items: Vec<(&[u8], &VrfEvaluation, &PublicKey)> = vec![
            (b"r1", &sim_eval, &sim_pk),
            (b"r1", &sch_eval, &sch_pk),
            (b"r2", &sch_eval, &sch_pk), // wrong message
            (b"r1", &sch_eval, &sim_pk), // scheme mismatch
        ];
        let batch = vrf_verify_batch(&items);
        let individual: Vec<Option<Digest>> =
            items.iter().map(|(m, e, pk)| pk.vrf_verify(m, e)).collect();
        assert_eq!(batch, individual);
        assert_eq!(batch[1], Some(sch_eval.output()));
        assert_eq!(batch[2], None);
    }

    #[test]
    fn fingerprints_distinct() {
        let scheme = CryptoScheme::sim();
        let a = scheme.keypair_from_seed(b"a").public_key().fingerprint();
        let b = scheme.keypair_from_seed(b"b").public_key().fingerprint();
        assert_ne!(a, b);
    }
}

//! Scheme-agnostic signing and VRF interface.
//!
//! The protocol layers never name a concrete signature scheme; they work
//! with [`KeyPair`] / [`PublicKey`] / [`Sig`], which dispatch to either the
//! real Schnorr construction ([`crate::schnorr`]) or the fast simulation
//! scheme ([`crate::sim`]). Every experiment binary accepts a `--crypto
//! {sim,schnorr-256,schnorr-512,schnorr-2048,schnorr-3072,schnorr-4096}`
//! switch backed by [`CryptoScheme`].

use rand::Rng;

use crate::group::SchnorrGroup;
use crate::schnorr::{self, SigningKey, VerifyingKey};
use crate::sha256::{Digest, Sha256};
use crate::sim::{sim_vrf_output, SimKeyPair, SimPublicKey, SimSignature};
use crate::vrf::{self, VrfProof};

/// Selects the signature/VRF implementation for a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CryptoScheme {
    /// Hash-tag signatures; see [`crate::sim`] for the security model.
    Sim,
    /// Schnorr signatures + DLEQ VRF over the given group.
    Schnorr(SchnorrGroup),
}

impl CryptoScheme {
    /// The fast simulation scheme (default for high-volume experiments).
    pub fn sim() -> Self {
        CryptoScheme::Sim
    }

    /// Schnorr over the insecure 256-bit test group (fast-ish, real math).
    pub fn schnorr_test_256() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::test_256())
    }

    /// Schnorr over the insecure 512-bit test group.
    pub fn schnorr_test_512() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::test_512())
    }

    /// Schnorr over RFC 3526 group 14 (secure, slow).
    pub fn schnorr_2048() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_2048())
    }

    /// Schnorr over RFC 3526 group 15 (secure, slower).
    pub fn schnorr_3072() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_3072())
    }

    /// Schnorr over RFC 3526 group 16 (secure, slowest).
    pub fn schnorr_4096() -> Self {
        CryptoScheme::Schnorr(SchnorrGroup::rfc3526_4096())
    }

    /// Parses a command-line name.
    ///
    /// Accepts `sim`, `schnorr-256`, `schnorr-512`, `schnorr-2048`,
    /// `schnorr-3072`, `schnorr-4096`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "sim" => Some(Self::sim()),
            "schnorr-256" => Some(Self::schnorr_test_256()),
            "schnorr-512" => Some(Self::schnorr_test_512()),
            "schnorr-2048" => Some(Self::schnorr_2048()),
            "schnorr-3072" => Some(Self::schnorr_3072()),
            "schnorr-4096" => Some(Self::schnorr_4096()),
            _ => None,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            CryptoScheme::Sim => "sim",
            CryptoScheme::Schnorr(g) => g.name(),
        }
    }

    /// Derives a key pair deterministically from a seed.
    pub fn keypair_from_seed(&self, seed: &[u8]) -> KeyPair {
        match self {
            CryptoScheme::Sim => KeyPair::Sim(SimKeyPair::from_seed(seed)),
            CryptoScheme::Schnorr(group) => {
                KeyPair::Schnorr(Box::new(SigningKey::from_seed(group, seed)))
            }
        }
    }

    /// Generates a random key pair.
    pub fn generate_keypair<R: Rng + ?Sized>(&self, rng: &mut R) -> KeyPair {
        match self {
            CryptoScheme::Sim => KeyPair::Sim(SimKeyPair::generate(rng)),
            CryptoScheme::Schnorr(group) => {
                KeyPair::Schnorr(Box::new(SigningKey::generate(group, rng)))
            }
        }
    }
}

/// A key pair under some [`CryptoScheme`].
#[derive(Clone, Debug)]
pub enum KeyPair {
    /// Simulation scheme key.
    Sim(SimKeyPair),
    /// Schnorr key (boxed: it carries group parameters).
    Schnorr(Box<SigningKey>),
}

/// A public key under some [`CryptoScheme`].
#[derive(Clone, Debug, PartialEq)]
pub enum PublicKey {
    /// Simulation scheme public key.
    Sim(SimPublicKey),
    /// Schnorr verification key.
    Schnorr(Box<VerifyingKey>),
}

/// A signature under some [`CryptoScheme`].
///
/// `Eq + Hash` so signatures can key verification memo caches (e.g. the
/// governor's screening memo).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Sig {
    /// Simulation tag.
    Sim(SimSignature),
    /// Schnorr signature.
    Schnorr(Box<schnorr::Signature>),
}

/// A VRF output together with its proof, scheme-dispatched.
#[derive(Clone, Debug, PartialEq)]
pub enum VrfEvaluation {
    /// Sim VRF: the output is self-certifying given the public key.
    Sim(Digest),
    /// Real VRF: output plus DLEQ proof.
    Schnorr {
        /// The authenticated output.
        output: Digest,
        /// Proof of correct evaluation.
        proof: Box<VrfProof>,
    },
}

impl KeyPair {
    /// The corresponding public key.
    pub fn public_key(&self) -> PublicKey {
        match self {
            KeyPair::Sim(kp) => PublicKey::Sim(*kp.public_key()),
            KeyPair::Schnorr(sk) => PublicKey::Schnorr(Box::new(sk.verifying_key().clone())),
        }
    }

    /// Signs `message`.
    pub fn sign(&self, message: &[u8]) -> Sig {
        match self {
            KeyPair::Sim(kp) => Sig::Sim(kp.sign(message)),
            KeyPair::Schnorr(sk) => Sig::Schnorr(Box::new(sk.sign(message))),
        }
    }

    /// Evaluates the scheme's VRF on `message`.
    pub fn vrf_evaluate(&self, message: &[u8]) -> VrfEvaluation {
        match self {
            KeyPair::Sim(kp) => {
                let vrf = SimVrfFromKey(kp);
                VrfEvaluation::Sim(vrf.evaluate(message))
            }
            KeyPair::Schnorr(sk) => {
                let (output, proof) = vrf::evaluate_with_key(sk, message);
                VrfEvaluation::Schnorr {
                    output,
                    proof: Box::new(proof),
                }
            }
        }
    }
}

/// Adapter so the sim VRF can run off a [`SimKeyPair`] without re-deriving.
struct SimVrfFromKey<'a>(&'a SimKeyPair);

impl SimVrfFromKey<'_> {
    fn evaluate(&self, message: &[u8]) -> Digest {
        sim_vrf_output(self.0.public_key(), message)
    }
}

impl PublicKey {
    /// Verifies `sig` over `message`.
    ///
    /// A scheme mismatch (e.g. a sim tag presented to a Schnorr key) is a
    /// failed verification, not an error: it is what a forged message looks
    /// like on the wire.
    pub fn verify(&self, message: &[u8], sig: &Sig) -> bool {
        match (self, sig) {
            (PublicKey::Sim(pk), Sig::Sim(s)) => pk.verify(message, s),
            (PublicKey::Schnorr(pk), Sig::Schnorr(s)) => pk.verify(message, s),
            _ => false,
        }
    }

    /// Verifies a VRF evaluation, returning the authenticated output.
    pub fn vrf_verify(&self, message: &[u8], eval: &VrfEvaluation) -> Option<Digest> {
        match (self, eval) {
            (PublicKey::Sim(pk), VrfEvaluation::Sim(output)) => {
                (sim_vrf_output(pk, message) == *output).then_some(*output)
            }
            (PublicKey::Schnorr(pk), VrfEvaluation::Schnorr { output, proof }) => {
                let verified = proof.verify(pk, message)?;
                (verified == *output).then_some(verified)
            }
            _ => None,
        }
    }

    /// Canonical byte encoding (for hashing into node ids, certificates…).
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            PublicKey::Sim(pk) => pk.to_bytes().to_vec(),
            PublicKey::Schnorr(pk) => pk.to_bytes(),
        }
    }

    /// A short stable fingerprint of the key.
    pub fn fingerprint(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"pk-fingerprint");
        h.update_field(&self.to_bytes());
        h.finalize()
    }
}

impl VrfEvaluation {
    /// The claimed output (unauthenticated until verified).
    pub fn output(&self) -> Digest {
        match self {
            VrfEvaluation::Sim(d) => *d,
            VrfEvaluation::Schnorr { output, .. } => *output,
        }
    }
}

impl Sig {
    /// A forgery attempt without the secret key: random bytes shaped like a
    /// signature of the given scheme. Fails verification (except with
    /// negligible probability), modeling the paper's forging collector.
    pub fn forged<R: Rng + ?Sized>(scheme: &CryptoScheme, rng: &mut R) -> Sig {
        match scheme {
            CryptoScheme::Sim => Sig::Sim(SimSignature::forged(rng)),
            CryptoScheme::Schnorr(group) => {
                let r = group.pow_g(&group.random_scalar(rng));
                let s = group.random_scalar(rng);
                Sig::Schnorr(Box::new(schnorr::Signature::from_parts(r, s)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn schemes() -> Vec<CryptoScheme> {
        vec![CryptoScheme::sim(), CryptoScheme::schnorr_test_256()]
    }

    #[test]
    fn sign_verify_roundtrip_all_schemes() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"node");
            let sig = kp.sign(b"msg");
            let pk = kp.public_key();
            assert!(pk.verify(b"msg", &sig), "{}", scheme.name());
            assert!(!pk.verify(b"other", &sig), "{}", scheme.name());
        }
    }

    #[test]
    fn forged_signatures_fail_all_schemes() {
        let mut rng = StdRng::seed_from_u64(1);
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"victim");
            let pk = kp.public_key();
            for _ in 0..10 {
                let forged = Sig::forged(&scheme, &mut rng);
                assert!(!pk.verify(b"msg", &forged), "{}", scheme.name());
            }
        }
    }

    #[test]
    fn scheme_mismatch_fails_closed() {
        let sim_kp = CryptoScheme::sim().keypair_from_seed(b"a");
        let sch_kp = CryptoScheme::schnorr_test_256().keypair_from_seed(b"a");
        let sim_sig = sim_kp.sign(b"m");
        let sch_sig = sch_kp.sign(b"m");
        assert!(!sim_kp.public_key().verify(b"m", &sch_sig));
        assert!(!sch_kp.public_key().verify(b"m", &sim_sig));
    }

    #[test]
    fn vrf_roundtrip_all_schemes() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"gov");
            let eval = kp.vrf_evaluate(b"round-3");
            let pk = kp.public_key();
            assert_eq!(
                pk.vrf_verify(b"round-3", &eval),
                Some(eval.output()),
                "{}",
                scheme.name()
            );
            assert_eq!(pk.vrf_verify(b"round-4", &eval), None, "{}", scheme.name());
        }
    }

    #[test]
    fn vrf_wrong_key_rejected() {
        for scheme in schemes() {
            let kp1 = scheme.keypair_from_seed(b"g1");
            let kp2 = scheme.keypair_from_seed(b"g2");
            let eval = kp1.vrf_evaluate(b"r");
            assert_eq!(kp2.public_key().vrf_verify(b"r", &eval), None);
        }
    }

    #[test]
    fn vrf_output_deterministic() {
        for scheme in schemes() {
            let kp = scheme.keypair_from_seed(b"gov");
            assert_eq!(
                kp.vrf_evaluate(b"r").output(),
                kp.vrf_evaluate(b"r").output()
            );
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!(CryptoScheme::parse("sim"), Some(CryptoScheme::sim()));
        assert_eq!(
            CryptoScheme::parse("schnorr-256"),
            Some(CryptoScheme::schnorr_test_256())
        );
        assert!(CryptoScheme::parse("schnorr-2048").is_some());
        assert!(CryptoScheme::parse("rsa").is_none());
    }

    #[test]
    fn fingerprints_distinct() {
        let scheme = CryptoScheme::sim();
        let a = scheme.keypair_from_seed(b"a").public_key().fingerprint();
        let b = scheme.keypair_from_seed(b"b").public_key().fingerprint();
        assert_ne!(a, b);
    }
}

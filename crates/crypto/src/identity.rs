//! The Identity Manager (IM): the paper's PKI / Certificate Authority.
//!
//! §3.1: *"an Identity Manager is responsible for recording the members of
//! the chain as well as their roles \[and\] providing nodes credentials that
//! are used for authenticating and authorizing. As a default, an IM should
//! contain all standard PKI methods and play the role of a CA."*
//!
//! The [`IdentityManager`] enrolls nodes, hands each a [`Credential`]
//! (key pair + role certificate signed by the CA), answers certificate
//! lookups, and supports revocation. Enrollment is deterministic from the
//! IM seed so seeded simulations are reproducible.

use std::collections::HashMap;
use std::fmt;

use crate::sha256::Sha256;
use crate::signer::{CryptoScheme, KeyPair, PublicKey, Sig};

/// The role a node plays in the three-tier hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Role {
    /// Offers signed transactions to collectors.
    Provider,
    /// Labels and uploads transactions to governors.
    Collector,
    /// Validates, packs blocks, maintains the ledger.
    Governor,
}

impl Role {
    /// One-letter tag used in display form and key derivation.
    pub fn tag(self) -> char {
        match self {
            Role::Provider => 'p',
            Role::Collector => 'c',
            Role::Governor => 'g',
        }
    }
}

impl fmt::Display for Role {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Role::Provider => "provider",
            Role::Collector => "collector",
            Role::Governor => "governor",
        };
        f.write_str(name)
    }
}

/// Identity of a node: its role and index within that role.
///
/// Displays as `p3`, `c5`, `g0` — matching the paper's `p_k`, `c_i`, `g_j`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// The node's role.
    pub role: Role,
    /// Zero-based index within the role.
    pub index: u32,
}

impl NodeId {
    /// Creates a provider id.
    pub fn provider(index: u32) -> Self {
        NodeId {
            role: Role::Provider,
            index,
        }
    }

    /// Creates a collector id.
    pub fn collector(index: u32) -> Self {
        NodeId {
            role: Role::Collector,
            index,
        }
    }

    /// Creates a governor id.
    pub fn governor(index: u32) -> Self {
        NodeId {
            role: Role::Governor,
            index,
        }
    }

    /// Canonical byte encoding for hashing/signing.
    pub fn to_bytes(self) -> [u8; 5] {
        let mut out = [0u8; 5];
        out[0] = self.role.tag() as u8;
        out[1..5].copy_from_slice(&self.index.to_be_bytes());
        out
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.role.tag(), self.index)
    }
}

/// A role certificate: the CA's signature binding a node id to a public key.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// The certified node.
    pub node: NodeId,
    /// The node's public key.
    pub public_key: PublicKey,
    /// CA signature over `(node, public_key)`.
    pub ca_sig: Sig,
}

impl Certificate {
    fn message(node: NodeId, public_key: &PublicKey) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update_field(b"prb-certificate");
        h.update_field(&node.to_bytes());
        h.update_field(&public_key.to_bytes());
        h.finalize().to_bytes().to_vec()
    }
}

/// A node's credential: its key pair plus the CA-issued certificate.
#[derive(Clone, Debug)]
pub struct Credential {
    /// The node's signing key pair. Only the enrolled node should hold this.
    pub keypair: KeyPair,
    /// Publicly distributable certificate.
    pub certificate: Certificate,
}

/// Errors from identity operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdentityError {
    /// The node was already enrolled.
    AlreadyEnrolled(NodeId),
    /// The node is unknown to the IM.
    Unknown(NodeId),
    /// The node's certificate has been revoked.
    Revoked(NodeId),
}

impl fmt::Display for IdentityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentityError::AlreadyEnrolled(n) => write!(f, "node {n} already enrolled"),
            IdentityError::Unknown(n) => write!(f, "node {n} is not enrolled"),
            IdentityError::Revoked(n) => write!(f, "node {n} has been revoked"),
        }
    }
}

impl std::error::Error for IdentityError {}

/// The Identity Manager / Certificate Authority.
///
/// # Examples
///
/// ```
/// use prb_crypto::identity::{IdentityManager, NodeId};
/// use prb_crypto::signer::CryptoScheme;
///
/// let mut im = IdentityManager::new(CryptoScheme::sim(), b"example-seed");
/// let cred = im.enroll(NodeId::provider(0)).unwrap();
/// assert!(im.verify_certificate(&cred.certificate));
/// ```
pub struct IdentityManager {
    scheme: CryptoScheme,
    ca: KeyPair,
    seed: Vec<u8>,
    directory: HashMap<NodeId, Certificate>,
    revoked: HashMap<NodeId, ()>,
}

impl fmt::Debug for IdentityManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IdentityManager")
            .field("scheme", &self.scheme.name())
            .field("enrolled", &self.directory.len())
            .field("revoked", &self.revoked.len())
            .finish()
    }
}

impl IdentityManager {
    /// Creates an IM with a deterministic CA key derived from `seed`.
    pub fn new(scheme: CryptoScheme, seed: &[u8]) -> Self {
        let mut ca_seed = b"prb-im-ca:".to_vec();
        ca_seed.extend_from_slice(seed);
        let ca = scheme.keypair_from_seed(&ca_seed);
        IdentityManager {
            scheme,
            ca,
            seed: seed.to_vec(),
            directory: HashMap::new(),
            revoked: HashMap::new(),
        }
    }

    /// The scheme this IM issues keys under.
    pub fn scheme(&self) -> &CryptoScheme {
        &self.scheme
    }

    /// The CA's public key (for out-of-band certificate verification).
    pub fn ca_public_key(&self) -> PublicKey {
        self.ca.public_key()
    }

    /// Enrolls `node`, generating its key pair and certificate.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::AlreadyEnrolled`] on duplicate enrollment.
    pub fn enroll(&mut self, node: NodeId) -> Result<Credential, IdentityError> {
        if self.directory.contains_key(&node) {
            return Err(IdentityError::AlreadyEnrolled(node));
        }
        let mut node_seed = b"prb-im-node:".to_vec();
        node_seed.extend_from_slice(&self.seed);
        node_seed.extend_from_slice(&node.to_bytes());
        let keypair = self.scheme.keypair_from_seed(&node_seed);
        let public_key = keypair.public_key();
        let ca_sig = self.ca.sign(&Certificate::message(node, &public_key));
        let certificate = Certificate {
            node,
            public_key,
            ca_sig,
        };
        self.directory.insert(node, certificate.clone());
        Ok(Credential {
            keypair,
            certificate,
        })
    }

    /// Verifies that `cert` was issued by this CA and is not revoked.
    pub fn verify_certificate(&self, cert: &Certificate) -> bool {
        if self.revoked.contains_key(&cert.node) {
            return false;
        }
        self.ca.public_key().verify(
            &Certificate::message(cert.node, &cert.public_key),
            &cert.ca_sig,
        )
    }

    /// Looks up the certificate of an enrolled node.
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::Unknown`] or [`IdentityError::Revoked`].
    pub fn certificate(&self, node: NodeId) -> Result<&Certificate, IdentityError> {
        if self.revoked.contains_key(&node) {
            return Err(IdentityError::Revoked(node));
        }
        self.directory
            .get(&node)
            .ok_or(IdentityError::Unknown(node))
    }

    /// Convenience: the public key of an enrolled node.
    pub fn public_key(&self, node: NodeId) -> Result<&PublicKey, IdentityError> {
        self.certificate(node).map(|c| &c.public_key)
    }

    /// Revokes a node's certificate (e.g. an expelled leader, §3.4.3).
    ///
    /// # Errors
    ///
    /// Returns [`IdentityError::Unknown`] when the node was never enrolled.
    pub fn revoke(&mut self, node: NodeId) -> Result<(), IdentityError> {
        if !self.directory.contains_key(&node) {
            return Err(IdentityError::Unknown(node));
        }
        self.revoked.insert(node, ());
        Ok(())
    }

    /// Whether `node` has been revoked.
    pub fn is_revoked(&self, node: NodeId) -> bool {
        self.revoked.contains_key(&node)
    }

    /// Number of enrolled (non-revoked) nodes.
    pub fn active_count(&self) -> usize {
        self.directory.len() - self.revoked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn im() -> IdentityManager {
        IdentityManager::new(CryptoScheme::sim(), b"test-seed")
    }

    #[test]
    fn enroll_and_verify() {
        let mut im = im();
        let cred = im.enroll(NodeId::collector(3)).unwrap();
        assert!(im.verify_certificate(&cred.certificate));
        assert_eq!(
            im.certificate(NodeId::collector(3)).unwrap(),
            &cred.certificate
        );
        assert_eq!(im.active_count(), 1);
    }

    #[test]
    fn duplicate_enrollment_rejected() {
        let mut im = im();
        im.enroll(NodeId::provider(0)).unwrap();
        assert_eq!(
            im.enroll(NodeId::provider(0)).unwrap_err(),
            IdentityError::AlreadyEnrolled(NodeId::provider(0))
        );
    }

    #[test]
    fn unknown_node_errors() {
        let im = im();
        assert_eq!(
            im.certificate(NodeId::governor(9)).unwrap_err(),
            IdentityError::Unknown(NodeId::governor(9))
        );
    }

    #[test]
    fn revocation() {
        let mut im = im();
        let cred = im.enroll(NodeId::governor(1)).unwrap();
        assert!(im.revoke(NodeId::governor(2)).is_err());
        im.revoke(NodeId::governor(1)).unwrap();
        assert!(im.is_revoked(NodeId::governor(1)));
        assert!(!im.verify_certificate(&cred.certificate));
        assert_eq!(
            im.certificate(NodeId::governor(1)).unwrap_err(),
            IdentityError::Revoked(NodeId::governor(1))
        );
        assert_eq!(im.active_count(), 0);
    }

    #[test]
    fn tampered_certificate_rejected() {
        let mut im = im();
        let cred = im.enroll(NodeId::provider(1)).unwrap();
        let other = im.enroll(NodeId::provider(2)).unwrap();
        // Swap the public key: binding must break.
        let tampered = Certificate {
            node: cred.certificate.node,
            public_key: other.certificate.public_key.clone(),
            ca_sig: cred.certificate.ca_sig.clone(),
        };
        assert!(!im.verify_certificate(&tampered));
        // Swap the node id.
        let tampered = Certificate {
            node: NodeId::provider(2),
            ..cred.certificate.clone()
        };
        assert!(!im.verify_certificate(&tampered));
    }

    #[test]
    fn certificates_from_other_ca_rejected() {
        let mut im1 = IdentityManager::new(CryptoScheme::sim(), b"seed-1");
        let im2 = IdentityManager::new(CryptoScheme::sim(), b"seed-2");
        let cred = im1.enroll(NodeId::collector(0)).unwrap();
        assert!(!im2.verify_certificate(&cred.certificate));
    }

    #[test]
    fn deterministic_enrollment() {
        let mut a = IdentityManager::new(CryptoScheme::sim(), b"same");
        let mut b = IdentityManager::new(CryptoScheme::sim(), b"same");
        let ca = a.enroll(NodeId::provider(7)).unwrap();
        let cb = b.enroll(NodeId::provider(7)).unwrap();
        assert_eq!(ca.certificate, cb.certificate);
    }

    #[test]
    fn works_with_schnorr_scheme() {
        let mut im = IdentityManager::new(CryptoScheme::schnorr_test_256(), b"schnorr");
        let cred = im.enroll(NodeId::governor(0)).unwrap();
        assert!(im.verify_certificate(&cred.certificate));
    }

    #[test]
    fn node_id_display_and_bytes() {
        assert_eq!(NodeId::provider(3).to_string(), "p3");
        assert_eq!(NodeId::collector(15).to_string(), "c15");
        assert_eq!(NodeId::governor(0).to_string(), "g0");
        assert_ne!(
            NodeId::provider(1).to_bytes(),
            NodeId::collector(1).to_bytes()
        );
        assert_eq!(Role::Provider.to_string(), "provider");
    }
}

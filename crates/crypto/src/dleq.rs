//! Chaum–Pedersen proofs of discrete-logarithm equality (DLEQ).
//!
//! A DLEQ proof convinces a verifier that `log_g(y) = log_h(z)` without
//! revealing the common exponent. It is the core of the [`crate::vrf`]
//! construction: the VRF proof is exactly a DLEQ proof that the output
//! `gamma = h^x` uses the same secret `x` as the public key `y = g^x`.
//!
//! Protocol (non-interactive via Fiat–Shamir): prover with witness `x` picks
//! nonce `k`, sends `a = g^k`, `b = h^k`, challenge
//! `c = H(g, h, y, z, a, b) mod q`, response `s = k + c·x mod q`. The
//! verifier checks `g^s = a·y^c` and `h^s = b·z^c`.

use std::fmt;

use crate::bigint::BigUint;
use crate::group::SchnorrGroup;
use crate::hmac::HmacSha256;
use crate::sha256::Sha256;

/// A non-interactive Chaum–Pedersen DLEQ proof.
#[derive(Clone, PartialEq, Eq)]
pub struct DleqProof {
    a: BigUint,
    b: BigUint,
    s: BigUint,
}

impl fmt::Debug for DleqProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DleqProof")
            .field("a", &self.a)
            .field("b", &self.b)
            .field("s", &self.s)
            .finish()
    }
}

/// The statement being proved: `log_g(y) = log_h(z)` in `group`.
#[derive(Clone, Debug)]
pub struct DleqStatement<'a> {
    /// The group all four elements live in.
    pub group: &'a SchnorrGroup,
    /// First base (usually the group generator).
    pub g: &'a BigUint,
    /// `y = g^x`.
    pub y: &'a BigUint,
    /// Second base.
    pub h: &'a BigUint,
    /// `z = h^x`.
    pub z: &'a BigUint,
}

impl DleqProof {
    /// Proves `log_g(y) = log_h(z) = x`.
    ///
    /// The nonce is derived deterministically from the witness and the
    /// statement, so proofs are reproducible and never reuse a nonce across
    /// distinct statements.
    pub fn prove(statement: &DleqStatement<'_>, x: &BigUint) -> DleqProof {
        let group = statement.group;
        let k = derive_nonce(statement, x);
        // `g` is almost always the group generator, so route through the
        // fixed-base table when one is trained.
        let a = group.pow_base(statement.g, &k);
        let b = group.pow(statement.h, &k);
        let c = challenge(statement, &a, &b);
        let s = group.scalar_add(&k, &group.scalar_mul(&c, x));
        DleqProof { a, b, s }
    }

    /// Verifies the proof against `statement`.
    ///
    /// The `g`-side check `g^s = a·y^c` uses the generator window table for
    /// `g^s` (when trained). The `h`-side check is folded into a single
    /// Straus multi-exponentiation `h^s · (z^{-1})^c == b` — `h` and `z`
    /// are statement-specific (fresh per VRF message), so per-base tables
    /// cannot amortize there and the shared squaring chain is the win.
    pub fn verify(&self, statement: &DleqStatement<'_>) -> bool {
        let group = statement.group;
        // All transmitted elements must be in the subgroup.
        if !group.is_element(&self.a) || !group.is_element(&self.b) || self.s >= *group.q() {
            return false;
        }
        let c = challenge(statement, &self.a, &self.b);
        let lhs_g = group.pow_base(statement.g, &self.s);
        let rhs_g = group.mul(&self.a, &group.pow(statement.y, &c));
        if lhs_g != rhs_g {
            return false;
        }
        let Some(z_inv) = statement.z.inv_mod(group.p()) else {
            // z ≡ 0 (mod p) is never a subgroup element.
            return false;
        };
        group.multi_pow(&[(statement.h, &self.s), (&z_inv, &c)]) == self.b
    }

    /// Commitment `a = g^k`.
    pub fn a(&self) -> &BigUint {
        &self.a
    }

    /// Commitment `b = h^k`.
    pub fn b(&self) -> &BigUint {
        &self.b
    }

    /// Response scalar `s`.
    pub fn s(&self) -> &BigUint {
        &self.s
    }

    /// Rebuilds a proof from raw parts (e.g. after deserialization).
    pub fn from_parts(a: BigUint, b: BigUint, s: BigUint) -> Self {
        DleqProof { a, b, s }
    }
}

fn derive_nonce(statement: &DleqStatement<'_>, x: &BigUint) -> BigUint {
    let group = statement.group;
    let mut counter = 0u32;
    loop {
        let mut mac = HmacSha256::new(&x.to_bytes_be());
        mac.update(b"dleq-nonce");
        mac.update(&counter.to_be_bytes());
        for el in [statement.g, statement.y, statement.h, statement.z] {
            mac.update(&group.element_to_bytes(el));
        }
        let d1 = mac.clone().finalize();
        mac.update(b"x");
        let d2 = mac.finalize();
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(d1.as_bytes());
        bytes.extend_from_slice(d2.as_bytes());
        let k = group.scalar_from_bytes(&bytes);
        if !k.is_zero() {
            return k;
        }
        counter += 1;
    }
}

/// Fiat–Shamir challenge; `pub(crate)` so the batch verifier
/// ([`crate::batch`]) can recompute it per proof.
pub(crate) fn challenge(statement: &DleqStatement<'_>, a: &BigUint, b: &BigUint) -> BigUint {
    let group = statement.group;
    let mut h = Sha256::new();
    h.update_field(b"dleq-challenge");
    h.update_field(group.name().as_bytes());
    for el in [statement.g, statement.y, statement.h, statement.z, a, b] {
        h.update_field(&group.element_to_bytes(el));
    }
    group.scalar_from_bytes(h.finalize().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SchnorrGroup, BigUint, BigUint, BigUint, BigUint) {
        let group = SchnorrGroup::test_256();
        let x = BigUint::from_u64(987654321);
        let h = group.hash_to_group("dleq-test", b"second base");
        let y = group.pow_g(&x);
        let z = group.pow(&h, &x);
        (group, x, h, y, z)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let proof = DleqProof::prove(&st, &x);
        assert!(proof.verify(&st));
    }

    #[test]
    fn unequal_logs_rejected() {
        let (group, x, h, y, _) = setup();
        // z uses a different exponent.
        let z_bad = group.pow(&h, &BigUint::from_u64(111));
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z_bad,
        };
        let proof = DleqProof::prove(&st, &x);
        assert!(!proof.verify(&st));
    }

    #[test]
    fn proof_bound_to_statement() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let proof = DleqProof::prove(&st, &x);
        // Same proof presented for a different h must fail.
        let h2 = group.hash_to_group("dleq-test", b"another base");
        let z2 = group.pow(&h2, &x);
        let st2 = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h2,
            z: &z2,
        };
        assert!(!proof.verify(&st2));
    }

    #[test]
    fn tampered_proof_rejected() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let proof = DleqProof::prove(&st, &x);
        let bad = DleqProof::from_parts(
            proof.a().clone(),
            proof.b().clone(),
            proof.s().add(&BigUint::one()).rem(group.q()),
        );
        assert!(!bad.verify(&st));
        let out_of_group = group.p().sub(&BigUint::one());
        let bad = DleqProof::from_parts(out_of_group, proof.b().clone(), proof.s().clone());
        assert!(!bad.verify(&st));
    }

    #[test]
    fn fast_verify_matches_two_sided_reference() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let proof = DleqProof::prove(&st, &x);
        // Textbook verification with reference exponentiation.
        let c = challenge(&st, proof.a(), proof.b());
        let lhs_g = group.g().pow_mod_reference(proof.s(), group.p());
        let rhs_g = group.mul(proof.a(), &y.pow_mod_reference(&c, group.p()));
        let lhs_h = h.pow_mod_reference(proof.s(), group.p());
        let rhs_h = group.mul(proof.b(), &z.pow_mod_reference(&c, group.p()));
        assert_eq!(lhs_g, rhs_g);
        assert_eq!(lhs_h, rhs_h);
        assert!(proof.verify(&st));
    }

    #[test]
    fn zero_z_rejected() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        let proof = DleqProof::prove(&st, &x);
        let zero = BigUint::zero();
        let st_zero = DleqStatement { z: &zero, ..st };
        assert!(!proof.verify(&st_zero));
    }

    #[test]
    fn deterministic_proofs() {
        let (group, x, h, y, z) = setup();
        let st = DleqStatement {
            group: &group,
            g: group.g(),
            y: &y,
            h: &h,
            z: &z,
        };
        assert_eq!(DleqProof::prove(&st, &x), DleqProof::prove(&st, &x));
    }
}

//! Minimal hex encoding/decoding helpers used throughout the crate.

use std::fmt;

/// Error returned when decoding an invalid hex string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeHexError {
    /// Byte offset of the first offending character, or the (odd) length.
    pub position: usize,
    kind: DecodeHexErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeHexErrorKind {
    OddLength,
    InvalidChar,
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            DecodeHexErrorKind::OddLength => {
                write!(f, "hex string has odd length {}", self.position)
            }
            DecodeHexErrorKind::InvalidChar => {
                write!(f, "invalid hex character at position {}", self.position)
            }
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Encodes `bytes` as lowercase hex.
///
/// # Examples
///
/// ```
/// assert_eq!(prb_crypto::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    const TABLE: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(TABLE[(b >> 4) as usize] as char);
        out.push(TABLE[(b & 0x0f) as usize] as char);
    }
    out
}

/// Decodes a hex string (upper- or lowercase) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] when the string has odd length or contains a
/// non-hex character.
///
/// # Examples
///
/// ```
/// assert_eq!(prb_crypto::hex::decode("DEad").unwrap(), vec![0xde, 0xad]);
/// assert!(prb_crypto::hex::decode("xy").is_err());
/// ```
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError {
            position: s.len(),
            kind: DecodeHexErrorKind::OddLength,
        });
    }
    let nibble = |c: u8, pos: usize| -> Result<u8, DecodeHexError> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            b'A'..=b'F' => Ok(c - b'A' + 10),
            _ => Err(DecodeHexError {
                position: pos,
                kind: DecodeHexErrorKind::InvalidChar,
            }),
        }
    };
    let mut out = Vec::with_capacity(s.len() / 2);
    for (i, pair) in s.chunks_exact(2).enumerate() {
        out.push(nibble(pair[0], 2 * i)? << 4 | nibble(pair[1], 2 * i + 1)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data: Vec<u8> = (0u8..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn odd_length_rejected() {
        let err = decode("abc").unwrap_err();
        assert_eq!(err.position, 3);
        assert!(err.to_string().contains("odd length"));
    }

    #[test]
    fn invalid_char_position_reported() {
        let err = decode("ag").unwrap_err();
        assert_eq!(err.position, 1);
        assert!(err.to_string().contains("position 1"));
    }

    #[test]
    fn uppercase_accepted() {
        assert_eq!(decode("FF00").unwrap(), vec![0xff, 0x00]);
    }
}

//! Schnorr signatures over a [`SchnorrGroup`].
//!
//! This is the EUF-CMA signature scheme backing `sig_p(tx)`, `sig_c(tx, l)`
//! and governor signatures in the protocol. Signing is deterministic
//! (RFC 6979-style nonce derivation via HMAC) so that the whole simulation
//! is reproducible from a seed.
//!
//! Scheme (key `x`, public `y = g^x`):
//! - sign(m):   `k = H_nonce(x, m)`, `r = g^k`, `e = H(r, y, m) mod q`,
//!   `s = k + x·e mod q`; signature is `(r, s)`.
//! - verify(m): recompute `e` and check `g^s = r · y^e (mod p)`.
//!
//! # Verification hot path
//!
//! A cold [`VerifyingKey`] verifies with one Straus/Shamir
//! multi-exponentiation `g^s · (y^{-1})^e == r` (the inverse `y^{-1}` is
//! computed once per key and cached). After [`KEY_TABLE_THRESHOLD`]
//! verifications a fixed-base window table for `y` is built — sized to the
//! 256-bit challenge width, not the full group order — after which the check
//! splits into a generator-table `pow_g(s)` and a `y`-table `pow(e)`, both
//! squaring-free. All paths are property-tested against the textbook
//! `g^s == r · y^e` reference.
//!
//! [`SchnorrGroup`]: crate::group::SchnorrGroup

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

use rand::Rng;

use crate::bigint::{BigUint, FixedBaseTable};
use crate::group::SchnorrGroup;
use crate::hmac::HmacSha256;
use crate::sha256::Sha256;

/// Number of verifications after which a per-key window table for `y` is
/// built. One-shot verifiers use the Straus path; any key verified
/// repeatedly (governor screening, benchmark loops) amortizes the build
/// within a handful of calls.
pub const KEY_TABLE_THRESHOLD: u64 = 3;

/// A Schnorr signing key (keep secret).
#[derive(Clone)]
pub struct SigningKey {
    x: BigUint,
    public: VerifyingKey,
}

/// A Schnorr verification (public) key.
///
/// Carries a lazily-populated verification cache (`y^{-1}` and a fixed-base
/// window table for `y`), shared across clones. The cache never affects
/// results — equality and hashing consider only the group and `y`.
#[derive(Clone)]
pub struct VerifyingKey {
    group: SchnorrGroup,
    y: BigUint,
    cache: Arc<VkCache>,
}

/// Lazily-populated per-key verification accelerators.
#[derive(Debug, Default)]
struct VkCache {
    /// Verifications so far; triggers the table build at the threshold.
    uses: AtomicU64,
    /// Fixed-base window table for `y`, sized to the challenge width.
    table: OnceLock<FixedBaseTable>,
    /// `y^{-1} mod p`, for the Straus cold path.
    y_inv: OnceLock<BigUint>,
}

impl PartialEq for VerifyingKey {
    fn eq(&self, other: &Self) -> bool {
        self.group == other.group && self.y == other.y
    }
}

impl Eq for VerifyingKey {}

/// A Schnorr signature `(r, s)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    r: BigUint,
    s: BigUint,
}

impl fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret scalar.
        f.debug_struct("SigningKey")
            .field("group", self.group())
            .field("public", &self.public)
            .finish_non_exhaustive()
    }
}

impl fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VerifyingKey({}…)",
            &self.y.to_hex()[..8.min(self.y.to_hex().len())]
        )
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Signature")
            .field("r", &self.r)
            .field("s", &self.s)
            .finish()
    }
}

impl SigningKey {
    /// Generates a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> Self {
        let x = group.random_scalar(rng);
        Self::from_scalar(group, x)
    }

    /// Derives a key pair deterministically from a byte seed.
    ///
    /// Used by the identity manager to hand out reproducible credentials in
    /// seeded simulations.
    pub fn from_seed(group: &SchnorrGroup, seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update_field(b"schnorr-keygen");
        h.update_field(group.name().as_bytes());
        h.update_field(seed);
        // Two hash blocks give ≥ 512 bits, enough to smooth the mod-q bias
        // for groups up to 256 bits of order; for larger groups the bias is
        // irrelevant for simulation purposes.
        let d1 = h.clone().finalize();
        let mut h2 = h;
        h2.update(b"2");
        let d2 = h2.finalize();
        let mut bytes = Vec::with_capacity(64);
        bytes.extend_from_slice(d1.as_bytes());
        bytes.extend_from_slice(d2.as_bytes());
        let mut x = group.scalar_from_bytes(&bytes);
        if x.is_zero() {
            x = BigUint::one();
        }
        Self::from_scalar(group, x)
    }

    fn from_scalar(group: &SchnorrGroup, x: BigUint) -> Self {
        let y = group.pow_g(&x);
        SigningKey {
            public: VerifyingKey::from_element(group.clone(), y),
            x,
        }
    }

    /// The corresponding public key.
    pub fn verifying_key(&self) -> &VerifyingKey {
        &self.public
    }

    /// The group this key lives in.
    pub fn group(&self) -> &SchnorrGroup {
        &self.public.group
    }

    /// Exposes the secret scalar (used by the VRF, which shares key material).
    pub(crate) fn secret_scalar(&self) -> &BigUint {
        &self.x
    }

    /// Signs `message` deterministically.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let group = self.group();
        let k = self.derive_nonce(message);
        let r = group.pow_g(&k);
        let e = challenge(group, &r, &self.public.y, message);
        let xe = group.scalar_mul(&self.x, &e);
        let s = group.scalar_add(&k, &xe);
        Signature { r, s }
    }

    /// RFC 6979-flavoured deterministic nonce: `HMAC(x, m) mod q`, rejecting 0.
    fn derive_nonce(&self, message: &[u8]) -> BigUint {
        let key = self.x.to_bytes_be();
        let mut counter = 0u32;
        loop {
            let mut mac = HmacSha256::new(&key);
            mac.update(b"schnorr-nonce");
            mac.update(&counter.to_be_bytes());
            mac.update(message);
            let d1 = mac.clone().finalize();
            mac.update(b"x");
            let d2 = mac.finalize();
            let mut bytes = Vec::with_capacity(64);
            bytes.extend_from_slice(d1.as_bytes());
            bytes.extend_from_slice(d2.as_bytes());
            let k = self.group().scalar_from_bytes(&bytes);
            if !k.is_zero() {
                return k;
            }
            counter += 1;
        }
    }
}

impl VerifyingKey {
    /// Builds a key from its group element, with an empty verification
    /// cache.
    pub(crate) fn from_element(group: SchnorrGroup, y: BigUint) -> Self {
        VerifyingKey {
            group,
            y,
            cache: Arc::new(VkCache::default()),
        }
    }

    /// Verifies `signature` over `message`.
    ///
    /// Hot path: with a trained per-key table the check is
    /// `pow_g(s) == r · table(e)` (both squaring-free); before training it
    /// is one Straus multi-exponentiation `g^s · (y^{-1})^e == r` with the
    /// inverse cached per key. Both are algebraically identical to the
    /// textbook `g^s == r · y^e` and are pinned to it by property tests.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        // Reject degenerate/out-of-group values outright.
        if !self.group.is_element(&signature.r) || signature.s >= *self.group.q() {
            return false;
        }
        let e = challenge(&self.group, &signature.r, &self.y, message);
        let table = match self.cache.table.get() {
            Some(t) => Some(t),
            None if self.cache.uses.fetch_add(1, Relaxed) + 1 >= KEY_TABLE_THRESHOLD => {
                // The challenge is 256 hash bits reduced mod q, so the table
                // only needs min(256, |q|) bits — a quarter of the full-width
                // build cost for the 2048-bit group.
                let bits = self.group.q().bit_len().min(256);
                Some(
                    self.cache
                        .table
                        .get_or_init(|| FixedBaseTable::build(self.group.mont(), &self.y, bits)),
                )
            }
            None => None,
        };
        if let Some(ye) = table.and_then(|t| t.pow(self.group.mont(), &e)) {
            return self.group.pow_g(&signature.s) == self.group.mul(&signature.r, &ye);
        }
        let y_inv = self.cache.y_inv.get_or_init(|| {
            self.y
                .inv_mod(self.group.p())
                .expect("subgroup element is invertible mod p")
        });
        self.group
            .multi_pow(&[(self.group.g(), &signature.s), (y_inv, &e)])
            == signature.r
    }

    /// The group element `y = g^x`.
    pub fn element(&self) -> &BigUint {
        &self.y
    }

    /// The group this key lives in.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// Canonical byte encoding (fixed width), e.g. for hashing into ids.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.group.element_to_bytes(&self.y)
    }
}

impl Signature {
    /// The commitment element `r`.
    pub fn r(&self) -> &BigUint {
        &self.r
    }

    /// The response scalar `s`.
    pub fn s(&self) -> &BigUint {
        &self.s
    }

    /// Builds a signature from raw parts (e.g. after deserialization).
    pub fn from_parts(r: BigUint, s: BigUint) -> Self {
        Signature { r, s }
    }

    /// Byte encoding: fixed-width `r` followed by fixed-width `s`.
    pub fn to_bytes(&self, group: &SchnorrGroup) -> Vec<u8> {
        let mut out = group.element_to_bytes(&self.r);
        out.extend_from_slice(&self.s.to_bytes_be_padded(group.element_len()));
        out
    }
}

/// Fiat–Shamir challenge `e = H(domain, r, y, m) mod q`.
///
/// `pub(crate)` so the batch verifier ([`crate::batch`]) can recompute the
/// same challenges when assembling its linear combination.
pub(crate) fn challenge(group: &SchnorrGroup, r: &BigUint, y: &BigUint, message: &[u8]) -> BigUint {
    let mut h = Sha256::new();
    h.update_field(b"schnorr-challenge");
    h.update_field(group.name().as_bytes());
    h.update_field(&group.element_to_bytes(r));
    h.update_field(&group.element_to_bytes(y));
    h.update_field(message);
    group.scalar_from_bytes(h.finalize().as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (SchnorrGroup, SigningKey) {
        let group = SchnorrGroup::test_256();
        let sk = SigningKey::from_seed(&group, b"unit-test-key");
        (group, sk)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (_, sk) = setup();
        let sig = sk.sign(b"hello governors");
        assert!(sk.verifying_key().verify(b"hello governors", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (_, sk) = setup();
        let sig = sk.sign(b"message A");
        assert!(!sk.verifying_key().verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let group = SchnorrGroup::test_256();
        let sk1 = SigningKey::from_seed(&group, b"key-1");
        let sk2 = SigningKey::from_seed(&group, b"key-2");
        let sig = sk1.sign(b"msg");
        assert!(!sk2.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (group, sk) = setup();
        let sig = sk.sign(b"msg");
        let bumped_s =
            Signature::from_parts(sig.r().clone(), sig.s().add(&BigUint::one()).rem(group.q()));
        assert!(!sk.verifying_key().verify(b"msg", &bumped_s));
        // r replaced by an arbitrary subgroup element.
        let other_r = group.pow_g(&BigUint::from_u64(12345));
        let swapped_r = Signature::from_parts(other_r, sig.s().clone());
        assert!(!sk.verifying_key().verify(b"msg", &swapped_r));
    }

    #[test]
    fn out_of_group_r_rejected() {
        let (group, sk) = setup();
        let sig = sk.sign(b"msg");
        // p - 1 is not in the order-q subgroup.
        let bad_r = group.p().sub(&BigUint::one());
        let forged = Signature::from_parts(bad_r, sig.s().clone());
        assert!(!sk.verifying_key().verify(b"msg", &forged));
        // s out of range.
        let forged = Signature::from_parts(sig.r().clone(), group.q().clone());
        assert!(!sk.verifying_key().verify(b"msg", &forged));
    }

    #[test]
    fn deterministic_signing() {
        let (_, sk) = setup();
        assert_eq!(sk.sign(b"same message"), sk.sign(b"same message"));
        assert_ne!(sk.sign(b"message 1"), sk.sign(b"message 2"));
    }

    #[test]
    fn seed_derivation_deterministic_and_distinct() {
        let group = SchnorrGroup::test_256();
        let a = SigningKey::from_seed(&group, b"seed");
        let b = SigningKey::from_seed(&group, b"seed");
        let c = SigningKey::from_seed(&group, b"other");
        assert_eq!(a.verifying_key().element(), b.verifying_key().element());
        assert_ne!(a.verifying_key().element(), c.verifying_key().element());
    }

    #[test]
    fn generate_produces_valid_keys() {
        let group = SchnorrGroup::test_256();
        let mut rng = StdRng::seed_from_u64(9);
        let sk = SigningKey::generate(&group, &mut rng);
        assert!(group.is_element(sk.verifying_key().element()));
        let sig = sk.sign(b"generated");
        assert!(sk.verifying_key().verify(b"generated", &sig));
    }

    #[test]
    fn signature_byte_encoding() {
        let (group, sk) = setup();
        let sig = sk.sign(b"enc");
        let bytes = sig.to_bytes(&group);
        assert_eq!(bytes.len(), 2 * group.element_len());
    }

    #[test]
    fn works_on_512_bit_group() {
        let group = SchnorrGroup::test_512();
        let sk = SigningKey::from_seed(&group, b"512");
        let sig = sk.sign(b"bigger group");
        assert!(sk.verifying_key().verify(b"bigger group", &sig));
        assert!(!sk.verifying_key().verify(b"other", &sig));
    }

    #[test]
    fn debug_never_leaks_secret() {
        let (_, sk) = setup();
        let debug = format!("{sk:?}");
        assert!(!debug.contains(&sk.secret_scalar().to_hex()));
    }

    /// Textbook verification, used as the oracle for the fast paths.
    fn verify_reference(vk: &VerifyingKey, message: &[u8], sig: &Signature) -> bool {
        let group = vk.group();
        if !group.is_element(sig.r()) || sig.s() >= group.q() {
            return false;
        }
        let e = challenge(group, sig.r(), vk.element(), message);
        let lhs = group.g().pow_mod_reference(sig.s(), group.p());
        let ye = vk.element().pow_mod_reference(&e, group.p());
        lhs == group.mul(sig.r(), &ye)
    }

    #[test]
    fn straus_and_table_paths_agree_with_reference() {
        let (_, sk) = setup();
        let vk = sk.verifying_key().clone();
        // Crossing KEY_TABLE_THRESHOLD switches verify from the Straus path
        // to the per-key window table; every call must agree with the
        // textbook check, for good and forged signatures alike.
        for i in 0..(2 * KEY_TABLE_THRESHOLD + 2) {
            let msg = format!("message-{i}");
            let sig = sk.sign(msg.as_bytes());
            assert!(vk.verify(msg.as_bytes(), &sig));
            assert!(verify_reference(&vk, msg.as_bytes(), &sig));
            assert!(!vk.verify(b"wrong message", &sig));
            assert!(!verify_reference(&vk, b"wrong message", &sig));
        }
        assert!(vk.cache.table.get().is_some(), "table should have trained");
    }

    #[test]
    fn clones_share_the_verification_cache() {
        let (_, sk) = setup();
        let vk = sk.verifying_key().clone();
        let sig = sk.sign(b"shared-cache");
        for _ in 0..KEY_TABLE_THRESHOLD {
            assert!(vk.verify(b"shared-cache", &sig));
        }
        // The clone sees the table trained by the original.
        let clone = vk.clone();
        assert!(clone.cache.table.get().is_some());
        assert!(clone.verify(b"shared-cache", &sig));
    }

    #[test]
    fn equality_ignores_cache_state() {
        let group = SchnorrGroup::test_256();
        let sk = SigningKey::from_seed(&group, b"eq-key");
        // Same key derived twice: independent caches, equal keys.
        let cold = SigningKey::from_seed(&group, b"eq-key")
            .verifying_key()
            .clone();
        let warm = sk.verifying_key().clone();
        let sig = sk.sign(b"m");
        for _ in 0..KEY_TABLE_THRESHOLD + 1 {
            assert!(warm.verify(b"m", &sig));
        }
        assert_eq!(cold, warm);
    }
}

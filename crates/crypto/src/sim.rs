//! Fast *simulation-only* signatures.
//!
//! At 2048-bit security every Schnorr verification costs a modular
//! exponentiation, which would dominate the runtime of experiments that
//! push hundreds of thousands of transactions and measure protocol-level
//! quantities (loss, unchecked fraction, message counts). `SimKeyPair`
//! replaces the signature with a hash tag so those experiments measure the
//! protocol rather than the exponentiation, as documented in DESIGN.md
//! (substitution 3).
//!
//! # Security model (read this)
//!
//! A sim "signature" over `m` is `SHA-256("sim-sig" ‖ pk ‖ m)`: anyone
//! holding the public key *could* compute it. Within the simulation this is
//! sound because the adversaries are our own code and model a
//! computationally-bounded attacker: a forging node calls
//! [`SimSignature::forged`], which produces a random tag that fails
//! verification — exactly the negligible-`λ` forgery success the paper
//! assumes. Never use this scheme outside a simulation.

use std::fmt;

use rand::Rng;

use crate::sha256::{sha256, Digest, Sha256};

/// A simulation-only key pair.
#[derive(Clone, PartialEq, Eq)]
pub struct SimKeyPair {
    public: SimPublicKey,
}

/// A simulation-only public key: 32 opaque bytes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimPublicKey(pub(crate) [u8; 32]);

/// A simulation-only signature tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimSignature(pub(crate) Digest);

impl fmt::Debug for SimKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimKeyPair")
            .field("public", &self.public)
            .finish()
    }
}

impl fmt::Debug for SimPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimPublicKey({}…)", &crate::hex::encode(&self.0)[..8])
    }
}

impl fmt::Debug for SimSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimSignature({}…)", &self.0.to_hex()[..8])
    }
}

impl SimKeyPair {
    /// Derives a key pair deterministically from a seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update_field(b"sim-keygen");
        h.update_field(seed);
        SimKeyPair {
            public: SimPublicKey(h.finalize().to_bytes()),
        }
    }

    /// Generates a random key pair.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; 32];
        rng.fill(&mut seed);
        Self::from_seed(&seed)
    }

    /// The public key.
    pub fn public_key(&self) -> &SimPublicKey {
        &self.public
    }

    /// Produces the tag for `message`.
    pub fn sign(&self, message: &[u8]) -> SimSignature {
        SimSignature(tag(&self.public, message))
    }
}

impl SimPublicKey {
    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &SimSignature) -> bool {
        tag(self, message) == signature.0
    }

    /// Canonical byte encoding.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.0
    }
}

impl SimSignature {
    /// Rebuilds a signature from its raw tag (deserialization).
    pub fn from_digest(digest: Digest) -> Self {
        SimSignature(digest)
    }

    /// A forgery attempt by an adversary without the key: a random tag.
    ///
    /// Fails verification except with probability `2^-256`, modeling the
    /// paper's negligible-`λ` forgery bound.
    pub fn forged<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        SimSignature(Digest(bytes))
    }

    /// The raw tag.
    pub fn digest(&self) -> &Digest {
        &self.0
    }
}

fn tag(public: &SimPublicKey, message: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update_field(b"sim-sig");
    h.update_field(&public.0);
    h.update_field(message);
    h.finalize()
}

/// Simulation-only VRF: `output = H(pk, m)`, proof is the output itself.
///
/// Pseudorandom and unique by construction of SHA-256; "verification"
/// recomputes the hash. As with [`SimKeyPair`], soundness against forgery
/// holds only under the simulation's adversary discipline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimVrf {
    key: SimKeyPair,
}

impl SimVrf {
    /// Derives deterministically from a seed.
    pub fn from_seed(seed: &[u8]) -> Self {
        SimVrf {
            key: SimKeyPair::from_seed(seed),
        }
    }

    /// The public key.
    pub fn public_key(&self) -> &SimPublicKey {
        &self.key.public
    }

    /// Evaluates on `message`.
    pub fn evaluate(&self, message: &[u8]) -> Digest {
        sim_vrf_output(&self.key.public, message)
    }
}

/// Recomputes (= verifies) a sim-VRF output for a public key.
pub fn sim_vrf_output(public: &SimPublicKey, message: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update_field(b"sim-vrf");
    h.update_field(&public.0);
    h.update_field(message);
    h.finalize()
}

/// One-shot convenience mirroring [`crate::sha256::sha256`].
pub fn sim_id(bytes: &[u8]) -> Digest {
    sha256(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = SimKeyPair::from_seed(b"node-1");
        let sig = kp.sign(b"payload");
        assert!(kp.public_key().verify(b"payload", &sig));
        assert!(!kp.public_key().verify(b"other", &sig));
    }

    #[test]
    fn keys_are_deterministic_and_distinct() {
        assert_eq!(SimKeyPair::from_seed(b"a"), SimKeyPair::from_seed(b"a"));
        assert_ne!(SimKeyPair::from_seed(b"a"), SimKeyPair::from_seed(b"b"));
    }

    #[test]
    fn forgery_fails() {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = SimKeyPair::from_seed(b"victim");
        for _ in 0..100 {
            let forged = SimSignature::forged(&mut rng);
            assert!(!kp.public_key().verify(b"payload", &forged));
        }
    }

    #[test]
    fn cross_key_verification_fails() {
        let kp1 = SimKeyPair::from_seed(b"k1");
        let kp2 = SimKeyPair::from_seed(b"k2");
        let sig = kp1.sign(b"m");
        assert!(!kp2.public_key().verify(b"m", &sig));
    }

    #[test]
    fn sim_vrf_deterministic_unique() {
        let vrf = SimVrf::from_seed(b"gov-1");
        assert_eq!(vrf.evaluate(b"r1"), vrf.evaluate(b"r1"));
        assert_ne!(vrf.evaluate(b"r1"), vrf.evaluate(b"r2"));
        assert_eq!(sim_vrf_output(vrf.public_key(), b"r1"), vrf.evaluate(b"r1"));
        let other = SimVrf::from_seed(b"gov-2");
        assert_ne!(vrf.evaluate(b"r1"), other.evaluate(b"r1"));
    }

    #[test]
    fn generate_uses_rng() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = SimKeyPair::generate(&mut rng);
        let b = SimKeyPair::generate(&mut rng);
        assert_ne!(a, b);
    }
}

//! A Verifiable Random Function (VRF) over a [`SchnorrGroup`].
//!
//! §3.4.3 of the paper elects the round leader with a VRF: each governor
//! computes `⟨hash, π⟩ ← VRF_g(r, j, u)` per stake unit and the least hash
//! wins. This module implements an ECVRF-style construction transplanted to
//! MODP groups:
//!
//! - keys: `x` secret, `y = g^x` public (shared with Schnorr keys),
//! - eval(m): `h = HashToGroup(m)`, `gamma = h^x`,
//!   `π = DLEQ(g, y; h, gamma)`, output `= H(gamma)`,
//! - verify(m, out, π): check the DLEQ proof and recompute the output.
//!
//! Uniqueness follows from `gamma` being determined by `(m, x)`;
//! pseudorandomness from the DDH assumption in the group (for the secure
//! parameter set).
//!
//! [`SchnorrGroup`]: crate::group::SchnorrGroup

use std::fmt;

use rand::Rng;

use crate::bigint::BigUint;
use crate::dleq::{DleqProof, DleqStatement};
use crate::group::SchnorrGroup;
use crate::schnorr::{SigningKey, VerifyingKey};
use crate::sha256::{Digest, Sha256};

/// Domain tag for hashing messages into the group.
const H2G_DOMAIN: &str = "vrf-hash-to-group";

/// A VRF key pair (wraps a Schnorr key pair; same secret scalar).
#[derive(Clone, Debug)]
pub struct VrfKeyPair {
    key: SigningKey,
}

/// A VRF output together with the proof that it was computed correctly.
#[derive(Clone, PartialEq, Eq)]
pub struct VrfProof {
    gamma: BigUint,
    dleq: DleqProof,
}

impl fmt::Debug for VrfProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VrfProof")
            .field("gamma", &self.gamma)
            .finish_non_exhaustive()
    }
}

impl VrfKeyPair {
    /// Generates a fresh VRF key pair.
    pub fn generate<R: Rng + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> Self {
        VrfKeyPair {
            key: SigningKey::generate(group, rng),
        }
    }

    /// Derives a VRF key pair deterministically from a seed.
    pub fn from_seed(group: &SchnorrGroup, seed: &[u8]) -> Self {
        VrfKeyPair {
            key: SigningKey::from_seed(group, seed),
        }
    }

    /// Wraps an existing Schnorr signing key (they share key material).
    pub fn from_signing_key(key: SigningKey) -> Self {
        VrfKeyPair { key }
    }

    /// The public key against which proofs verify.
    pub fn public_key(&self) -> &VerifyingKey {
        self.key.verifying_key()
    }

    /// Evaluates the VRF on `message`, returning `(output, proof)`.
    pub fn evaluate(&self, message: &[u8]) -> (Digest, VrfProof) {
        evaluate_with_key(&self.key, message)
    }
}

/// Evaluates the VRF directly with a borrowed Schnorr signing key.
///
/// Identical to [`VrfKeyPair::evaluate`], without requiring the caller to
/// move (or clone) the key into a `VrfKeyPair` wrapper first.
pub fn evaluate_with_key(key: &SigningKey, message: &[u8]) -> (Digest, VrfProof) {
    let group = key.group();
    let h = group.hash_to_group(H2G_DOMAIN, message);
    let x = key.secret_scalar();
    let gamma = group.pow(&h, x);
    let statement = DleqStatement {
        group,
        g: group.g(),
        y: key.verifying_key().element(),
        h: &h,
        z: &gamma,
    };
    let dleq = DleqProof::prove(&statement, x);
    let output = output_from_gamma(group, &gamma);
    (output, VrfProof { gamma, dleq })
}

impl VrfProof {
    /// Verifies the proof for `message` under `public_key`; returns the
    /// authenticated VRF output on success.
    pub fn verify(&self, public_key: &VerifyingKey, message: &[u8]) -> Option<Digest> {
        let group = public_key.group();
        if !group.is_element(&self.gamma) {
            return None;
        }
        let h = group.hash_to_group(H2G_DOMAIN, message);
        let statement = DleqStatement {
            group,
            g: group.g(),
            y: public_key.element(),
            h: &h,
            z: &self.gamma,
        };
        if !self.dleq.verify(&statement) {
            return None;
        }
        Some(output_from_gamma(group, &self.gamma))
    }

    /// The group element `gamma = h^x` (the pre-output).
    pub fn gamma(&self) -> &BigUint {
        &self.gamma
    }
}

/// Verifies a batch of VRF proofs, returning per-item authenticated
/// outputs (`None` where verification fails).
///
/// Each proof *is* a DLEQ proof over the statement
/// `(g, y; HashToGroup(m), gamma)`, so the batch reduces to
/// [`crate::batch::verify_dleq_batch`] after the per-item `hash_to_group`
/// and the subgroup check on `gamma` — equivalent to [`VrfProof::verify`]
/// item by item, with the DLEQ exponentiations combined.
pub fn verify_batch(items: &[(&[u8], &VrfProof, &VerifyingKey)]) -> Vec<Option<Digest>> {
    let mut out = vec![None; items.len()];
    let hs: Vec<Option<BigUint>> = items
        .iter()
        .map(|(message, proof, public_key)| {
            let group = public_key.group();
            group
                .is_element(&proof.gamma)
                .then(|| group.hash_to_group(H2G_DOMAIN, message))
        })
        .collect();
    let mut statements = Vec::with_capacity(items.len());
    let mut live = Vec::with_capacity(items.len());
    for ((i, (_, proof, public_key)), h) in items.iter().enumerate().zip(&hs) {
        let Some(h) = h else { continue };
        let group = public_key.group();
        statements.push(DleqStatement {
            group,
            g: group.g(),
            y: public_key.element(),
            h,
            z: &proof.gamma,
        });
        live.push(i);
    }
    let dleq_items: Vec<(&DleqStatement<'_>, &DleqProof)> = statements
        .iter()
        .zip(&live)
        .map(|(st, &i)| (st, &items[i].1.dleq))
        .collect();
    let verdicts = match crate::batch::verify_dleq_batch(&dleq_items) {
        Ok(()) => vec![true; dleq_items.len()],
        Err(bad) => {
            let mut v = vec![true; dleq_items.len()];
            for b in bad {
                v[b] = false;
            }
            v
        }
    };
    for (&i, ok) in live.iter().zip(verdicts) {
        if ok {
            let (_, proof, public_key) = items[i];
            out[i] = Some(output_from_gamma(public_key.group(), &proof.gamma));
        }
    }
    out
}

fn output_from_gamma(group: &SchnorrGroup, gamma: &BigUint) -> Digest {
    let mut h = Sha256::new();
    h.update_field(b"vrf-output");
    h.update_field(group.name().as_bytes());
    h.update_field(&group.element_to_bytes(gamma));
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair() -> VrfKeyPair {
        VrfKeyPair::from_seed(&SchnorrGroup::test_256(), b"vrf-test")
    }

    #[test]
    fn evaluate_verify_roundtrip() {
        let kp = keypair();
        let (out, proof) = kp.evaluate(b"round-1");
        assert_eq!(proof.verify(kp.public_key(), b"round-1"), Some(out));
    }

    #[test]
    fn uniqueness_same_message_same_output() {
        let kp = keypair();
        let (out1, _) = kp.evaluate(b"round-7");
        let (out2, _) = kp.evaluate(b"round-7");
        assert_eq!(out1, out2);
    }

    #[test]
    fn different_messages_different_outputs() {
        let kp = keypair();
        let (out1, _) = kp.evaluate(b"round-1");
        let (out2, _) = kp.evaluate(b"round-2");
        assert_ne!(out1, out2);
    }

    #[test]
    fn different_keys_different_outputs() {
        let group = SchnorrGroup::test_256();
        let kp1 = VrfKeyPair::from_seed(&group, b"key-1");
        let kp2 = VrfKeyPair::from_seed(&group, b"key-2");
        let (out1, _) = kp1.evaluate(b"same-round");
        let (out2, _) = kp2.evaluate(b"same-round");
        assert_ne!(out1, out2);
    }

    #[test]
    fn proof_bound_to_message() {
        let kp = keypair();
        let (_, proof) = kp.evaluate(b"round-1");
        assert_eq!(proof.verify(kp.public_key(), b"round-2"), None);
    }

    #[test]
    fn proof_bound_to_key() {
        let group = SchnorrGroup::test_256();
        let kp1 = VrfKeyPair::from_seed(&group, b"key-1");
        let kp2 = VrfKeyPair::from_seed(&group, b"key-2");
        let (_, proof) = kp1.evaluate(b"round-1");
        assert_eq!(proof.verify(kp2.public_key(), b"round-1"), None);
    }

    #[test]
    fn forged_gamma_rejected() {
        let kp = keypair();
        let group = SchnorrGroup::test_256();
        let (_, proof) = kp.evaluate(b"round-1");
        // Replace gamma with another subgroup element; DLEQ must fail.
        let forged = VrfProof {
            gamma: group.pow_g(&BigUint::from_u64(5)),
            dleq: proof.dleq.clone(),
        };
        assert_eq!(forged.verify(kp.public_key(), b"round-1"), None);
        // Out-of-subgroup gamma rejected before the DLEQ check.
        let forged = VrfProof {
            gamma: group.p().sub(&BigUint::one()),
            dleq: proof.dleq,
        };
        assert_eq!(forged.verify(kp.public_key(), b"round-1"), None);
    }

    #[test]
    fn outputs_are_spread() {
        // Smoke-test pseudorandomness: outputs over 64 messages should not
        // collide and their leading u64s should span a wide range.
        let kp = keypair();
        let mut outs: Vec<u64> = (0..64u32)
            .map(|i| kp.evaluate(&i.to_be_bytes()).0.to_u64())
            .collect();
        outs.sort_unstable();
        outs.dedup();
        assert_eq!(outs.len(), 64);
        let spread = outs.last().unwrap() - outs.first().unwrap();
        assert!(spread > u64::MAX / 4, "outputs clustered: spread {spread}");
    }

    #[test]
    fn batch_verify_matches_individual() {
        let group = SchnorrGroup::test_256();
        let kps: Vec<VrfKeyPair> = (0..4)
            .map(|i| VrfKeyPair::from_seed(&group, format!("batch-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..6u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let evals: Vec<(Digest, VrfProof)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| kps[i % 4].evaluate(m))
            .collect();
        let items: Vec<(&[u8], &VrfProof, &VerifyingKey)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (&m[..], &evals[i].1, kps[i % 4].public_key()))
            .collect();
        let batch = verify_batch(&items);
        for (i, (m, proof, pk)) in items.iter().enumerate() {
            assert_eq!(batch[i], proof.verify(pk, m));
            assert_eq!(batch[i], Some(evals[i].0));
        }
        // Present item 2 under the wrong message: batch must reject exactly
        // that item and keep the others.
        let mut bad_items = items.clone();
        bad_items[2].0 = b"wrong message";
        let batch = verify_batch(&bad_items);
        for (i, verdict) in batch.iter().enumerate() {
            assert_eq!(verdict.is_some(), i != 2, "item {i}");
        }
    }

    #[test]
    fn from_signing_key_shares_public_key() {
        let group = SchnorrGroup::test_256();
        let sk = crate::schnorr::SigningKey::from_seed(&group, b"shared");
        let pk = sk.verifying_key().clone();
        let kp = VrfKeyPair::from_signing_key(sk);
        assert_eq!(kp.public_key(), &pk);
        let (out, proof) = kp.evaluate(b"m");
        assert_eq!(proof.verify(&pk, b"m"), Some(out));
    }
}

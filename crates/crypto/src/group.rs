//! Schnorr groups: prime-order subgroups of `Z_p^*` for a safe prime `p`.
//!
//! All discrete-log-based primitives in this crate (Schnorr signatures,
//! Chaum–Pedersen DLEQ proofs, and the VRF) operate over a [`SchnorrGroup`]:
//! the order-`q` subgroup of quadratic residues modulo a safe prime
//! `p = 2q + 1`. Five parameter sets are provided:
//!
//! - [`SchnorrGroup::rfc3526_2048`], [`SchnorrGroup::rfc3526_3072`],
//!   [`SchnorrGroup::rfc3526_4096`] — the MODP groups 14–16 from RFC 3526
//!   (2048-bit is the secure default),
//! - [`SchnorrGroup::test_512`] and [`SchnorrGroup::test_256`] — small groups
//!   for fast tests and simulations. **These are not secure** and exist only
//!   to keep test suites and high-volume experiments fast.
//!
//! # Exponentiation hot path
//!
//! Every group owns one [`Montgomery`] context (built once, reused by all
//! exponentiations) and lazily builds a [`FixedBaseTable`] for the
//! generator after [`G_TABLE_THRESHOLD`] `pow_g` calls, turning the
//! hottest operation in signing/key-gen/VRF evaluation into table lookups.
//! Subgroup membership tests use the Jacobi symbol instead of an
//! `x^q mod p` exponentiation (~30× cheaper at 2048 bits); the
//! Euler-criterion original is retained as
//! [`SchnorrGroup::is_element_reference`] and pinned to the fast path by
//! property tests.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};

use rand::Rng;

use crate::bigint::{jacobi, BigUint, FixedBaseTable, Montgomery};
use crate::sha256::Sha256;

/// Number of `pow_g` calls after which the generator window table is
/// built. One-shot users (a single key-gen, a lone forged signature)
/// never pay the build; any steady caller amortizes it within a few
/// operations.
pub const G_TABLE_THRESHOLD: u64 = 2;

/// RFC 3526 group 14: 2048-bit MODP prime (a safe prime), generator 2.
const RFC3526_2048_P: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF";

/// RFC 3526 group 15: 3072-bit MODP prime (a safe prime), generator 2.
const RFC3526_3072_P: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33\
A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7\
ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864\
D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2\
08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A93AD2CAFFFFFFFFFFFFFFFF";

/// RFC 3526 group 16: 4096-bit MODP prime (a safe prime), generator 2.
const RFC3526_4096_P: &str = "\
FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74\
020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437\
4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED\
EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05\
98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB\
9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B\
E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718\
3995497CEA956AE515D2261898FA051015728E5A8AAAC42DAD33170D04507A33\
A85521ABDF1CBA64ECFB850458DBEF0A8AEA71575D060C7DB3970F85A6E1E4C7\
ABF5AE8CDB0933D71E8C94E04A25619DCEE3D2261AD2EE6BF12FFA06D98A0864\
D87602733EC86A64521F2B18177B200CBBE117577A615D6C770988C0BAD946E2\
08E24FA074E5AB3143DB5BFCE0FD108E4B82D120A92108011A723C12A787E6D7\
88719A10BDBA5B2699C327186AF4E23C1A946834B6150BDA2583E9CA2AD44CE8\
DBBBC2DB04DE8EF92E8EFC141FBECAA6287C59474E6BC05D99B2964FA090C3A2\
233BA186515BE7ED1F612970CEE2D7AFB81BDD762170481CD0069127D5B05AA9\
93B4EA988D8FDDC186FFB7DC90A6C08F4DF435C934063199FFFFFFFFFFFFFFFF";

/// 512-bit safe prime for tests (deterministically generated; INSECURE).
const TEST_512_P: &str = "\
ee2c50993f2bc0bb8dcaccb41f81d9cf35e3f7bbd0e8c2b90d143f2704683b67\
27016b2dedc50d6920f98dce68f096b9efa87e7cd76a2e3c89518c5642dd65cf";

/// 256-bit safe prime for tests (deterministically generated; INSECURE).
const TEST_256_P: &str = "d87d5bf5d41fe719288a7235e78adfc7713253fa5e3b8acac9f3184936331497";

/// A Schnorr group: the order-`q` subgroup of `Z_p^*` with `p = 2q + 1`.
///
/// Cheap to clone (parameters are behind an `Arc`).
///
/// # Examples
///
/// ```
/// use prb_crypto::group::SchnorrGroup;
///
/// let group = SchnorrGroup::test_256();
/// let x = group.random_scalar(&mut rand::thread_rng());
/// let y = group.pow_g(&x);
/// assert!(group.is_element(&y));
/// ```
#[derive(Clone)]
pub struct SchnorrGroup {
    inner: Arc<GroupParams>,
}

struct GroupParams {
    /// Safe prime modulus.
    p: BigUint,
    /// Subgroup order, `q = (p - 1) / 2`.
    q: BigUint,
    /// Generator of the order-`q` subgroup.
    g: BigUint,
    /// Byte length of `p` (for fixed-width serialization).
    element_len: usize,
    /// Human-readable parameter-set name.
    name: &'static str,
    /// Cached Montgomery context for `p`, shared by every exponentiation.
    mont: Montgomery,
    /// Lazily-built fixed-base window table for the generator.
    g_table: OnceLock<FixedBaseTable>,
    /// `pow_g` calls so far; triggers the table build at the threshold.
    pow_g_calls: AtomicU64,
}

impl fmt::Debug for SchnorrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrGroup")
            .field("name", &self.inner.name)
            .field("bits", &self.inner.p.bit_len())
            .finish()
    }
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        self.inner.p == other.inner.p && self.inner.g == other.inner.g
    }
}

impl Eq for SchnorrGroup {}

impl SchnorrGroup {
    fn from_safe_prime_hex(p_hex: &str, g: u64, name: &'static str) -> Self {
        let p = BigUint::from_hex(p_hex).expect("valid hex constant");
        let q = p.shr(1); // (p - 1) / 2 for odd p
        let element_len = p.bit_len().div_ceil(8);
        let mont = Montgomery::new(&p);
        SchnorrGroup {
            inner: Arc::new(GroupParams {
                p,
                q,
                g: BigUint::from_u64(g),
                element_len,
                name,
                mont,
                g_table: OnceLock::new(),
                pow_g_calls: AtomicU64::new(0),
            }),
        }
    }

    /// The 2048-bit MODP group from RFC 3526 (group 14), generator 2.
    ///
    /// `2` generates the order-`q` subgroup because `p ≡ 7 (mod 8)` makes 2
    /// a quadratic residue.
    pub fn rfc3526_2048() -> Self {
        Self::from_safe_prime_hex(RFC3526_2048_P, 2, "rfc3526-2048")
    }

    /// The 3072-bit MODP group from RFC 3526 (group 15), generator 2.
    pub fn rfc3526_3072() -> Self {
        Self::from_safe_prime_hex(RFC3526_3072_P, 2, "rfc3526-3072")
    }

    /// The 4096-bit MODP group from RFC 3526 (group 16), generator 2.
    pub fn rfc3526_4096() -> Self {
        Self::from_safe_prime_hex(RFC3526_4096_P, 2, "rfc3526-4096")
    }

    /// A 512-bit test group. **Insecure**; for tests and simulations only.
    ///
    /// Generator 4 = 2² is always a quadratic residue, hence has order `q`.
    pub fn test_512() -> Self {
        Self::from_safe_prime_hex(TEST_512_P, 4, "test-512")
    }

    /// A 256-bit test group. **Insecure**; for tests and simulations only.
    pub fn test_256() -> Self {
        Self::from_safe_prime_hex(TEST_256_P, 4, "test-256")
    }

    /// The modulus `p`.
    pub fn p(&self) -> &BigUint {
        &self.inner.p
    }

    /// The subgroup order `q`.
    pub fn q(&self) -> &BigUint {
        &self.inner.q
    }

    /// The generator `g`.
    pub fn g(&self) -> &BigUint {
        &self.inner.g
    }

    /// Parameter-set name (e.g. `"rfc3526-2048"`).
    pub fn name(&self) -> &'static str {
        self.inner.name
    }

    /// Byte width used for fixed-length element serialization.
    pub fn element_len(&self) -> usize {
        self.inner.element_len
    }

    /// Uniformly samples a non-zero scalar in `[1, q)`.
    pub fn random_scalar<R: Rng + ?Sized>(&self, rng: &mut R) -> BigUint {
        loop {
            let s = BigUint::random_below(rng, &self.inner.q);
            if !s.is_zero() {
                return s;
            }
        }
    }

    /// The group's cached Montgomery context (for callers that manage
    /// their own precomputation, e.g. per-key window tables).
    pub fn mont(&self) -> &Montgomery {
        &self.inner.mont
    }

    /// `g^e mod p`.
    ///
    /// After [`G_TABLE_THRESHOLD`] calls a fixed-base window table for `g`
    /// is built (shared across clones through the `Arc` inner) and every
    /// subsequent call is answered from it: one multiplication per nonzero
    /// 4-bit exponent digit, no squarings.
    pub fn pow_g(&self, e: &BigUint) -> BigUint {
        let inner = &*self.inner;
        let table = match inner.g_table.get() {
            Some(t) => Some(t),
            None if inner.pow_g_calls.fetch_add(1, Relaxed) + 1 >= G_TABLE_THRESHOLD => {
                Some(inner.g_table.get_or_init(|| {
                    FixedBaseTable::build(&inner.mont, &inner.g, inner.q.bit_len())
                }))
            }
            None => None,
        };
        match table.and_then(|t| t.pow(&inner.mont, e)) {
            Some(out) => out,
            None => inner.mont.pow(&inner.g, e),
        }
    }

    /// `base^e mod p`, routed through the generator table when `base` is
    /// the generator (the common case in DLEQ statements).
    pub fn pow_base(&self, base: &BigUint, e: &BigUint) -> BigUint {
        if base == &self.inner.g {
            self.pow_g(e)
        } else {
            self.inner.mont.pow(base, e)
        }
    }

    /// `base^e mod p`.
    pub fn pow(&self, base: &BigUint, e: &BigUint) -> BigUint {
        self.inner.mont.pow(base, e)
    }

    /// Straus/Shamir simultaneous exponentiation `∏ baseᵢ^expᵢ mod p`
    /// with one shared squaring chain (see [`Montgomery::multi_pow`]).
    pub fn multi_pow(&self, pairs: &[(&BigUint, &BigUint)]) -> BigUint {
        self.inner.mont.multi_pow(pairs)
    }

    /// `a * b mod p`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.inner.p)
    }

    /// Scalar addition `a + b mod q` (inputs must be reduced).
    pub fn scalar_add(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.add_mod(b, &self.inner.q)
    }

    /// Scalar multiplication `a * b mod q`.
    pub fn scalar_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        a.mul_mod(b, &self.inner.q)
    }

    /// Reduces arbitrary bytes to a scalar in `[0, q)`.
    pub fn scalar_from_bytes(&self, bytes: &[u8]) -> BigUint {
        BigUint::from_bytes_be(bytes).rem(&self.inner.q)
    }

    /// Whether `x` is a valid element of the order-`q` subgroup.
    ///
    /// For a safe prime `p = 2q + 1` the order-`q` subgroup is exactly the
    /// set of quadratic residues, so this checks `0 < x < p` and
    /// `(x/p) = 1` via the Jacobi symbol — no exponentiation. Equivalent
    /// to (and property-tested against)
    /// [`is_element_reference`](Self::is_element_reference).
    pub fn is_element(&self, x: &BigUint) -> bool {
        !x.is_zero() && x < &self.inner.p && jacobi(x, &self.inner.p) == 1
    }

    /// Euler-criterion subgroup test: `0 < x < p` and `x^q = 1 (mod p)`.
    ///
    /// The pre-optimization implementation, kept as the oracle for
    /// [`is_element`](Self::is_element) in property tests.
    pub fn is_element_reference(&self, x: &BigUint) -> bool {
        !x.is_zero()
            && x < &self.inner.p
            && x.pow_mod_reference(&self.inner.q, &self.inner.p) == BigUint::one()
    }

    /// Hashes a message into the order-`q` subgroup.
    ///
    /// Expands `domain || msg` with counter-mode SHA-256 until enough bytes
    /// are available, reduces mod `p`, and squares: any square is a quadratic
    /// residue, hence lies in the order-`q` subgroup of a safe-prime group.
    /// Re-hashes in the (cryptographically negligible, but possible for the
    /// tiny test groups) event the result is 0 or 1.
    pub fn hash_to_group(&self, domain: &str, msg: &[u8]) -> BigUint {
        let needed = self.inner.element_len + 16; // oversample to smooth the mod-p bias
        let mut counter = 0u32;
        loop {
            let mut bytes = Vec::with_capacity(needed);
            let mut block = 0u32;
            while bytes.len() < needed {
                let mut h = Sha256::new();
                h.update_field(domain.as_bytes());
                h.update_field(msg);
                h.update(&counter.to_be_bytes());
                h.update(&block.to_be_bytes());
                bytes.extend_from_slice(h.finalize().as_bytes());
                block += 1;
            }
            bytes.truncate(needed);
            let x = BigUint::from_bytes_be(&bytes).rem(&self.inner.p);
            let sq = x.mul_mod(&x, &self.inner.p);
            if !sq.is_zero() && sq != BigUint::one() {
                return sq;
            }
            counter += 1;
        }
    }

    /// Serializes a group element to `element_len` big-endian bytes.
    pub fn element_to_bytes(&self, x: &BigUint) -> Vec<u8> {
        x.to_bytes_be_padded(self.inner.element_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn test_groups_are_safe_prime_groups() {
        let mut rng = StdRng::seed_from_u64(1);
        for group in [SchnorrGroup::test_256(), SchnorrGroup::test_512()] {
            assert!(group.p().is_probable_prime(12, &mut rng), "{group:?} p");
            assert!(group.q().is_probable_prime(12, &mut rng), "{group:?} q");
            // p = 2q + 1
            assert_eq!(
                group.q().shl(1).add(&crate::bigint::BigUint::one()),
                *group.p()
            );
            // generator is in the subgroup and not the identity
            assert!(group.is_element(group.g()));
            assert_ne!(*group.g(), BigUint::one());
        }
    }

    #[test]
    #[ignore = "2048-bit Miller-Rabin is slow; run with --ignored"]
    fn rfc3526_is_safe_prime_group() {
        let mut rng = StdRng::seed_from_u64(2);
        let group = SchnorrGroup::rfc3526_2048();
        assert_eq!(group.p().bit_len(), 2048);
        assert!(group.p().is_probable_prime(4, &mut rng));
        assert!(group.q().is_probable_prime(4, &mut rng));
        assert!(group.is_element(group.g()));
    }

    #[test]
    fn rfc3526_constant_sanity() {
        let group = SchnorrGroup::rfc3526_2048();
        assert_eq!(group.p().bit_len(), 2048);
        assert_eq!(group.element_len(), 256);
        // p ≡ 7 (mod 8) makes 2 a quadratic residue.
        assert_eq!(group.p().low_u64() % 8, 7);
        assert_eq!(group.name(), "rfc3526-2048");
    }

    #[test]
    fn exponent_arithmetic_laws() {
        let group = SchnorrGroup::test_256();
        let mut rng = StdRng::seed_from_u64(3);
        let a = group.random_scalar(&mut rng);
        let b = group.random_scalar(&mut rng);
        // g^(a+b) == g^a * g^b
        let lhs = group.pow_g(&group.scalar_add(&a, &b));
        let rhs = group.mul(&group.pow_g(&a), &group.pow_g(&b));
        assert_eq!(lhs, rhs);
        // (g^a)^b == g^(ab)
        let lhs = group.pow(&group.pow_g(&a), &b);
        let rhs = group.pow_g(&group.scalar_mul(&a, &b));
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn group_elements_have_order_q() {
        let group = SchnorrGroup::test_256();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..5 {
            let x = group.random_scalar(&mut rng);
            let y = group.pow_g(&x);
            assert!(group.is_element(&y));
            assert_eq!(group.pow(&y, group.q()), BigUint::one());
        }
        // p - 1 has order 2, not q: must be rejected.
        let minus_one = group.p().sub(&BigUint::one());
        assert!(!group.is_element(&minus_one));
        assert!(!group.is_element(&BigUint::zero()));
        assert!(!group.is_element(group.p()));
    }

    #[test]
    fn hash_to_group_lands_in_subgroup_and_separates() {
        let group = SchnorrGroup::test_256();
        let h1 = group.hash_to_group("vrf", b"message-1");
        let h2 = group.hash_to_group("vrf", b"message-2");
        let h3 = group.hash_to_group("other", b"message-1");
        assert!(group.is_element(&h1));
        assert!(group.is_element(&h2));
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
        // Deterministic.
        assert_eq!(group.hash_to_group("vrf", b"message-1"), h1);
    }

    #[test]
    fn scalar_from_bytes_reduces() {
        let group = SchnorrGroup::test_256();
        let big = vec![0xffu8; 64];
        let s = group.scalar_from_bytes(&big);
        assert!(&s < group.q());
    }

    #[test]
    fn element_serialization_fixed_width() {
        let group = SchnorrGroup::test_256();
        let bytes = group.element_to_bytes(&BigUint::one());
        assert_eq!(bytes.len(), group.element_len());
        assert_eq!(BigUint::from_bytes_be(&bytes), BigUint::one());
    }

    #[test]
    fn groups_compare_by_parameters() {
        assert_eq!(SchnorrGroup::test_256(), SchnorrGroup::test_256());
        assert_ne!(SchnorrGroup::test_256(), SchnorrGroup::test_512());
    }

    #[test]
    fn pow_g_same_before_and_after_table_build() {
        let group = SchnorrGroup::test_256();
        let mut rng = StdRng::seed_from_u64(11);
        let exps: Vec<BigUint> = (0..6).map(|_| group.random_scalar(&mut rng)).collect();
        // First pass may answer some calls pre-table, second pass is all
        // table hits; results must be identical either way.
        let first: Vec<BigUint> = exps.iter().map(|e| group.pow_g(e)).collect();
        let second: Vec<BigUint> = exps.iter().map(|e| group.pow_g(e)).collect();
        assert_eq!(first, second);
        for (e, y) in exps.iter().zip(&first) {
            assert_eq!(y, &group.g().pow_mod_reference(e, group.p()));
        }
    }

    #[test]
    fn pow_base_routes_generator_and_others() {
        let group = SchnorrGroup::test_256();
        let e = BigUint::from_u64(123456789);
        assert_eq!(group.pow_base(group.g(), &e), group.pow_g(&e));
        let h = group.hash_to_group("t", b"base");
        assert_eq!(group.pow_base(&h, &e), group.pow(&h, &e));
    }

    #[test]
    fn multi_pow_matches_separate_exponentiations() {
        let group = SchnorrGroup::test_512();
        let mut rng = StdRng::seed_from_u64(12);
        let y = group.pow_g(&group.random_scalar(&mut rng));
        let s = group.random_scalar(&mut rng);
        let e = group.random_scalar(&mut rng);
        let got = group.multi_pow(&[(group.g(), &s), (&y, &e)]);
        let want = group.mul(&group.pow_g(&s), &group.pow(&y, &e));
        assert_eq!(got, want);
    }

    #[test]
    fn is_element_agrees_with_euler_reference() {
        let group = SchnorrGroup::test_256();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..20 {
            // Arbitrary values below p: roughly half are non-residues.
            let x = BigUint::random_below(&mut rng, group.p());
            assert_eq!(
                group.is_element(&x),
                group.is_element_reference(&x),
                "x={x}"
            );
        }
        assert!(!group.is_element(&BigUint::zero()));
        assert!(!group.is_element(group.p()));
        assert!(group.is_element(&BigUint::one()));
    }

    #[test]
    fn rfc3526_large_groups_constant_sanity() {
        // Bit lengths, p ≡ 7 (mod 8), and a Fermat canary: for random x,
        // x^(p-1) = (x^q)^2 must be 1 and x^q must be ±1. A corrupted
        // constant fails this with overwhelming probability.
        let mut rng = StdRng::seed_from_u64(14);
        for (group, bits) in [
            (SchnorrGroup::rfc3526_3072(), 3072),
            (SchnorrGroup::rfc3526_4096(), 4096),
        ] {
            assert_eq!(group.p().bit_len(), bits);
            assert_eq!(group.element_len(), bits / 8);
            assert_eq!(group.p().low_u64() % 8, 7);
            let x = BigUint::random_below(&mut rng, group.p());
            let xq = group.pow(&x, group.q());
            let minus_one = group.p().sub(&BigUint::one());
            assert!(xq == BigUint::one() || xq == minus_one, "{}", group.name());
            // Jacobi fast path agrees with the Euler criterion.
            assert_eq!(group.is_element(&x), xq == BigUint::one());
            assert!(group.is_element(group.g()));
        }
    }
}

//! HMAC-SHA-256 (RFC 2104) built on the crate's [`Sha256`].
//!
//! HMAC is used for deterministic nonce derivation in Schnorr signing
//! (RFC 6979-style) and as the tag function of the fast [`crate::sim`]
//! signer used in high-volume simulations.
//!
//! [`Sha256`]: crate::sha256::Sha256

use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;

/// Streaming HMAC-SHA-256.
///
/// # Examples
///
/// ```
/// use prb_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     mac.finalize().to_hex(),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(digest.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Finishes and returns the 32-byte tag.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// One-shot HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0b; 20];
        assert_eq!(
            hmac_sha256(&key, b"Hi There").to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        assert_eq!(
            hmac_sha256(b"Jefe", b"what do ya want for nothing?").to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        assert_eq!(
            hmac_sha256(&key, &data).to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaa; 131];
        assert_eq!(
            hmac_sha256(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )
            .to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let key = b"stream-key";
        let msg = b"split across several updates";
        let want = hmac_sha256(key, msg);
        let mut mac = HmacSha256::new(key);
        for chunk in msg.chunks(3) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), want);
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}

//! Process-wide counters for the modular-exponentiation hot path.
//!
//! The crypto layer is shared across simulation threads (groups cross
//! thread boundaries through their `Arc` inner), while the `prb-obs`
//! registry is deliberately single-threaded (`Rc`-based). These relaxed
//! atomics bridge the gap: the hot path bumps them for fractions of a
//! nanosecond, and observability consumers snapshot them at the edges of a
//! run and report deltas.
//!
//! Counted events:
//!
//! - `modexp_calls` — full modular exponentiations (Montgomery or plain),
//! - `multi_pow_calls` — Straus/Shamir simultaneous exponentiations,
//! - `table_builds` — fixed-base window-table precomputations,
//! - `table_pows` — exponentiations answered from a fixed-base table.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static MODEXP_CALLS: AtomicU64 = AtomicU64::new(0);
static MULTI_POW_CALLS: AtomicU64 = AtomicU64::new(0);
static TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);
static TABLE_POWS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn record_modexp() {
    MODEXP_CALLS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_multi_pow() {
    MULTI_POW_CALLS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_table_build() {
    TABLE_BUILDS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_table_pow() {
    TABLE_POWS.fetch_add(1, Relaxed);
}

/// A point-in-time snapshot of the process-wide crypto counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoStats {
    /// Full modular exponentiations (any base, any modulus).
    pub modexp_calls: u64,
    /// Straus/Shamir simultaneous multi-exponentiations.
    pub multi_pow_calls: u64,
    /// Fixed-base window tables built (generator or public-key tables).
    pub table_builds: u64,
    /// Exponentiations served from a fixed-base table.
    pub table_pows: u64,
}

impl CryptoStats {
    /// Counter increments since `earlier` (saturating, so a stale snapshot
    /// never underflows).
    pub fn delta_since(&self, earlier: &CryptoStats) -> CryptoStats {
        CryptoStats {
            modexp_calls: self.modexp_calls.saturating_sub(earlier.modexp_calls),
            multi_pow_calls: self.multi_pow_calls.saturating_sub(earlier.multi_pow_calls),
            table_builds: self.table_builds.saturating_sub(earlier.table_builds),
            table_pows: self.table_pows.saturating_sub(earlier.table_pows),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> CryptoStats {
    CryptoStats {
        modexp_calls: MODEXP_CALLS.load(Relaxed),
        multi_pow_calls: MULTI_POW_CALLS.load(Relaxed),
        table_builds: TABLE_BUILDS.load(Relaxed),
        table_pows: TABLE_POWS.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_move_and_deltas_subtract() {
        let before = snapshot();
        record_modexp();
        record_multi_pow();
        record_table_build();
        record_table_pow();
        let after = snapshot();
        let d = after.delta_since(&before);
        // Other tests run concurrently and also bump the counters, so only
        // lower bounds are meaningful here.
        assert!(d.modexp_calls >= 1);
        assert!(d.multi_pow_calls >= 1);
        assert!(d.table_builds >= 1);
        assert!(d.table_pows >= 1);
        // A stale snapshot must not underflow.
        assert_eq!(before.delta_since(&after).table_builds, 0);
    }
}

//! Process-wide counters for the modular-exponentiation hot path.
//!
//! The crypto layer is shared across simulation threads (groups cross
//! thread boundaries through their `Arc` inner), while the `prb-obs`
//! registry is deliberately single-threaded (`Rc`-based). These relaxed
//! atomics bridge the gap: the hot path bumps them for fractions of a
//! nanosecond, and observability consumers snapshot them at the edges of a
//! run and report deltas.
//!
//! Counted events:
//!
//! - `modexp_calls` — full modular exponentiations (Montgomery or plain),
//! - `multi_pow_calls` — Straus/Shamir simultaneous exponentiations,
//! - `table_builds` — fixed-base window-table precomputations,
//! - `table_pows` — exponentiations answered from a fixed-base table,
//! - `batch_calls` / `batch_items` — RLC batch verifications and the items
//!   they covered ([`crate::batch`]),
//! - `batch_bisect_steps` — batch splits while isolating a bad item,
//! - `batch_fallback_items` — batch items that ended up individually
//!   verified (singleton partitions and bisection leaves).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static MODEXP_CALLS: AtomicU64 = AtomicU64::new(0);
static MULTI_POW_CALLS: AtomicU64 = AtomicU64::new(0);
static TABLE_BUILDS: AtomicU64 = AtomicU64::new(0);
static TABLE_POWS: AtomicU64 = AtomicU64::new(0);
static BATCH_CALLS: AtomicU64 = AtomicU64::new(0);
static BATCH_ITEMS: AtomicU64 = AtomicU64::new(0);
static BATCH_BISECT_STEPS: AtomicU64 = AtomicU64::new(0);
static BATCH_FALLBACK_ITEMS: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn record_modexp() {
    MODEXP_CALLS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_multi_pow() {
    MULTI_POW_CALLS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_table_build() {
    TABLE_BUILDS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_table_pow() {
    TABLE_POWS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_batch(items: u64) {
    BATCH_CALLS.fetch_add(1, Relaxed);
    BATCH_ITEMS.fetch_add(items, Relaxed);
}

#[inline]
pub(crate) fn record_batch_bisect() {
    BATCH_BISECT_STEPS.fetch_add(1, Relaxed);
}

#[inline]
pub(crate) fn record_batch_fallback(items: u64) {
    BATCH_FALLBACK_ITEMS.fetch_add(items, Relaxed);
}

/// A point-in-time snapshot of the process-wide crypto counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CryptoStats {
    /// Full modular exponentiations (any base, any modulus).
    pub modexp_calls: u64,
    /// Straus/Shamir simultaneous multi-exponentiations.
    pub multi_pow_calls: u64,
    /// Fixed-base window tables built (generator or public-key tables).
    pub table_builds: u64,
    /// Exponentiations served from a fixed-base table.
    pub table_pows: u64,
    /// RLC batch-verification calls (Schnorr or DLEQ).
    pub batch_calls: u64,
    /// Total items passed to batch verification.
    pub batch_items: u64,
    /// Batch halvings performed while bisecting to a bad item.
    pub batch_bisect_steps: u64,
    /// Batch items that fell back to individual verification.
    pub batch_fallback_items: u64,
}

impl CryptoStats {
    /// Counter increments since `earlier` (saturating, so a stale snapshot
    /// never underflows).
    pub fn delta_since(&self, earlier: &CryptoStats) -> CryptoStats {
        CryptoStats {
            modexp_calls: self.modexp_calls.saturating_sub(earlier.modexp_calls),
            multi_pow_calls: self.multi_pow_calls.saturating_sub(earlier.multi_pow_calls),
            table_builds: self.table_builds.saturating_sub(earlier.table_builds),
            table_pows: self.table_pows.saturating_sub(earlier.table_pows),
            batch_calls: self.batch_calls.saturating_sub(earlier.batch_calls),
            batch_items: self.batch_items.saturating_sub(earlier.batch_items),
            batch_bisect_steps: self
                .batch_bisect_steps
                .saturating_sub(earlier.batch_bisect_steps),
            batch_fallback_items: self
                .batch_fallback_items
                .saturating_sub(earlier.batch_fallback_items),
        }
    }
}

/// Reads the current counter values.
pub fn snapshot() -> CryptoStats {
    CryptoStats {
        modexp_calls: MODEXP_CALLS.load(Relaxed),
        multi_pow_calls: MULTI_POW_CALLS.load(Relaxed),
        table_builds: TABLE_BUILDS.load(Relaxed),
        table_pows: TABLE_POWS.load(Relaxed),
        batch_calls: BATCH_CALLS.load(Relaxed),
        batch_items: BATCH_ITEMS.load(Relaxed),
        batch_bisect_steps: BATCH_BISECT_STEPS.load(Relaxed),
        batch_fallback_items: BATCH_FALLBACK_ITEMS.load(Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_move_and_deltas_subtract() {
        let before = snapshot();
        record_modexp();
        record_multi_pow();
        record_table_build();
        record_table_pow();
        record_batch(5);
        record_batch_bisect();
        record_batch_fallback(2);
        let after = snapshot();
        let d = after.delta_since(&before);
        // Other tests run concurrently and also bump the counters, so only
        // lower bounds are meaningful here.
        assert!(d.modexp_calls >= 1);
        assert!(d.multi_pow_calls >= 1);
        assert!(d.table_builds >= 1);
        assert!(d.table_pows >= 1);
        assert!(d.batch_calls >= 1);
        assert!(d.batch_items >= 5);
        assert!(d.batch_bisect_steps >= 1);
        assert!(d.batch_fallback_items >= 2);
        // A stale snapshot must not underflow.
        assert_eq!(before.delta_since(&after).table_builds, 0);
    }
}

//! Property-based tests over the cryptographic substrate: algebraic
//! identities of the bignum arithmetic, signature/VRF soundness over
//! random inputs, and Merkle proof completeness.

use proptest::prelude::*;

use prb_crypto::bigint::BigUint;
use prb_crypto::group::SchnorrGroup;
use prb_crypto::merkle::MerkleTree;
use prb_crypto::schnorr::SigningKey;
use prb_crypto::sha256::sha256;
use prb_crypto::signer::{CryptoScheme, Sig};
use prb_crypto::vrf::VrfKeyPair;

fn biguint_strategy(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..=max_bytes).prop_map(|b| BigUint::from_bytes_be(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fundamental division identity: `u = q·v + r` with `r < v`.
    #[test]
    fn division_identity(u in biguint_strategy(40), v in biguint_strategy(24)) {
        prop_assume!(!v.is_zero());
        let (q, r) = u.div_rem(&v);
        prop_assert!(r < v);
        prop_assert_eq!(q.mul(&v).add(&r), u);
    }

    /// Addition/subtraction invert each other.
    #[test]
    fn add_sub_roundtrip(a in biguint_strategy(32), b in biguint_strategy(32)) {
        let sum = a.add(&b);
        prop_assert_eq!(sum.sub(&b), a.clone());
        prop_assert_eq!(sum.sub(&a), b);
    }

    /// Multiplication is commutative and distributes over addition.
    #[test]
    fn mul_laws(a in biguint_strategy(20), b in biguint_strategy(20), c in biguint_strategy(20)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    /// Shifts match multiplication/division by powers of two.
    #[test]
    fn shift_laws(a in biguint_strategy(24), bits in 0usize..100) {
        let shifted = a.shl(bits);
        prop_assert_eq!(shifted.shr(bits), a.clone());
        let pow2 = BigUint::one().shl(bits);
        prop_assert_eq!(shifted, a.mul(&pow2));
    }

    /// Byte round-trips preserve value.
    #[test]
    fn bytes_roundtrip(a in biguint_strategy(40)) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        if let Some(parsed) = BigUint::from_hex(&a.to_hex()) {
            prop_assert_eq!(parsed, a);
        } else {
            prop_assert!(false, "hex failed to parse");
        }
    }

    /// Modular exponentiation matches iterated multiplication for small
    /// exponents.
    #[test]
    fn pow_mod_matches_naive(base in biguint_strategy(8), e in 0u64..24, m in biguint_strategy(8)) {
        prop_assume!(!m.is_zero());
        let fast = base.pow_mod(&BigUint::from_u64(e), &m);
        let mut slow = BigUint::one().rem(&m);
        for _ in 0..e {
            slow = slow.mul(&base).rem(&m);
        }
        prop_assert_eq!(fast, slow);
    }

    /// Modular inverse, when it exists, really inverts.
    #[test]
    fn inv_mod_inverts(a in biguint_strategy(12), m in biguint_strategy(12)) {
        prop_assume!(!m.is_zero() && m > BigUint::one());
        if let Some(inv) = a.inv_mod(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Schnorr signatures verify on the signed message and on no other.
    #[test]
    fn schnorr_soundness(seed in any::<[u8; 8]>(), msg in proptest::collection::vec(any::<u8>(), 0..64), other in proptest::collection::vec(any::<u8>(), 0..64)) {
        let group = SchnorrGroup::test_256();
        let sk = SigningKey::from_seed(&group, &seed);
        let sig = sk.sign(&msg);
        prop_assert!(sk.verifying_key().verify(&msg, &sig));
        if msg != other {
            prop_assert!(!sk.verifying_key().verify(&other, &sig));
        }
    }

    /// VRF outputs verify and are unique per (key, message).
    #[test]
    fn vrf_soundness(seed in any::<[u8; 8]>(), msg in proptest::collection::vec(any::<u8>(), 0..32)) {
        let group = SchnorrGroup::test_256();
        let kp = VrfKeyPair::from_seed(&group, &seed);
        let (out1, proof) = kp.evaluate(&msg);
        let (out2, _) = kp.evaluate(&msg);
        prop_assert_eq!(out1, out2);
        prop_assert_eq!(proof.verify(kp.public_key(), &msg), Some(out1));
    }

    /// Forged signatures of every scheme fail verification.
    #[test]
    fn forgeries_fail(seed in any::<u64>(), msg in proptest::collection::vec(any::<u8>(), 0..32)) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for scheme in [CryptoScheme::sim(), CryptoScheme::schnorr_test_256()] {
            let kp = scheme.keypair_from_seed(b"victim");
            let forged = Sig::forged(&scheme, &mut rng);
            prop_assert!(!kp.public_key().verify(&msg, &forged));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every leaf of every tree size has a verifying proof, and proofs do
    /// not transfer between positions.
    #[test]
    fn merkle_completeness(leaves in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..16), 1..40)) {
        let tree = MerkleTree::from_leaves(&leaves);
        let root = tree.root();
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i).expect("leaf in range");
            prop_assert!(proof.verify(&root, leaf));
        }
        // A proof for position 0 never verifies a different leaf value.
        let proof0 = tree.prove(0).expect("non-empty");
        let tampered = sha256(b"not-a-leaf").to_bytes().to_vec();
        if leaves[0] != tampered {
            prop_assert!(!proof0.verify(&root, &tampered));
        }
    }

    /// Distinct leaf lists produce distinct roots (collision resistance at
    /// the structural level).
    #[test]
    fn merkle_injective_on_content(
        a in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..10),
        b in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..8), 1..10),
    ) {
        let ta = MerkleTree::from_leaves(&a);
        let tb = MerkleTree::from_leaves(&b);
        if a != b {
            prop_assert_ne!(ta.root(), tb.root());
        } else {
            prop_assert_eq!(ta.root(), tb.root());
        }
    }
}

// ---------------------------------------------------------------------------
// Hot-path exponentiation vs the reference implementation.
//
// The Montgomery windowed pow, the Straus multi-exponentiation, the
// fixed-base tables, and the Jacobi subgroup test are all pinned here to
// `pow_mod_reference` / the Euler criterion over random inputs.

use prb_crypto::bigint::{FixedBaseTable, Montgomery};

fn odd_modulus_strategy(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 1..=max_bytes).prop_map(|mut b| {
        *b.last_mut().expect("non-empty") |= 1; // force odd
        let m = BigUint::from_bytes_be(&b);
        if m == BigUint::one() {
            BigUint::from_u64(3)
        } else {
            m
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached-context exponentiation matches the reference for arbitrary
    /// bases, exponents (both window widths) and odd moduli.
    #[test]
    fn montgomery_pow_matches_reference(
        base in biguint_strategy(24),
        e in biguint_strategy(24),
        m in odd_modulus_strategy(16),
    ) {
        let ctx = Montgomery::new(&m);
        prop_assert_eq!(ctx.pow(&base, &e), base.pow_mod_reference(&e, &m));
    }

    /// Straus simultaneous exponentiation equals the sequential product of
    /// reference exponentiations.
    #[test]
    fn multi_pow_matches_sequential_reference(
        bases in proptest::collection::vec(biguint_strategy(16), 1..4),
        exps in proptest::collection::vec(biguint_strategy(16), 1..4),
        m in odd_modulus_strategy(12),
    ) {
        let ctx = Montgomery::new(&m);
        let n = bases.len().min(exps.len());
        let pairs: Vec<(&BigUint, &BigUint)> =
            bases[..n].iter().zip(&exps[..n]).collect();
        let got = ctx.multi_pow(&pairs);
        let mut want = BigUint::one().rem(&m);
        for (b, e) in &pairs {
            want = want.mul_mod(&b.pow_mod_reference(e, &m), &m);
        }
        prop_assert_eq!(got, want);
    }

    /// Fixed-base tables answer exactly like the reference for in-range
    /// exponents and decline wider ones.
    #[test]
    fn fixed_base_table_matches_reference_random(
        base in biguint_strategy(16),
        e in biguint_strategy(8),
        m in odd_modulus_strategy(12),
    ) {
        let ctx = Montgomery::new(&m);
        let table = FixedBaseTable::build(&ctx, &base, 64);
        match table.pow(&ctx, &e) {
            Some(got) => prop_assert_eq!(got, base.pow_mod_reference(&e, &m)),
            None => prop_assert!(e.bit_len() > table.max_bits()),
        }
    }

    /// The Jacobi-symbol subgroup test agrees with the Euler criterion.
    #[test]
    fn is_element_matches_euler_reference(x in biguint_strategy(33)) {
        for group in [SchnorrGroup::test_256(), SchnorrGroup::test_512()] {
            let x = x.rem(group.p());
            prop_assert_eq!(group.is_element(&x), group.is_element_reference(&x));
        }
    }
}

/// Every parameter set (the three RFC 3526 groups and both test groups):
/// generator-table `pow_g` and a per-base table must match the reference
/// at the edge exponents 0, 1 and `q − 1`, plus a mid-size scalar.
#[test]
fn fixed_base_tables_match_reference_all_groups_edge_exponents() {
    for group in [
        SchnorrGroup::test_256(),
        SchnorrGroup::test_512(),
        SchnorrGroup::rfc3526_2048(),
        SchnorrGroup::rfc3526_3072(),
        SchnorrGroup::rfc3526_4096(),
    ] {
        let q_minus_1 = group.q().sub(&BigUint::one());
        let table = FixedBaseTable::build(group.mont(), group.g(), group.q().bit_len());
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from_u64(0xdead_beef_cafe),
            q_minus_1,
        ] {
            let want = group.g().pow_mod_reference(&e, group.p());
            // Direct table lookup…
            assert_eq!(
                table.pow(group.mont(), &e),
                Some(want.clone()),
                "{} table e={}",
                group.name(),
                e.bit_len()
            );
            // …and through the group's lazy pow_g path (twice: the second
            // call crosses G_TABLE_THRESHOLD and flips to the table).
            assert_eq!(group.pow_g(&e), want, "{} pow_g", group.name());
            assert_eq!(group.pow_g(&e), want, "{} pow_g (table)", group.name());
        }
    }
}

//! The structured event model.
//!
//! Every observable occurrence in the stack — a kernel-level message
//! send, a governor screening decision, a PBFT phase transition — is an
//! [`Event`]: *who* (node + role), *when* (sim-time tick + round), and
//! *what* (an [`EventKind`] with a typed payload). Kind names are static
//! strings in a dotted namespace (`msg.sent`, `gov.screened`,
//! `pbft.prepared`, `phase.end`, …) so sinks can group and count without
//! parsing.

/// The node id recorded for driver-injected events (`from == EXTERNAL`
/// in the kernel).
pub const EXTERNAL_NODE: u64 = u64::MAX;

/// What a node is in the three-tier topology (§3.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// The simulation driver / external world.
    External,
    /// A data provider.
    Provider,
    /// A collector.
    Collector,
    /// A governor.
    Governor,
    /// A baseline consensus replica (PBFT / rotation harnesses).
    Replica,
}

impl Role {
    /// The lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::External => "external",
            Role::Provider => "provider",
            Role::Collector => "collector",
            Role::Governor => "governor",
            Role::Replica => "replica",
        }
    }
}

/// Why the kernel dropped a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Sender or receiver crashed.
    Crash,
    /// Sender and receiver are in different partition groups.
    Partition,
    /// Probabilistic link loss.
    Loss,
}

impl DropReason {
    /// The lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::Crash => "crash",
            DropReason::Partition => "partition",
            DropReason::Loss => "loss",
        }
    }
}

/// One typed payload field, as handed to sinks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A float (finite in practice; serialized as `null` otherwise).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A static string.
    Str(&'static str),
}

/// The event taxonomy with typed payloads.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Kernel: a message entered the network (`msg.sent`).
    MsgSent {
        /// Wire kind of the message.
        msg: &'static str,
        /// Receiver node index.
        to: u64,
        /// Declared payload size.
        bytes: u64,
    },
    /// Kernel: a message reached its receiver's handler (`msg.delivered`).
    MsgDelivered {
        /// Wire kind of the message.
        msg: &'static str,
        /// Sender node index ([`EXTERNAL_NODE`] for driver commands).
        from: u64,
        /// Declared payload size.
        bytes: u64,
        /// Delivery latency in sim ticks.
        latency: u64,
    },
    /// Kernel: a message was lost to a fault (`msg.dropped`).
    MsgDropped {
        /// Wire kind of the message.
        msg: &'static str,
        /// Sender node index.
        from: u64,
        /// Declared payload size.
        bytes: u64,
        /// Which fault consumed it.
        reason: DropReason,
    },
    /// Kernel: a timer fired (`timer.fired`).
    TimerFired {
        /// The timer's id.
        timer: u64,
    },
    /// Governor: the round's PoS-VRF election settled (`gov.election`).
    ElectionDecided {
        /// Winning governor (node index).
        leader: u64,
        /// Number of claims considered.
        claims: u64,
    },
    /// Provider: a signed transaction entered the system (`tx.submitted`).
    /// `trace` is the causal trace id (first 8 bytes of the tx digest)
    /// every later lifecycle event carries.
    TxSubmitted {
        /// Causal trace id.
        trace: u64,
        /// The submitting provider's index.
        provider: u64,
    },
    /// Governor: first labeled copy arrived, the Δ aggregation window
    /// opened and the tx entered the mempool (`tx.admitted`).
    TxAdmitted {
        /// Causal trace id.
        trace: u64,
    },
    /// Governor: Algorithm 2 screened a transaction (`gov.screened`).
    TxScreened {
        /// Causal trace id.
        trace: u64,
        /// The drawn reporter's collector id.
        drawn: u64,
        /// Whether the drawn report was checked (vs. trusted).
        checked: bool,
        /// The label the drawn reporter gave.
        label_valid: bool,
    },
    /// Governor: a checked transaction went through full validation
    /// (`tx.validated`).
    TxValidated {
        /// Causal trace id.
        trace: u64,
        /// Ground-truth validity the oracle returned.
        valid: bool,
    },
    /// Governor: the leader included the transaction in a proposed block
    /// (`tx.proposed`).
    TxProposed {
        /// Causal trace id.
        trace: u64,
        /// Serial of the proposed block.
        serial: u64,
    },
    /// Governor: the transaction's block was appended to the local chain
    /// (`tx.committed`).
    TxCommitted {
        /// Causal trace id.
        trace: u64,
        /// Serial of the committed block.
        serial: u64,
    },
    /// A transaction left the pipeline without committing (`tx.dropped`).
    /// Reasons: `concealed` (collector suppressed it), `forged` (every
    /// copy's signature failed), `invalid` (checked and rejected),
    /// `censored` (a byzantine leader filtered it). A drop is terminal
    /// only if no other replica commits the tx later.
    TxDropped {
        /// Causal trace id.
        trace: u64,
        /// Why it was dropped.
        reason: &'static str,
    },
    /// Governor: an upload's signature did not verify (`gov.forgery`).
    ForgeryDetected {
        /// The offending collector id.
        collector: u64,
    },
    /// Governor: the leader assembled and broadcast a block (`gov.proposed`).
    BlockProposed {
        /// Block serial.
        serial: u64,
        /// Number of entries.
        entries: u64,
    },
    /// Governor: a block was appended to the local chain (`gov.committed`).
    BlockCommitted {
        /// Block serial.
        serial: u64,
        /// Number of entries.
        entries: u64,
    },
    /// Governor: an argue was accepted — unchecked-invalid overturned
    /// (`gov.argue_accepted`).
    ArgueAccepted {
        /// The arguing provider id.
        provider: u64,
    },
    /// Governor: an argue was rejected (`gov.argue_rejected`).
    ArgueRejected {
        /// The arguing provider id.
        provider: u64,
        /// Why (`bound`, `unknown-tx`, `not-unchecked`, `duplicate`).
        reason: &'static str,
    },
    /// Governor: external evidence revealed an unchecked verdict
    /// (`gov.revealed`).
    Revealed {
        /// The ground-truth validity.
        valid: bool,
        /// Whether the recorded verdict matched it.
        verdict_correct: bool,
    },
    /// Collector: an adversarial action on a transaction (`col.adversary`).
    CollectorAction {
        /// `flip`, `drop`, or `forge`.
        action: &'static str,
    },
    /// Governor: verified equivocation evidence against a governor
    /// (`byzantine.equivocation`).
    EquivocationDetected {
        /// The double-signing governor.
        culprit: u64,
        /// The block serial both conflicting headers claim.
        serial: u64,
    },
    /// Governor: a governor was expelled from the committee
    /// (`byzantine.expelled`).
    GovernorExpelled {
        /// The expelled governor.
        culprit: u64,
        /// The round the expulsion took effect locally.
        round: u64,
    },
    /// PBFT: a replica accepted a pre-prepare (`pbft.preprepare`).
    PbftPrePrepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
    },
    /// PBFT: a replica reached the prepared predicate (`pbft.prepared`).
    PbftPrepared {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
    },
    /// PBFT: a replica committed (`pbft.committed`).
    PbftCommitted {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
    },
    /// PBFT: a replica moved to a new view (`pbft.viewchange`).
    PbftViewChange {
        /// The view being entered.
        view: u64,
    },
    /// Rotation baseline: a height decided, or skipped on leader timeout
    /// (`rot.decided`).
    RotationDecided {
        /// The height.
        height: u64,
        /// `true` when the leader timed out and the height was skipped.
        skipped: bool,
    },
    /// A protocol phase completed; `ticks` is its sim-time duration
    /// (`phase.end`). Also feeds the `phase.<name>` histograms.
    PhaseEnd {
        /// Phase name (`election`, `proposal`, `screening`, `vote`,
        /// `commit`, `reveal`, `argue`).
        phase: &'static str,
        /// Duration in sim ticks.
        ticks: u64,
    },
}

impl EventKind {
    /// The static, dotted kind name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MsgSent { .. } => "msg.sent",
            EventKind::MsgDelivered { .. } => "msg.delivered",
            EventKind::MsgDropped { .. } => "msg.dropped",
            EventKind::TimerFired { .. } => "timer.fired",
            EventKind::ElectionDecided { .. } => "gov.election",
            EventKind::TxSubmitted { .. } => "tx.submitted",
            EventKind::TxAdmitted { .. } => "tx.admitted",
            EventKind::TxScreened { .. } => "gov.screened",
            EventKind::TxValidated { .. } => "tx.validated",
            EventKind::TxProposed { .. } => "tx.proposed",
            EventKind::TxCommitted { .. } => "tx.committed",
            EventKind::TxDropped { .. } => "tx.dropped",
            EventKind::ForgeryDetected { .. } => "gov.forgery",
            EventKind::BlockProposed { .. } => "gov.proposed",
            EventKind::BlockCommitted { .. } => "gov.committed",
            EventKind::ArgueAccepted { .. } => "gov.argue_accepted",
            EventKind::ArgueRejected { .. } => "gov.argue_rejected",
            EventKind::Revealed { .. } => "gov.revealed",
            EventKind::CollectorAction { .. } => "col.adversary",
            EventKind::EquivocationDetected { .. } => "byzantine.equivocation",
            EventKind::GovernorExpelled { .. } => "byzantine.expelled",
            EventKind::PbftPrePrepare { .. } => "pbft.preprepare",
            EventKind::PbftPrepared { .. } => "pbft.prepared",
            EventKind::PbftCommitted { .. } => "pbft.committed",
            EventKind::PbftViewChange { .. } => "pbft.viewchange",
            EventKind::RotationDecided { .. } => "rot.decided",
            EventKind::PhaseEnd { .. } => "phase.end",
        }
    }

    /// For kernel message events, the wire kind of the message; the key
    /// used when reconciling against `MessageStats`.
    pub fn msg_kind(&self) -> Option<&'static str> {
        match self {
            EventKind::MsgSent { msg, .. }
            | EventKind::MsgDelivered { msg, .. }
            | EventKind::MsgDropped { msg, .. } => Some(msg),
            _ => None,
        }
    }

    /// For transaction-lifecycle events, the causal trace id.
    pub fn trace_id(&self) -> Option<u64> {
        match *self {
            EventKind::TxSubmitted { trace, .. }
            | EventKind::TxAdmitted { trace }
            | EventKind::TxScreened { trace, .. }
            | EventKind::TxValidated { trace, .. }
            | EventKind::TxProposed { trace, .. }
            | EventKind::TxCommitted { trace, .. }
            | EventKind::TxDropped { trace, .. } => Some(trace),
            _ => None,
        }
    }

    /// Visits the payload fields in declaration order.
    pub fn visit_fields(&self, mut f: impl FnMut(&'static str, FieldValue)) {
        use FieldValue::{Bool, Str, U64};
        match *self {
            EventKind::MsgSent { msg, to, bytes } => {
                f("msg", Str(msg));
                f("to", U64(to));
                f("bytes", U64(bytes));
            }
            EventKind::MsgDelivered {
                msg,
                from,
                bytes,
                latency,
            } => {
                f("msg", Str(msg));
                f("from", U64(from));
                f("bytes", U64(bytes));
                f("latency", U64(latency));
            }
            EventKind::MsgDropped {
                msg,
                from,
                bytes,
                reason,
            } => {
                f("msg", Str(msg));
                f("from", U64(from));
                f("bytes", U64(bytes));
                f("reason", Str(reason.as_str()));
            }
            EventKind::TimerFired { timer } => f("timer", U64(timer)),
            EventKind::ElectionDecided { leader, claims } => {
                f("leader", U64(leader));
                f("claims", U64(claims));
            }
            EventKind::TxSubmitted { trace, provider } => {
                f("trace", U64(trace));
                f("provider", U64(provider));
            }
            EventKind::TxAdmitted { trace } => f("trace", U64(trace)),
            EventKind::TxScreened {
                trace,
                drawn,
                checked,
                label_valid,
            } => {
                f("trace", U64(trace));
                f("drawn", U64(drawn));
                f("checked", Bool(checked));
                f("label_valid", Bool(label_valid));
            }
            EventKind::TxValidated { trace, valid } => {
                f("trace", U64(trace));
                f("valid", Bool(valid));
            }
            EventKind::TxProposed { trace, serial } | EventKind::TxCommitted { trace, serial } => {
                f("trace", U64(trace));
                f("serial", U64(serial));
            }
            EventKind::TxDropped { trace, reason } => {
                f("trace", U64(trace));
                f("reason", Str(reason));
            }
            EventKind::ForgeryDetected { collector } => f("collector", U64(collector)),
            EventKind::BlockProposed { serial, entries }
            | EventKind::BlockCommitted { serial, entries } => {
                f("serial", U64(serial));
                f("entries", U64(entries));
            }
            EventKind::ArgueAccepted { provider } => f("provider", U64(provider)),
            EventKind::ArgueRejected { provider, reason } => {
                f("provider", U64(provider));
                f("reason", Str(reason));
            }
            EventKind::Revealed {
                valid,
                verdict_correct,
            } => {
                f("valid", Bool(valid));
                f("verdict_correct", Bool(verdict_correct));
            }
            EventKind::CollectorAction { action } => f("action", Str(action)),
            EventKind::EquivocationDetected { culprit, serial } => {
                f("culprit", U64(culprit));
                f("serial", U64(serial));
            }
            EventKind::GovernorExpelled { culprit, round } => {
                f("culprit", U64(culprit));
                f("round", U64(round));
            }
            EventKind::PbftPrePrepare { view, seq }
            | EventKind::PbftPrepared { view, seq }
            | EventKind::PbftCommitted { view, seq } => {
                f("view", U64(view));
                f("seq", U64(seq));
            }
            EventKind::PbftViewChange { view } => f("view", U64(view)),
            EventKind::RotationDecided { height, skipped } => {
                f("height", U64(height));
                f("skipped", Bool(skipped));
            }
            EventKind::PhaseEnd { phase, ticks } => {
                f("phase", Str(phase));
                f("ticks", U64(ticks));
            }
        }
    }
}

/// One fully-resolved trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Sim-time tick at which it happened.
    pub time: u64,
    /// The acting node's kernel index ([`EXTERNAL_NODE`] for the driver).
    pub node: u64,
    /// The acting node's role.
    pub role: Role,
    /// Protocol round in progress.
    pub round: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Serializes as one JSON object (no trailing newline) onto `out`.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"t\":");
        crate::json::write_u64(out, self.time);
        out.push_str(",\"node\":");
        if self.node == EXTERNAL_NODE {
            out.push_str("null");
        } else {
            crate::json::write_u64(out, self.node);
        }
        out.push_str(",\"role\":");
        crate::json::write_str(out, self.role.as_str());
        out.push_str(",\"round\":");
        crate::json::write_u64(out, self.round);
        out.push_str(",\"kind\":");
        crate::json::write_str(out, self.kind.name());
        self.kind.visit_fields(|name, value| {
            out.push(',');
            crate::json::write_str(out, name);
            out.push(':');
            crate::json::write_value(out, value);
        });
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let event = Event {
            time: 42,
            node: 3,
            role: Role::Governor,
            round: 7,
            kind: EventKind::MsgSent {
                msg: "tx-broadcast",
                to: 9,
                bytes: 128,
            },
        };
        let mut out = String::new();
        event.write_json(&mut out);
        assert_eq!(
            out,
            "{\"t\":42,\"node\":3,\"role\":\"governor\",\"round\":7,\
             \"kind\":\"msg.sent\",\"msg\":\"tx-broadcast\",\"to\":9,\"bytes\":128}"
        );
    }

    #[test]
    fn external_node_serializes_as_null() {
        let event = Event {
            time: 0,
            node: EXTERNAL_NODE,
            role: Role::External,
            round: 0,
            kind: EventKind::TimerFired { timer: 1 },
        };
        let mut out = String::new();
        event.write_json(&mut out);
        assert!(out.contains("\"node\":null"), "{out}");
    }

    #[test]
    fn lifecycle_events_carry_the_trace_id() {
        let kinds = [
            EventKind::TxSubmitted {
                trace: 7,
                provider: 2,
            },
            EventKind::TxAdmitted { trace: 7 },
            EventKind::TxScreened {
                trace: 7,
                drawn: 1,
                checked: true,
                label_valid: true,
            },
            EventKind::TxValidated {
                trace: 7,
                valid: true,
            },
            EventKind::TxProposed {
                trace: 7,
                serial: 3,
            },
            EventKind::TxCommitted {
                trace: 7,
                serial: 3,
            },
            EventKind::TxDropped {
                trace: 7,
                reason: "invalid",
            },
        ];
        for k in kinds {
            assert_eq!(k.trace_id(), Some(7), "{}", k.name());
            let mut first = None;
            k.visit_fields(|name, value| {
                if first.is_none() {
                    first = Some((name, value));
                }
            });
            assert_eq!(first, Some(("trace", FieldValue::U64(7))), "{}", k.name());
        }
        assert_eq!(EventKind::TimerFired { timer: 0 }.trace_id(), None);
    }

    #[test]
    fn lifecycle_json_shape_is_stable() {
        let event = Event {
            time: 9,
            node: 20,
            role: Role::Governor,
            round: 2,
            kind: EventKind::TxCommitted {
                trace: 12345,
                serial: 4,
            },
        };
        let mut out = String::new();
        event.write_json(&mut out);
        assert_eq!(
            out,
            "{\"t\":9,\"node\":20,\"role\":\"governor\",\"round\":2,\
             \"kind\":\"tx.committed\",\"trace\":12345,\"serial\":4}"
        );
    }

    #[test]
    fn every_kind_has_a_dotted_name() {
        let kinds = [
            EventKind::MsgSent {
                msg: "x",
                to: 0,
                bytes: 0,
            },
            EventKind::TimerFired { timer: 0 },
            EventKind::ElectionDecided {
                leader: 0,
                claims: 0,
            },
            EventKind::PhaseEnd {
                phase: "vote",
                ticks: 1,
            },
        ];
        for k in kinds {
            assert!(k.name().contains('.'), "{}", k.name());
        }
    }
}

//! Pluggable event sinks.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

use crate::event::Event;

/// An event sink. Methods take `&self` (sinks use interior mutability)
/// so one recorder can be shared by every layer of the stack through a
/// single cheaply-cloned handle.
pub trait Recorder {
    /// Accepts one event.
    fn record(&self, event: &Event);

    /// Flushes any buffered output.
    fn flush(&self) {}
}

/// Discards everything. The default sink; its `record` is never reached
/// when observability is off, so it costs a single branch.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory.
#[derive(Debug)]
pub struct RingRecorder {
    capacity: usize,
    buf: RefCell<VecDeque<Event>>,
    seen: RefCell<u64>,
}

impl RingRecorder {
    /// An empty ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingRecorder {
            capacity,
            buf: RefCell::new(VecDeque::with_capacity(capacity.min(1024))),
            seen: RefCell::new(0),
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.buf.borrow().iter().cloned().collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.borrow().len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.borrow().is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        *self.seen.borrow()
    }

    /// Writes the retained tail as JSONL (oldest first) — the
    /// flight-recorder dump used for post-mortem debugging when an
    /// experiment's hard assert fails.
    pub fn dump_jsonl(&self, out: &mut dyn Write) -> std::io::Result<()> {
        let mut line = String::with_capacity(256);
        for event in self.buf.borrow().iter() {
            line.clear();
            event.write_json(&mut line);
            line.push('\n');
            out.write_all(line.as_bytes())?;
        }
        out.flush()
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: &Event) {
        let mut buf = self.buf.borrow_mut();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
        *self.seen.borrow_mut() += 1;
    }
}

/// Fans every event out to two sinks — typically a [`JsonlRecorder`]
/// for the full trace plus a [`RingRecorder`] kept as a flight recorder
/// for post-mortem dumps.
pub struct TeeRecorder {
    a: Rc<dyn Recorder>,
    b: Rc<dyn Recorder>,
}

impl std::fmt::Debug for TeeRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TeeRecorder").finish_non_exhaustive()
    }
}

impl TeeRecorder {
    /// A sink forwarding every event to both `a` and `b`.
    pub fn new(a: Rc<dyn Recorder>, b: Rc<dyn Recorder>) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, event: &Event) {
        self.a.record(event);
        self.b.record(event);
    }

    fn flush(&self) {
        self.a.flush();
        self.b.flush();
    }
}

/// Serializes each event as one JSON line.
///
/// The writer is kept in an `Option` purely so [`into_inner`]
/// (`JsonlRecorder::into_inner`) can move it out past the flush-on-drop
/// guard; it is `Some` for the recorder's whole working life.
pub struct JsonlRecorder<W: Write> {
    out: RefCell<Option<W>>,
    line: RefCell<String>,
}

impl JsonlRecorder<BufWriter<File>> {
    /// Creates (truncating) `path` and writes events to it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlRecorder<W> {
    /// Writes events to an arbitrary sink.
    pub fn new(out: W) -> Self {
        JsonlRecorder {
            out: RefCell::new(Some(out)),
            line: RefCell::new(String::with_capacity(256)),
        }
    }

    /// Consumes the recorder, flushing and returning the inner writer.
    pub fn into_inner(self) -> W {
        let mut out = self.out.borrow_mut().take().expect("writer present");
        let _ = out.flush();
        out
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&self, event: &Event) {
        let mut line = self.line.borrow_mut();
        line.clear();
        event.write_json(&mut line);
        line.push('\n');
        // Trace output is best-effort; a full disk should not take the
        // simulation down with it.
        if let Some(out) = self.out.borrow_mut().as_mut() {
            let _ = out.write_all(line.as_bytes());
        }
    }

    fn flush(&self) {
        if let Some(out) = self.out.borrow_mut().as_mut() {
            let _ = out.flush();
        }
    }
}

impl<W: Write> Drop for JsonlRecorder<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.borrow_mut().as_mut() {
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, Role};

    fn event(time: u64) -> Event {
        Event {
            time,
            node: 1,
            role: Role::Collector,
            round: 0,
            kind: EventKind::TimerFired { timer: time },
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingRecorder::new(3);
        for t in 0..5 {
            ring.record(&event(t));
        }
        let times: Vec<u64> = ring.events().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
    }

    #[test]
    fn tee_feeds_both_sinks_and_ring_dumps_jsonl() {
        let ring = Rc::new(RingRecorder::new(2));
        let jsonl = Rc::new(JsonlRecorder::new(Vec::new()));
        let tee = TeeRecorder::new(ring.clone(), jsonl.clone());
        for t in 0..3 {
            tee.record(&event(t));
        }
        tee.flush();
        assert_eq!(ring.len(), 2, "ring keeps the tail");
        assert_eq!(ring.total_recorded(), 3);
        let mut dump = Vec::new();
        ring.dump_jsonl(&mut dump).unwrap();
        let text = String::from_utf8(dump).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(
            text.starts_with("{\"t\":1,"),
            "oldest retained first: {text}"
        );
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let rec = JsonlRecorder::new(Vec::new());
        rec.record(&event(1));
        rec.record(&event(2));
        let bytes = rec.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"kind\":\"timer.fired\""), "{line}");
        }
    }
}

//! Sim-time spans for protocol phases.

/// Canonical phase names, in protocol order. Using these constants keeps
/// the `phase.<name>` histogram keys and the `phase.end` events aligned
/// across crates.
pub mod phases {
    /// PoS-VRF leader election (§3.4.1).
    pub const ELECTION: &str = "election";
    /// Leader assembling + broadcasting the block.
    pub const PROPOSAL: &str = "proposal";
    /// Algorithm 2 screening, from first upload to decision.
    pub const SCREENING: &str = "screening";
    /// Voting (PBFT prepare round in the baseline).
    pub const VOTE: &str = "vote";
    /// Commit: proposal broadcast to local chain append.
    pub const COMMIT: &str = "commit";
    /// Reveal lag: block commit to external reveal.
    pub const REVEAL: &str = "reveal";
    /// Argue: block commit to argue resolution.
    pub const ARGUE: &str = "argue";
    /// Crash recovery: chain gap detected to caught up with a peer.
    pub const RECOVERY: &str = "recovery";
    /// Accountability: first conflicting header seen to culprit expelled.
    pub const DETECTION: &str = "detection";
}

/// An open interval of sim time attributed to a named phase.
///
/// A span is deliberately inert — just a name and a start tick. Closing
/// it through [`Obs::end_span`](crate::Obs::end_span) records the
/// duration into the `phase.<name>` histogram and emits a `phase.end`
/// event, so dropping an unfinished span (e.g. a round cut short by a
/// crash) simply records nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use = "a span only produces data when closed via Obs::end_span"]
pub struct Span {
    phase: &'static str,
    start: u64,
}

impl Span {
    /// Opens a span for `phase` at tick `start`.
    pub fn begin(phase: &'static str, start: u64) -> Self {
        Span { phase, start }
    }

    /// The phase name.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// The opening tick.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Duration up to `now` (0 if time ran backwards across a reset).
    pub fn elapsed(&self, now: u64) -> u64 {
        now.saturating_sub(self.start)
    }
}

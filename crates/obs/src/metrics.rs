//! The metrics registry: counters, gauges, and log₂-bucketed histograms
//! keyed by static names.
//!
//! All methods take `&self` (interior mutability) so the registry can sit
//! behind the same shared handle as the event sink.

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Number of histogram buckets: one per power of two of the `u64` range,
/// plus a dedicated zero bucket.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `0` holds zeros; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i)`. Quantiles are answered with the *upper bound* of the
/// containing bucket, so they are exact to within a factor of two — ample
/// for latency distributions spanning orders of magnitude.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q` in `[0, 1]`, as the upper bound of the bucket
    /// containing the `⌈q·n⌉`-th sample (clamped to the observed max).
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket `i > 0` spans `[2^(i-1), 2^i)`, so its inclusive
                // upper bound is `2^i - 1` — except the top bucket, whose
                // range is capped by the u64 domain itself. The old
                // `(1 << (i-1)) * 2 - 1` form saturated one short of
                // `u64::MAX` for bucket 64.
                let upper = if i == 0 {
                    0
                } else if i >= 64 {
                    u64::MAX
                } else {
                    (1u64 << i) - 1
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bound approximation).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (upper-bound approximation).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (upper-bound approximation).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile (upper-bound approximation).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

/// The registry. Names are static strings in a dotted namespace
/// (`phase.election`, `net.delivery_latency`, …).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: RefCell<BTreeMap<&'static str, u64>>,
    gauges: RefCell<BTreeMap<&'static str, f64>>,
    histograms: RefCell<BTreeMap<&'static str, Histogram>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1 to counter `name`.
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `n` to counter `name`.
    pub fn add(&self, name: &'static str, n: u64) {
        *self.counters.borrow_mut().entry(name).or_insert(0) += n;
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.borrow().get(name).copied().unwrap_or(0)
    }

    /// Sets gauge `name`.
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        self.gauges.borrow_mut().insert(name, value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.borrow().get(name).copied()
    }

    /// Records `value` into histogram `name`.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.histograms
            .borrow_mut()
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// A snapshot of histogram `name`, if it has samples.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.histograms.borrow().get(name).cloned()
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .borrow()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> Vec<(&'static str, f64)> {
        self.gauges.borrow().iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> Vec<(&'static str, Histogram)> {
        self.histograms
            .borrow()
            .iter()
            .map(|(&k, v)| (k, v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.inc("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        m.set_gauge("g", 1.5);
        m.set_gauge("g", 2.5);
        assert_eq!(m.gauge("g"), Some(2.5));
        assert_eq!(m.gauge("missing"), None);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1010);
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // Upper-bound semantics: within 2x above the true quantile.
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "p50={p50}");
        let p99 = h.p99();
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::default();
        h.observe(5);
        assert_eq!(h.p50(), 5);
        assert_eq!(h.p99(), 5);
    }

    #[test]
    fn empty_histogram_every_quantile_is_zero() {
        let h = Histogram::default();
        for q in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.p999(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_bucket_quantiles_collapse_to_the_samples() {
        // All samples land in bucket 10 ([512, 1024)); every quantile must
        // answer within the observed range, not the bucket's bound.
        let mut h = Histogram::default();
        for v in [600, 700, 800] {
            h.observe(v);
        }
        for q in [0.01, 0.5, 0.999] {
            let ans = h.quantile(q);
            assert!((600..=800).contains(&ans), "q={q} ans={ans}");
        }
        assert_eq!(h.p999(), 800);
    }

    #[test]
    fn saturating_max_bucket_reports_u64_max() {
        // Values ≥ 2^63 land in bucket 64, whose upper bound is the u64
        // domain ceiling — the old `(1 << 63) * 2 - 1` arithmetic
        // saturated to `u64::MAX - 1` and broke the `≤ max` invariant.
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p999(), u64::MAX);
        h.observe(1u64 << 63);
        assert_eq!(h.quantile(0.01), u64::MAX, "bucket bound, capped at max");
    }

    #[test]
    fn p999_orders_after_p99() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.observe(v);
        }
        assert!(h.p99() <= h.p999());
        assert!(h.p999() <= h.max().next_power_of_two().max(h.max()));
        let p999 = h.p999();
        assert!((9990..=10_000).contains(&p999), "p999={p999}");
    }
}

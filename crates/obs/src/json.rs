//! A small hand-written JSON writer — just enough for JSONL event lines.
//!
//! The crate is std-only by design (the build environment has no registry
//! access), so rather than pulling in serde this module emits the narrow
//! JSON subset events need: u64/f64 numbers, booleans, and escaped
//! strings.

use crate::event::FieldValue;

/// Appends `v` in decimal.
pub fn write_u64(out: &mut String, v: u64) {
    use std::fmt::Write;
    let _ = write!(out, "{v}");
}

/// Appends `v` as a JSON number, or `null` if it is not finite (JSON has
/// no NaN/Infinity).
pub fn write_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `s` as a quoted, escaped JSON string.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends one typed field value.
pub fn write_value(out: &mut String, value: FieldValue) {
    match value {
        FieldValue::U64(v) => write_u64(out, v),
        FieldValue::F64(v) => write_f64(out, v),
        FieldValue::Bool(b) => out.push_str(if b { "true" } else { "false" }),
        FieldValue::Str(s) => write_str(out, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 2.5);
        assert_eq!(out, "2.5");
    }
}

//! The legal transaction-lifecycle state machine.
//!
//! A transaction's trace — `tx.submitted` → `tx.admitted` →
//! `gov.screened` (+ `tx.validated` when checked) → `tx.proposed` →
//! `tx.committed`, or `tx.dropped` with a reason — must obey a small
//! set of causal rules no matter which faults the run injected. This
//! module is the single source of truth for those rules, shared by the
//! property tests in `prb-core` and the `prb-trace` analyzer.
//!
//! Rules checked by [`validate`]:
//!
//! 1. **Uniqueness** — at most one `tx.submitted` per trace id (each
//!    signed tx enters the system exactly once).
//! 2. **Foundedness** — every lifecycle event belongs to a trace with a
//!    `tx.submitted` at an earlier-or-equal tick. Exception: a trace
//!    dropped with reason `forged` is a collector *fabrication* — it
//!    never had a provider submission, by construction — so its
//!    governor-side events (admitted, screened, dropped) are exempt.
//! 3. **Monotonicity** — per trace, event times never decrease in
//!    stream order.
//! 4. **Per-replica order** — on one node, `gov.screened` requires an
//!    earlier `tx.admitted`, and `tx.validated` an earlier-or-equal
//!    `gov.screened` (screening and validation share a tick).
//! 5. **Commit causality** (optional, [`Checks::strict_propose`]) — a
//!    committed trace has a `tx.proposed` at an earlier-or-equal tick.
//!    Disabled for byzantine runs: an equivocating leader's twin block
//!    commits entries whose proposal event names the other twin.
//!
//! A drop is deliberately *not* terminal per replica: a censored or
//! collector-dropped tx can still be proposed by an honest leader and
//! commit later; the analyzer resolves terminal state as "committed
//! wins over dropped".

use crate::event::{Event, EventKind};

/// One step of the lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Provider signed and broadcast the tx (`tx.submitted`).
    Submitted,
    /// A governor opened the Δ aggregation window (`tx.admitted`).
    Admitted,
    /// Algorithm 2 screened it (`gov.screened`).
    Screened,
    /// Checked path: full validation ran (`tx.validated`).
    Validated,
    /// The leader included it in a block (`tx.proposed`).
    Proposed,
    /// A replica appended its block (`tx.committed`).
    Committed,
    /// It left the pipeline without committing (`tx.dropped`).
    Dropped,
}

impl Stage {
    /// The stage a lifecycle event advances, if any.
    pub fn of(kind: &EventKind) -> Option<Stage> {
        Self::from_kind_name(kind.name())
    }

    /// Maps a dotted kind name (as found in a JSONL trace) to its stage.
    pub fn from_kind_name(name: &str) -> Option<Stage> {
        match name {
            "tx.submitted" => Some(Stage::Submitted),
            "tx.admitted" => Some(Stage::Admitted),
            "gov.screened" => Some(Stage::Screened),
            "tx.validated" => Some(Stage::Validated),
            "tx.proposed" => Some(Stage::Proposed),
            "tx.committed" => Some(Stage::Committed),
            "tx.dropped" => Some(Stage::Dropped),
            _ => None,
        }
    }

    /// The lower-case report name.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Submitted => "submitted",
            Stage::Admitted => "admitted",
            Stage::Screened => "screened",
            Stage::Validated => "validated",
            Stage::Proposed => "proposed",
            Stage::Committed => "committed",
            Stage::Dropped => "dropped",
        }
    }
}

/// Which optional rules [`validate`] enforces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checks {
    /// Rule 5: every commit is preceded by a proposal. Turn off for
    /// byzantine (equivocation) runs.
    pub strict_propose: bool,
}

impl Default for Checks {
    fn default() -> Self {
        Checks {
            strict_propose: true,
        }
    }
}

#[derive(Debug, Default)]
struct TraceState {
    submitted_at: Option<u64>,
    proposed_at: Option<u64>,
    committed_at: Option<u64>,
    last_time: u64,
    /// (node, stage=Admitted/Screened) pairs seen, for rule 4.
    admitted_nodes: Vec<u64>,
    screened_nodes: Vec<u64>,
}

/// Validates a complete event stream (in emission order) against the
/// lifecycle rules above. Returns every violation found, as
/// human-readable strings; an empty `Ok(())` means the stream is legal.
///
/// # Errors
///
/// Returns the list of violations when any rule is broken.
pub fn validate(events: &[Event], checks: Checks) -> Result<(), Vec<String>> {
    use std::collections::{BTreeMap, BTreeSet};
    // Pre-pass for rule 2's exemption: traces dropped as `forged` are
    // collector fabrications and legitimately have no submission.
    let forged: BTreeSet<u64> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::TxDropped {
                trace,
                reason: "forged",
            } => Some(trace),
            _ => None,
        })
        .collect();
    let mut traces: BTreeMap<u64, TraceState> = BTreeMap::new();
    let mut violations = Vec::new();
    for e in events {
        let Some(stage) = Stage::of(&e.kind) else {
            continue;
        };
        let trace = e.kind.trace_id().expect("lifecycle events carry a trace");
        let st = traces.entry(trace).or_default();
        // Rule 3: per-trace monotone sim time in stream order.
        if e.time < st.last_time {
            violations.push(format!(
                "trace {trace}: {} at t={} after an event at t={}",
                stage.as_str(),
                e.time,
                st.last_time
            ));
        }
        st.last_time = st.last_time.max(e.time);
        match stage {
            Stage::Submitted => {
                // Rule 1: unique submission.
                if st.submitted_at.is_some() {
                    violations.push(format!("trace {trace}: submitted twice"));
                }
                st.submitted_at.get_or_insert(e.time);
            }
            Stage::Admitted => st.admitted_nodes.push(e.node),
            Stage::Screened => {
                // Rule 4: the same replica admitted it first.
                if !st.admitted_nodes.contains(&e.node) {
                    violations.push(format!(
                        "trace {trace}: node {} screened without admitting",
                        e.node
                    ));
                }
                st.screened_nodes.push(e.node);
            }
            Stage::Validated => {
                if !st.screened_nodes.contains(&e.node) {
                    violations.push(format!(
                        "trace {trace}: node {} validated without screening",
                        e.node
                    ));
                }
            }
            Stage::Proposed => {
                st.proposed_at.get_or_insert(e.time);
            }
            Stage::Committed => {
                if checks.strict_propose && st.proposed_at.is_none() {
                    violations.push(format!("trace {trace}: committed without a proposal"));
                }
                st.committed_at.get_or_insert(e.time);
            }
            Stage::Dropped => {}
        }
        // Rule 2: everything is founded on a submission (modulo the
        // forged-fabrication exemption).
        if stage != Stage::Submitted && st.submitted_at.is_none() && !forged.contains(&trace) {
            violations.push(format!(
                "trace {trace}: {} before any submission",
                stage.as_str()
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Role;

    fn ev(time: u64, node: u64, kind: EventKind) -> Event {
        Event {
            time,
            node,
            role: Role::Governor,
            round: 0,
            kind,
        }
    }

    fn legal_stream() -> Vec<Event> {
        vec![
            ev(
                1,
                0,
                EventKind::TxSubmitted {
                    trace: 1,
                    provider: 0,
                },
            ),
            ev(5, 9, EventKind::TxAdmitted { trace: 1 }),
            ev(
                8,
                9,
                EventKind::TxScreened {
                    trace: 1,
                    drawn: 0,
                    checked: true,
                    label_valid: true,
                },
            ),
            ev(
                8,
                9,
                EventKind::TxValidated {
                    trace: 1,
                    valid: true,
                },
            ),
            ev(
                12,
                9,
                EventKind::TxProposed {
                    trace: 1,
                    serial: 1,
                },
            ),
            ev(
                12,
                9,
                EventKind::TxCommitted {
                    trace: 1,
                    serial: 1,
                },
            ),
            ev(
                20,
                10,
                EventKind::TxCommitted {
                    trace: 1,
                    serial: 1,
                },
            ),
        ]
    }

    #[test]
    fn legal_stream_validates() {
        assert_eq!(validate(&legal_stream(), Checks::default()), Ok(()));
    }

    #[test]
    fn double_submission_is_caught() {
        let mut s = legal_stream();
        s.push(ev(
            30,
            0,
            EventKind::TxSubmitted {
                trace: 1,
                provider: 0,
            },
        ));
        let errs = validate(&s, Checks::default()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("submitted twice")),
            "{errs:?}"
        );
    }

    #[test]
    fn screening_without_admission_is_caught() {
        let s = vec![
            ev(
                1,
                0,
                EventKind::TxSubmitted {
                    trace: 2,
                    provider: 0,
                },
            ),
            ev(
                5,
                9,
                EventKind::TxScreened {
                    trace: 2,
                    drawn: 0,
                    checked: false,
                    label_valid: true,
                },
            ),
        ];
        let errs = validate(&s, Checks::default()).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.contains("screened without admitting")),
            "{errs:?}"
        );
    }

    #[test]
    fn time_regression_is_caught() {
        let mut s = legal_stream();
        s.push(ev(
            3,
            11,
            EventKind::TxCommitted {
                trace: 1,
                serial: 1,
            },
        ));
        let errs = validate(&s, Checks::default()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("after an event at")),
            "{errs:?}"
        );
    }

    #[test]
    fn unfounded_lifecycle_event_is_caught() {
        let s = vec![ev(5, 9, EventKind::TxAdmitted { trace: 3 })];
        let errs = validate(&s, Checks::default()).unwrap_err();
        assert!(
            errs.iter().any(|e| e.contains("before any submission")),
            "{errs:?}"
        );
    }

    #[test]
    fn forged_fabrications_are_exempt_from_foundedness() {
        // A collector fabrication is admitted and dropped without ever
        // being submitted — legal, because the drop reason says forged.
        let s = vec![
            ev(5, 9, EventKind::TxAdmitted { trace: 7 }),
            ev(
                8,
                9,
                EventKind::TxDropped {
                    trace: 7,
                    reason: "forged",
                },
            ),
        ];
        assert_eq!(validate(&s, Checks::default()), Ok(()));
        // Any other unfounded drop reason is still a violation.
        let s = vec![
            ev(5, 9, EventKind::TxAdmitted { trace: 8 }),
            ev(
                8,
                9,
                EventKind::TxDropped {
                    trace: 8,
                    reason: "invalid",
                },
            ),
        ];
        assert!(validate(&s, Checks::default()).is_err());
    }

    #[test]
    fn strict_propose_is_optional() {
        let s = vec![
            ev(
                1,
                0,
                EventKind::TxSubmitted {
                    trace: 4,
                    provider: 0,
                },
            ),
            ev(
                9,
                10,
                EventKind::TxCommitted {
                    trace: 4,
                    serial: 2,
                },
            ),
        ];
        assert!(validate(&s, Checks::default()).is_err());
        assert_eq!(
            validate(
                &s,
                Checks {
                    strict_propose: false
                }
            ),
            Ok(())
        );
    }

    #[test]
    fn stage_name_round_trip() {
        for (name, stage) in [
            ("tx.submitted", Stage::Submitted),
            ("tx.admitted", Stage::Admitted),
            ("gov.screened", Stage::Screened),
            ("tx.validated", Stage::Validated),
            ("tx.proposed", Stage::Proposed),
            ("tx.committed", Stage::Committed),
            ("tx.dropped", Stage::Dropped),
        ] {
            assert_eq!(Stage::from_kind_name(name), Some(stage));
        }
        assert_eq!(Stage::from_kind_name("msg.sent"), None);
    }
}

//! Observability for the prb protocol stack: structured event tracing,
//! sim-time phase spans, and a metrics registry.
//!
//! The paper's claims are measured shapes — `O(√T)` regret (Theorem 1/4),
//! an unchecked fraction `≤ f` (Lemma 2), `O(b·m)` message complexity
//! (§4.1) — and this crate is the substrate that lets every layer prove
//! its contribution to them from traces rather than printlns:
//!
//! - [`Event`]: node, role, round, sim-time tick, and a typed
//!   [`EventKind`] payload.
//! - [`Recorder`]: a pluggable sink trait with three built-ins —
//!   [`NullRecorder`] (discard), [`RingRecorder`] (bounded in-memory),
//!   and [`JsonlRecorder`] (one JSON object per line, hand-serialized;
//!   the crate is std-only because the build environment has no registry
//!   access).
//! - [`Metrics`]: counters, gauges, and log₂-bucketed [`Histogram`]s
//!   with p50/p95/p99, keyed by static names.
//! - [`Span`]: sim-time intervals for the protocol phases
//!   (election → proposal → screening → vote → commit → reveal → argue),
//!   recorded into `phase.<name>` histograms.
//!
//! Everything hangs off an [`Obs`] behind an [`ObsHandle`]
//! (`Rc<Obs>`): the network kernel, the protocol nodes, and the
//! consensus baselines all clone the same handle. [`Obs::off`] is the
//! default everywhere and short-circuits to a single branch, so an
//! untraced run pays nothing.

mod event;
pub mod json;
mod metrics;
mod recorder;
mod span;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

pub use event::{DropReason, Event, EventKind, FieldValue, Role, EXTERNAL_NODE};
pub use metrics::{Histogram, Metrics};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder};
pub use span::{phases, Span};

/// The shared, cheaply-cloned handle the whole stack threads through.
pub type ObsHandle = Rc<Obs>;

/// Per-message-kind event tallies, for reconciling against the kernel's
/// `MessageStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    /// `msg.sent` events.
    pub sent: u64,
    /// `msg.delivered` events.
    pub delivered: u64,
    /// `msg.dropped` events.
    pub dropped: u64,
}

/// The observability hub: an event sink, the metrics registry, and the
/// ambient context (round number, node roles) events are stamped with.
pub struct Obs {
    enabled: bool,
    sink: Rc<dyn Recorder>,
    metrics: Metrics,
    round: Cell<u64>,
    roles: RefCell<Vec<Role>>,
    /// (event kind, msg kind or "") → occurrences.
    kind_counts: RefCell<BTreeMap<(&'static str, &'static str), u64>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .field("round", &self.round.get())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// A disabled hub: every emit is a single branch, nothing is
    /// recorded. The default for all components.
    pub fn off() -> ObsHandle {
        Rc::new(Obs {
            enabled: false,
            sink: Rc::new(NullRecorder),
            metrics: Metrics::new(),
            round: Cell::new(0),
            roles: RefCell::new(Vec::new()),
            kind_counts: RefCell::new(BTreeMap::new()),
        })
    }

    /// An active hub feeding `sink`.
    pub fn with_sink(sink: Rc<dyn Recorder>) -> ObsHandle {
        Rc::new(Obs {
            enabled: true,
            sink,
            metrics: Metrics::new(),
            round: Cell::new(0),
            roles: RefCell::new(Vec::new()),
            kind_counts: RefCell::new(BTreeMap::new()),
        })
    }

    /// An active hub that counts and aggregates but stores no events.
    pub fn counting() -> ObsHandle {
        Self::with_sink(Rc::new(NullRecorder))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Declares the role of each kernel node index (the driver resolves
    /// roles so emitting sites don't have to).
    pub fn set_roles(&self, roles: Vec<Role>) {
        *self.roles.borrow_mut() = roles;
    }

    /// Stamps subsequent events with `round`.
    pub fn set_round(&self, round: u64) {
        self.round.set(round);
    }

    /// The round currently being stamped.
    pub fn round(&self) -> u64 {
        self.round.get()
    }

    fn role_of(&self, node: u64) -> Role {
        if node == EXTERNAL_NODE {
            return Role::External;
        }
        self.roles
            .borrow()
            .get(node as usize)
            .copied()
            .unwrap_or(Role::External)
    }

    /// Records one event at sim tick `time`, attributed to kernel node
    /// `node` ([`EXTERNAL_NODE`] for the driver). No-op when disabled.
    pub fn emit(&self, time: u64, node: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        *self
            .kind_counts
            .borrow_mut()
            .entry((kind.name(), kind.msg_kind().unwrap_or("")))
            .or_insert(0) += 1;
        let event = Event {
            time,
            node,
            role: self.role_of(node),
            round: self.round.get(),
            kind,
        };
        self.sink.record(&event);
    }

    /// Opens a phase span at tick `now` (pure; see [`Obs::end_span`]).
    pub fn span(&self, phase: &'static str, now: u64) -> Span {
        Span::begin(phase, now)
    }

    /// Closes `span` at tick `now` on behalf of `node`: observes the
    /// duration into the `phase.<name>` histogram and emits a
    /// `phase.end` event. No-op when disabled.
    pub fn end_span(&self, span: Span, now: u64, node: u64) {
        if !self.enabled {
            return;
        }
        let ticks = span.elapsed(now);
        self.metrics.observe(phase_key(span.phase()), ticks);
        self.emit(
            now,
            node,
            EventKind::PhaseEnd {
                phase: span.phase(),
                ticks,
            },
        );
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Event occurrences grouped by (kind name, msg kind or "").
    pub fn kind_counts(&self) -> Vec<((&'static str, &'static str), u64)> {
        self.kind_counts
            .borrow()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Total occurrences of `kind` across all message kinds.
    pub fn count_of(&self, kind: &str) -> u64 {
        self.kind_counts
            .borrow()
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Per-message-kind sent/delivered/dropped tallies, for reconciling
    /// against the kernel's `MessageStats`.
    pub fn msg_counts(&self) -> BTreeMap<&'static str, MsgCounts> {
        let mut out: BTreeMap<&'static str, MsgCounts> = BTreeMap::new();
        for (&(kind, msg), &n) in self.kind_counts.borrow().iter() {
            if msg.is_empty() {
                continue;
            }
            let entry = out.entry(msg).or_default();
            match kind {
                "msg.sent" => entry.sent += n,
                "msg.delivered" => entry.delivered += n,
                "msg.dropped" => entry.dropped += n,
                _ => {}
            }
        }
        out
    }

    /// The end-of-run summary: event counts per kind, then phase-latency
    /// percentiles in sim ticks. Empty string when disabled or empty.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        if !self.enabled {
            return String::new();
        }
        let mut out = String::new();
        let counts = self.kind_counts();
        if !counts.is_empty() {
            let _ = writeln!(out, "## events by kind");
            let _ = writeln!(out, "{:<20} {:<16} {:>10}", "kind", "msg", "count");
            for ((kind, msg), n) in counts {
                let msg = if msg.is_empty() { "-" } else { msg };
                let _ = writeln!(out, "{kind:<20} {msg:<16} {n:>10}");
            }
        }
        let phase_rows: Vec<(&'static str, Histogram)> = self
            .metrics
            .histograms()
            .into_iter()
            .filter(|(name, _)| name.starts_with("phase."))
            .collect();
        if !phase_rows.is_empty() {
            if !out.is_empty() {
                let _ = writeln!(out);
            }
            let _ = writeln!(out, "## phase latency (sim ticks)");
            let _ = writeln!(
                out,
                "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
                "phase", "count", "p50", "p95", "p99", "max"
            );
            for (name, h) in phase_rows {
                let phase = name.strip_prefix("phase.").unwrap_or(name);
                let _ = writeln!(
                    out,
                    "{phase:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    h.count(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max()
                );
            }
        }
        out
    }
}

/// Maps a phase constant to its histogram key.
fn phase_key(phase: &'static str) -> &'static str {
    match phase {
        phases::ELECTION => "phase.election",
        phases::PROPOSAL => "phase.proposal",
        phases::SCREENING => "phase.screening",
        phases::VOTE => "phase.vote",
        phases::COMMIT => "phase.commit",
        phases::REVEAL => "phase.reveal",
        phases::ARGUE => "phase.argue",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let obs = Obs::off();
        obs.emit(1, 0, EventKind::TimerFired { timer: 0 });
        let span = obs.span(phases::VOTE, 0);
        obs.end_span(span, 10, 0);
        assert!(obs.kind_counts().is_empty());
        assert!(obs.metrics().histogram("phase.vote").is_none());
        assert!(obs.summary().is_empty());
    }

    #[test]
    fn emit_stamps_round_and_role() {
        let ring = Rc::new(RingRecorder::new(16));
        let obs = Obs::with_sink(ring.clone());
        obs.set_roles(vec![Role::Provider, Role::Governor]);
        obs.set_round(3);
        obs.emit(5, 1, EventKind::TimerFired { timer: 9 });
        obs.emit(6, EXTERNAL_NODE, EventKind::TimerFired { timer: 10 });
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].role, Role::Governor);
        assert_eq!(events[0].round, 3);
        assert_eq!(events[1].role, Role::External);
    }

    #[test]
    fn spans_feed_phase_histograms_and_events() {
        let obs = Obs::counting();
        let span = obs.span(phases::COMMIT, 100);
        obs.end_span(span, 140, 2);
        let h = obs.metrics().histogram("phase.commit").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 40);
        assert_eq!(obs.count_of("phase.end"), 1);
    }

    #[test]
    fn msg_counts_reconcile_by_kind() {
        let obs = Obs::counting();
        obs.emit(
            0,
            0,
            EventKind::MsgSent {
                msg: "ping",
                to: 1,
                bytes: 4,
            },
        );
        obs.emit(
            1,
            1,
            EventKind::MsgDelivered {
                msg: "ping",
                from: 0,
                bytes: 4,
                latency: 1,
            },
        );
        obs.emit(
            2,
            0,
            EventKind::MsgDropped {
                msg: "ping",
                from: 0,
                bytes: 4,
                reason: DropReason::Loss,
            },
        );
        let counts = obs.msg_counts();
        assert_eq!(
            counts.get("ping"),
            Some(&MsgCounts {
                sent: 1,
                delivered: 1,
                dropped: 1
            })
        );
    }

    #[test]
    fn summary_lists_kinds_and_phases() {
        let obs = Obs::counting();
        obs.emit(
            0,
            0,
            EventKind::MsgSent {
                msg: "ping",
                to: 1,
                bytes: 0,
            },
        );
        let span = obs.span(phases::ELECTION, 0);
        obs.end_span(span, 16, 0);
        let s = obs.summary();
        assert!(s.contains("events by kind"), "{s}");
        assert!(s.contains("msg.sent"), "{s}");
        assert!(s.contains("phase latency"), "{s}");
        assert!(s.contains("election"), "{s}");
    }
}

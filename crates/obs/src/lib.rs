//! Observability for the prb protocol stack: structured event tracing,
//! sim-time phase spans, and a metrics registry.
//!
//! The paper's claims are measured shapes — `O(√T)` regret (Theorem 1/4),
//! an unchecked fraction `≤ f` (Lemma 2), `O(b·m)` message complexity
//! (§4.1) — and this crate is the substrate that lets every layer prove
//! its contribution to them from traces rather than printlns:
//!
//! - [`Event`]: node, role, round, sim-time tick, and a typed
//!   [`EventKind`] payload.
//! - [`Recorder`]: a pluggable sink trait with three built-ins —
//!   [`NullRecorder`] (discard), [`RingRecorder`] (bounded in-memory),
//!   and [`JsonlRecorder`] (one JSON object per line, hand-serialized;
//!   the crate is std-only because the build environment has no registry
//!   access).
//! - [`Metrics`]: counters, gauges, and log₂-bucketed [`Histogram`]s
//!   with p50/p95/p99, keyed by static names.
//! - [`Span`]: sim-time intervals for the protocol phases
//!   (election → proposal → screening → vote → commit → reveal → argue),
//!   recorded into `phase.<name>` histograms.
//!
//! Everything hangs off an [`Obs`] behind an [`ObsHandle`]
//! (`Rc<Obs>`): the network kernel, the protocol nodes, and the
//! consensus baselines all clone the same handle. [`Obs::off`] is the
//! default everywhere and short-circuits to a single branch, so an
//! untraced run pays nothing.

mod event;
mod fxhash;
pub mod json;
pub mod lifecycle;
mod metrics;
mod recorder;
mod span;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use fxhash::FxMap;

pub use event::{DropReason, Event, EventKind, FieldValue, Role, EXTERNAL_NODE};
pub use metrics::{Histogram, Metrics};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, RingRecorder, TeeRecorder};
pub use span::{phases, Span};

/// The shared, cheaply-cloned handle the whole stack threads through.
pub type ObsHandle = Rc<Obs>;

/// Per-message-kind event tallies, for reconciling against the kernel's
/// `MessageStats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsgCounts {
    /// `msg.sent` events.
    pub sent: u64,
    /// `msg.delivered` events.
    pub delivered: u64,
    /// `msg.dropped` events.
    pub dropped: u64,
}

/// Where one transaction stands in its lifecycle: the first-seen tick
/// (and round, for the bookends) of each stage across all replicas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TxTimes {
    submitted: Option<(u64, u64)>,
    admitted: Option<u64>,
    screened: Option<u64>,
    proposed: Option<u64>,
    committed: Option<(u64, u64)>,
    dropped: bool,
}

/// Aggregate lifecycle tallies over distinct trace ids.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleCounts {
    /// Traces with a `tx.submitted` event.
    pub submitted: u64,
    /// Traces some replica committed.
    pub committed: u64,
    /// Traces that were dropped and never committed.
    pub dropped: u64,
    /// Submitted traces with no terminal event yet (orphans).
    pub open: u64,
}

/// The observability hub: an event sink, the metrics registry, and the
/// ambient context (round number, node roles) events are stamped with.
pub struct Obs {
    enabled: bool,
    sink: Rc<dyn Recorder>,
    metrics: Metrics,
    round: Cell<u64>,
    roles: RefCell<Vec<Role>>,
    /// (event kind, msg kind or "") → occurrences.
    kind_counts: RefCell<BTreeMap<(&'static str, &'static str), u64>>,
    /// trace id → first-seen stage times; feeds the `lat.*` histograms.
    /// A seeded-Fx map, not `BTreeMap`: this is written once per traced
    /// transaction per stage, and nothing reads it in bucket order
    /// ([`Obs::open_traces`] sorts its output explicitly).
    lifecycle: RefCell<FxMap<u64, TxTimes>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled)
            .field("round", &self.round.get())
            .finish_non_exhaustive()
    }
}

impl Obs {
    /// A disabled hub: every emit is a single branch, nothing is
    /// recorded. The default for all components.
    pub fn off() -> ObsHandle {
        Rc::new(Obs {
            enabled: false,
            sink: Rc::new(NullRecorder),
            metrics: Metrics::new(),
            round: Cell::new(0),
            roles: RefCell::new(Vec::new()),
            kind_counts: RefCell::new(BTreeMap::new()),
            lifecycle: RefCell::new(FxMap::default()),
        })
    }

    /// An active hub feeding `sink`.
    pub fn with_sink(sink: Rc<dyn Recorder>) -> ObsHandle {
        Rc::new(Obs {
            enabled: true,
            sink,
            metrics: Metrics::new(),
            round: Cell::new(0),
            roles: RefCell::new(Vec::new()),
            kind_counts: RefCell::new(BTreeMap::new()),
            lifecycle: RefCell::new(FxMap::default()),
        })
    }

    /// An active hub that counts and aggregates but stores no events.
    pub fn counting() -> ObsHandle {
        Self::with_sink(Rc::new(NullRecorder))
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Declares the role of each kernel node index (the driver resolves
    /// roles so emitting sites don't have to).
    pub fn set_roles(&self, roles: Vec<Role>) {
        *self.roles.borrow_mut() = roles;
    }

    /// Stamps subsequent events with `round`.
    pub fn set_round(&self, round: u64) {
        self.round.set(round);
    }

    /// The round currently being stamped.
    pub fn round(&self) -> u64 {
        self.round.get()
    }

    fn role_of(&self, node: u64) -> Role {
        if node == EXTERNAL_NODE {
            return Role::External;
        }
        self.roles
            .borrow()
            .get(node as usize)
            .copied()
            .unwrap_or(Role::External)
    }

    /// Records one event at sim tick `time`, attributed to kernel node
    /// `node` ([`EXTERNAL_NODE`] for the driver). No-op when disabled.
    pub fn emit(&self, time: u64, node: u64, kind: EventKind) {
        if !self.enabled {
            return;
        }
        *self
            .kind_counts
            .borrow_mut()
            .entry((kind.name(), kind.msg_kind().unwrap_or("")))
            .or_insert(0) += 1;
        if kind.trace_id().is_some() {
            self.track_lifecycle(time, &kind);
        }
        let event = Event {
            time,
            node,
            role: self.role_of(node),
            round: self.round.get(),
            kind,
        };
        self.sink.record(&event);
    }

    /// Folds one lifecycle event into the per-trace timeline. Each stage
    /// keeps its *first* occurrence (replicas re-report later ones); the
    /// first commit closes the timeline and feeds the `lat.*` histograms
    /// in both sim ticks and rounds.
    fn track_lifecycle(&self, time: u64, kind: &EventKind) {
        let Some(trace) = kind.trace_id() else {
            return;
        };
        let round = self.round.get();
        let mut map = self.lifecycle.borrow_mut();
        let tx = map.entry(trace).or_default();
        match kind {
            EventKind::TxSubmitted { .. } => {
                tx.submitted.get_or_insert((time, round));
            }
            EventKind::TxAdmitted { .. } => {
                tx.admitted.get_or_insert(time);
            }
            EventKind::TxScreened { .. } | EventKind::TxValidated { .. } => {
                tx.screened.get_or_insert(time);
            }
            EventKind::TxProposed { .. } => {
                tx.proposed.get_or_insert(time);
            }
            EventKind::TxCommitted { .. } => {
                if tx.committed.is_some() {
                    return;
                }
                tx.committed = Some((time, round));
                if let Some((t0, r0)) = tx.submitted {
                    self.metrics
                        .observe("lat.submit_to_commit", time.saturating_sub(t0));
                    self.metrics
                        .observe("lat.commit_rounds", round.saturating_sub(r0));
                    if let Some(ts) = tx.screened {
                        self.metrics
                            .observe("lat.submit_to_screen", ts.saturating_sub(t0));
                    }
                }
                if let (Some(ts), Some(tp)) = (tx.screened, tx.proposed) {
                    self.metrics
                        .observe("lat.screen_to_propose", tp.saturating_sub(ts));
                }
                if let Some(tp) = tx.proposed {
                    self.metrics
                        .observe("lat.propose_to_commit", time.saturating_sub(tp));
                }
            }
            EventKind::TxDropped { .. } => tx.dropped = true,
            _ => {}
        }
    }

    /// Aggregate lifecycle tallies over distinct trace ids.
    pub fn lifecycle_counts(&self) -> LifecycleCounts {
        let mut out = LifecycleCounts::default();
        for tx in self.lifecycle.borrow().values() {
            if tx.submitted.is_some() {
                out.submitted += 1;
            }
            if tx.committed.is_some() {
                out.committed += 1;
            } else if tx.dropped {
                out.dropped += 1;
            } else if tx.submitted.is_some() {
                out.open += 1;
            }
        }
        out
    }

    /// Trace ids that were submitted but never reached a terminal stage
    /// (committed or dropped) — the lifecycle-coverage failures.
    pub fn open_traces(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .lifecycle
            .borrow()
            .iter()
            .filter(|(_, tx)| tx.submitted.is_some() && tx.committed.is_none() && !tx.dropped)
            .map(|(&t, _)| t)
            .collect();
        out.sort_unstable();
        out
    }

    /// Adds `n` to counter `name` (no-op when disabled). Used by hot
    /// paths (e.g. wall-clock nanosecond accumulation) that must cost a
    /// single branch in untraced runs.
    pub fn add_counter(&self, name: &'static str, n: u64) {
        if self.enabled {
            self.metrics.add(name, n);
        }
    }

    /// Records `value` into histogram `name` (no-op when disabled).
    pub fn observe(&self, name: &'static str, value: u64) {
        if self.enabled {
            self.metrics.observe(name, value);
        }
    }

    /// Sets gauge `name` (no-op when disabled).
    pub fn set_gauge(&self, name: &'static str, value: f64) {
        if self.enabled {
            self.metrics.set_gauge(name, value);
        }
    }

    /// Opens a phase span at tick `now` (pure; see [`Obs::end_span`]).
    pub fn span(&self, phase: &'static str, now: u64) -> Span {
        Span::begin(phase, now)
    }

    /// Closes `span` at tick `now` on behalf of `node`: observes the
    /// duration into the `phase.<name>` histogram and emits a
    /// `phase.end` event. No-op when disabled.
    pub fn end_span(&self, span: Span, now: u64, node: u64) {
        if !self.enabled {
            return;
        }
        let ticks = span.elapsed(now);
        self.metrics.observe(phase_key(span.phase()), ticks);
        self.emit(
            now,
            node,
            EventKind::PhaseEnd {
                phase: span.phase(),
                ticks,
            },
        );
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Event occurrences grouped by (kind name, msg kind or "").
    pub fn kind_counts(&self) -> Vec<((&'static str, &'static str), u64)> {
        self.kind_counts
            .borrow()
            .iter()
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Total occurrences of `kind` across all message kinds.
    pub fn count_of(&self, kind: &str) -> u64 {
        self.kind_counts
            .borrow()
            .iter()
            .filter(|((k, _), _)| *k == kind)
            .map(|(_, &v)| v)
            .sum()
    }

    /// Per-message-kind sent/delivered/dropped tallies, for reconciling
    /// against the kernel's `MessageStats`.
    pub fn msg_counts(&self) -> BTreeMap<&'static str, MsgCounts> {
        let mut out: BTreeMap<&'static str, MsgCounts> = BTreeMap::new();
        for (&(kind, msg), &n) in self.kind_counts.borrow().iter() {
            if msg.is_empty() {
                continue;
            }
            let entry = out.entry(msg).or_default();
            match kind {
                "msg.sent" => entry.sent += n,
                "msg.delivered" => entry.delivered += n,
                "msg.dropped" => entry.dropped += n,
                _ => {}
            }
        }
        out
    }

    /// The end-of-run summary: event counts per kind, then phase- and
    /// commit-latency percentiles in sim ticks, then gauges. Every
    /// section iterates `BTreeMap`-backed registries, so the output is
    /// byte-for-byte deterministic for a given run. Empty string when
    /// disabled or empty.
    pub fn summary(&self) -> String {
        use std::fmt::Write;
        if !self.enabled {
            return String::new();
        }
        let mut out = String::new();
        let counts = self.kind_counts();
        if !counts.is_empty() {
            let _ = writeln!(out, "## events by kind");
            let _ = writeln!(out, "{:<20} {:<16} {:>10}", "kind", "msg", "count");
            for ((kind, msg), n) in counts {
                let msg = if msg.is_empty() { "-" } else { msg };
                let _ = writeln!(out, "{kind:<20} {msg:<16} {n:>10}");
            }
        }
        let section =
            |out: &mut String, title: &str, strip: &str, rows: Vec<(&'static str, Histogram)>| {
                if rows.is_empty() {
                    return;
                }
                if !out.is_empty() {
                    let _ = writeln!(out);
                }
                let _ = writeln!(out, "## {title}");
                let _ = writeln!(
                    out,
                    "{:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                    "name", "count", "p50", "p95", "p99", "p999", "max"
                );
                for (name, h) in rows {
                    let name = name.strip_prefix(strip).unwrap_or(name);
                    let _ = writeln!(
                        out,
                        "{name:<20} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
                        h.count(),
                        h.p50(),
                        h.p95(),
                        h.p99(),
                        h.p999(),
                        h.max()
                    );
                }
            };
        let rows_with = |prefix: &str| -> Vec<(&'static str, Histogram)> {
            self.metrics
                .histograms()
                .into_iter()
                .filter(|(name, _)| name.starts_with(prefix))
                .collect()
        };
        section(
            &mut out,
            "phase latency (sim ticks)",
            "phase.",
            rows_with("phase."),
        );
        section(
            &mut out,
            "commit latency (sim ticks; *_rounds in rounds)",
            "lat.",
            rows_with("lat."),
        );
        section(&mut out, "queue depth", "depth.", rows_with("depth."));
        let gauges = self.metrics.gauges();
        if !gauges.is_empty() {
            if !out.is_empty() {
                let _ = writeln!(out);
            }
            let _ = writeln!(out, "## gauges");
            for (name, v) in gauges {
                let _ = writeln!(out, "{name:<28} {v:>12.2}");
            }
        }
        out
    }
}

/// Maps a phase constant to its histogram key.
fn phase_key(phase: &'static str) -> &'static str {
    match phase {
        phases::ELECTION => "phase.election",
        phases::PROPOSAL => "phase.proposal",
        phases::SCREENING => "phase.screening",
        phases::VOTE => "phase.vote",
        phases::COMMIT => "phase.commit",
        phases::REVEAL => "phase.reveal",
        phases::ARGUE => "phase.argue",
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_records_nothing() {
        let obs = Obs::off();
        obs.emit(1, 0, EventKind::TimerFired { timer: 0 });
        let span = obs.span(phases::VOTE, 0);
        obs.end_span(span, 10, 0);
        assert!(obs.kind_counts().is_empty());
        assert!(obs.metrics().histogram("phase.vote").is_none());
        assert!(obs.summary().is_empty());
    }

    #[test]
    fn emit_stamps_round_and_role() {
        let ring = Rc::new(RingRecorder::new(16));
        let obs = Obs::with_sink(ring.clone());
        obs.set_roles(vec![Role::Provider, Role::Governor]);
        obs.set_round(3);
        obs.emit(5, 1, EventKind::TimerFired { timer: 9 });
        obs.emit(6, EXTERNAL_NODE, EventKind::TimerFired { timer: 10 });
        let events = ring.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].role, Role::Governor);
        assert_eq!(events[0].round, 3);
        assert_eq!(events[1].role, Role::External);
    }

    #[test]
    fn spans_feed_phase_histograms_and_events() {
        let obs = Obs::counting();
        let span = obs.span(phases::COMMIT, 100);
        obs.end_span(span, 140, 2);
        let h = obs.metrics().histogram("phase.commit").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 40);
        assert_eq!(obs.count_of("phase.end"), 1);
    }

    #[test]
    fn msg_counts_reconcile_by_kind() {
        let obs = Obs::counting();
        obs.emit(
            0,
            0,
            EventKind::MsgSent {
                msg: "ping",
                to: 1,
                bytes: 4,
            },
        );
        obs.emit(
            1,
            1,
            EventKind::MsgDelivered {
                msg: "ping",
                from: 0,
                bytes: 4,
                latency: 1,
            },
        );
        obs.emit(
            2,
            0,
            EventKind::MsgDropped {
                msg: "ping",
                from: 0,
                bytes: 4,
                reason: DropReason::Loss,
            },
        );
        let counts = obs.msg_counts();
        assert_eq!(
            counts.get("ping"),
            Some(&MsgCounts {
                sent: 1,
                delivered: 1,
                dropped: 1
            })
        );
    }

    fn lifecycle_run(obs: &Obs) {
        obs.set_round(1);
        obs.emit(
            10,
            0,
            EventKind::TxSubmitted {
                trace: 7,
                provider: 0,
            },
        );
        obs.emit(30, 5, EventKind::TxAdmitted { trace: 7 });
        obs.emit(
            50,
            5,
            EventKind::TxScreened {
                trace: 7,
                drawn: 1,
                checked: false,
                label_valid: true,
            },
        );
        obs.set_round(2);
        obs.emit(
            80,
            5,
            EventKind::TxProposed {
                trace: 7,
                serial: 1,
            },
        );
        obs.emit(
            95,
            6,
            EventKind::TxCommitted {
                trace: 7,
                serial: 1,
            },
        );
        // Replica re-reports are first-wins; they must not re-feed lat.*.
        obs.emit(
            99,
            7,
            EventKind::TxCommitted {
                trace: 7,
                serial: 1,
            },
        );
        obs.emit(
            11,
            0,
            EventKind::TxSubmitted {
                trace: 8,
                provider: 1,
            },
        );
        obs.emit(
            40,
            5,
            EventKind::TxDropped {
                trace: 8,
                reason: "invalid",
            },
        );
        obs.emit(
            12,
            0,
            EventKind::TxSubmitted {
                trace: 9,
                provider: 2,
            },
        );
    }

    #[test]
    fn lifecycle_tracker_feeds_latency_histograms_once() {
        let obs = Obs::counting();
        lifecycle_run(&obs);
        let e2e = obs.metrics().histogram("lat.submit_to_commit").unwrap();
        assert_eq!(e2e.count(), 1);
        assert_eq!(e2e.max(), 85);
        let rounds = obs.metrics().histogram("lat.commit_rounds").unwrap();
        assert_eq!(rounds.max(), 1);
        assert_eq!(
            obs.metrics()
                .histogram("lat.submit_to_screen")
                .unwrap()
                .max(),
            40
        );
        assert_eq!(
            obs.metrics()
                .histogram("lat.propose_to_commit")
                .unwrap()
                .max(),
            15
        );
        let counts = obs.lifecycle_counts();
        assert_eq!(
            counts,
            LifecycleCounts {
                submitted: 3,
                committed: 1,
                dropped: 1,
                open: 1
            }
        );
        assert_eq!(obs.open_traces(), vec![9]);
    }

    #[test]
    fn summary_is_deterministic_and_lists_all_sections() {
        let build = || {
            let obs = Obs::counting();
            lifecycle_run(&obs);
            let span = obs.span(phases::COMMIT, 0);
            obs.end_span(span, 12, 5);
            obs.set_gauge("gov.mempool_depth", 3.0);
            obs.observe("depth.ready", 2);
            obs.summary()
        };
        let a = build();
        assert_eq!(a, build(), "summary must be byte-identical across runs");
        assert!(a.contains("commit latency"), "{a}");
        assert!(a.contains("submit_to_commit"), "{a}");
        assert!(a.contains("p999"), "{a}");
        assert!(a.contains("## gauges"), "{a}");
        assert!(a.contains("gov.mempool_depth"), "{a}");
        assert!(a.contains("## queue depth"), "{a}");
    }

    #[test]
    fn gated_helpers_are_noops_when_off() {
        let obs = Obs::off();
        obs.add_counter("wall.crypto_ns", 5);
        obs.observe("depth.ready", 1);
        obs.set_gauge("g", 1.0);
        assert_eq!(obs.metrics().counter("wall.crypto_ns"), 0);
        assert!(obs.metrics().histogram("depth.ready").is_none());
        assert_eq!(obs.metrics().gauge("g"), None);
        assert_eq!(obs.lifecycle_counts(), LifecycleCounts::default());
    }

    #[test]
    fn summary_lists_kinds_and_phases() {
        let obs = Obs::counting();
        obs.emit(
            0,
            0,
            EventKind::MsgSent {
                msg: "ping",
                to: 1,
                bytes: 0,
            },
        );
        let span = obs.span(phases::ELECTION, 0);
        obs.end_span(span, 16, 0);
        let s = obs.summary();
        assert!(s.contains("events by kind"), "{s}");
        assert!(s.contains("msg.sent"), "{s}");
        assert!(s.contains("phase latency"), "{s}");
        assert!(s.contains("election"), "{s}");
    }
}

//! Private deterministic hasher for the per-transaction lifecycle map.
//!
//! The lifecycle tracker is written to on every traced `tx.*` event — one
//! map operation per transaction per stage — which made the default
//! SipHash `HashMap` (and before it, `BTreeMap`'s pointer chasing) the
//! hottest observability cost in the E15 open-loop profile. This is the
//! same multiply-rotate Fx mix as `prb_crypto::fxhash`, duplicated here
//! because this crate is deliberately std-only with zero dependencies
//! (see the crate docs); keep the two in sync by hand.
//!
//! The seed is fixed: observability output must not vary run-to-run, and
//! nothing in this crate reads protocol configuration. Anything
//! order-sensitive that iterates the map (e.g. `open_traces`) sorts
//! explicitly rather than leaning on bucket order.

use std::hash::{BuildHasher, Hasher};

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const SEED: u64 = 0x9e37_79b9_7f4a_7c15;

#[inline]
fn scramble(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Word-at-a-time multiply-rotate hasher started from the fixed seed.
#[derive(Clone, Copy, Debug)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().expect("4 bytes"),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn finish(&self) -> u64 {
        scramble(self.state)
    }
}

/// Fixed-seed [`BuildHasher`]; `Default` is the only constructor on
/// purpose — every map in this crate hashes identically in every run.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxSeed;

impl BuildHasher for FxSeed {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher {
            state: scramble(SEED),
        }
    }
}

/// A `HashMap` using the fixed-seed deterministic hasher.
pub type FxMap<K, V> = std::collections::HashMap<K, V, FxSeed>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_map_is_run_stable() {
        // Two maps built identically iterate identically — the property
        // the tracker relies on for deterministic metrics aggregation.
        let build = || {
            let mut m = FxMap::default();
            for i in 0..500u64 {
                m.insert(i.wrapping_mul(0x2545_f491_4f6c_dd1d), i);
            }
            m.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }
}

//! Parameters of the reputation mechanism and the paper's constraints on
//! them.
//!
//! §3.4 introduces three tunables: `f` (screening-skip aggressiveness),
//! and `μ, ν > 1` (revenue weighting of the misreport/forge counters).
//! §3.4.2 adds the discount base `β ∈ (0, 1)` and the per-transaction
//! discount `γ_tx`, which must satisfy
//!
//! ```text
//! β² ≤ γ_tx ≤ β ≤ ½(γ_tx − 1)·L_tx + 1 ≤ 1
//! ```
//!
//! with `L_tx = 2·W_wrong / (W_right + W_wrong)`. The paper proves that for
//! every `β ∈ (0,1)` and `L_tx < 2` such a `γ_tx` exists and suggests the
//! concrete choice implemented by [`gamma_tx`]:
//!
//! ```text
//! γ_tx = max{ (β−1)/L_tx + (β+1)/2 , (β² + β)/2 }
//! ```

use std::fmt;

/// Validated parameters of the reputation mechanism.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReputationParams {
    /// Discount base `β ∈ (0, 1)`; the paper's practical choice is 0.9.
    pub beta: f64,
    /// Screening parameter `f ∈ (0, 1)`: larger skips more validations.
    pub f: f64,
    /// Revenue weight of the misreport counter, `μ > 1`.
    pub mu: f64,
    /// Revenue weight of the forge counter, `ν > 1`.
    pub nu: f64,
    /// Extension (not in the paper): a lower bound on per-provider
    /// weights. `0.0` reproduces the paper exactly (weights decay forever);
    /// a positive floor lets a reformed collector regain influence, at the
    /// cost of weakening the regret bound (ablated in `exp_incentives
    /// --ablate-floor`).
    pub weight_floor: f64,
}

impl Default for ReputationParams {
    /// The paper's practical defaults: `β = 0.9`, `f = 0.5`, `μ = ν = 2`.
    fn default() -> Self {
        ReputationParams {
            beta: 0.9,
            f: 0.5,
            mu: 2.0,
            nu: 2.0,
            weight_floor: 0.0,
        }
    }
}

/// Error for out-of-range parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct InvalidParamsError(String);

impl fmt::Display for InvalidParamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid reputation parameters: {}", self.0)
    }
}

impl std::error::Error for InvalidParamsError {}

impl ReputationParams {
    /// Builds validated parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] unless `β, f ∈ (0,1)` and `μ, ν > 1`.
    pub fn new(beta: f64, f: f64, mu: f64, nu: f64) -> Result<Self, InvalidParamsError> {
        let p = ReputationParams {
            beta,
            f,
            mu,
            nu,
            weight_floor: 0.0,
        };
        p.validate()?;
        Ok(p)
    }

    /// Re-checks all constraints (useful after field tweaks in sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamsError`] describing the violated constraint.
    pub fn validate(&self) -> Result<(), InvalidParamsError> {
        if !(self.beta > 0.0 && self.beta < 1.0) {
            return Err(InvalidParamsError(format!(
                "beta must be in (0,1), got {}",
                self.beta
            )));
        }
        if !(self.f > 0.0 && self.f < 1.0) {
            return Err(InvalidParamsError(format!(
                "f must be in (0,1), got {}",
                self.f
            )));
        }
        if self.mu <= 1.0 || self.mu.is_nan() {
            return Err(InvalidParamsError(format!(
                "mu must exceed 1, got {}",
                self.mu
            )));
        }
        if self.nu <= 1.0 || self.nu.is_nan() {
            return Err(InvalidParamsError(format!(
                "nu must exceed 1, got {}",
                self.nu
            )));
        }
        if !(0.0..1.0).contains(&self.weight_floor) {
            return Err(InvalidParamsError(format!(
                "weight_floor must be in [0,1), got {}",
                self.weight_floor
            )));
        }
        Ok(())
    }

    /// The theorem-optimal discount base `β = 1 − 4·√(ln r / T)` for a
    /// known horizon of `t` transactions over `r` collectors (Theorem 1),
    /// clamped into `[0.1, 0.9]` — the interval on which the proof's
    /// log-linearization `−ln β / (1−β) ≤ 17/2 − 8β` holds.
    pub fn theorem_beta(r: usize, t: u64) -> f64 {
        let raw = 1.0 - 4.0 * ((r.max(2) as f64).ln() / (t.max(1) as f64)).sqrt();
        raw.clamp(0.1, 0.9)
    }

    /// Replaces `beta` with the theorem-optimal value for horizon `t`.
    pub fn with_theorem_beta(mut self, r: usize, t: u64) -> Self {
        self.beta = Self::theorem_beta(r, t);
        self
    }
}

/// The paper's expected per-transaction governor loss when the transaction
/// goes unchecked: `L_tx = 2·W_wrong / (W_right + W_wrong)`.
///
/// Returns 0 when no reporter had any weight (degenerate; the caller falls
/// back to uniform sampling there).
pub fn loss_ltx(w_right: f64, w_wrong: f64) -> f64 {
    let total = w_right + w_wrong;
    if total <= 0.0 {
        0.0
    } else {
        2.0 * w_wrong / total
    }
}

/// The paper's concrete discount `γ_tx` (§3.4.2).
///
/// When `l_tx == 0` nobody mislabeled and the first branch is `−∞`, so the
/// value degenerates to `(β²+β)/2` (it is then never applied to anyone).
pub fn gamma_tx(beta: f64, l_tx: f64) -> f64 {
    let fallback = (beta * beta + beta) / 2.0;
    if l_tx <= 0.0 {
        return fallback;
    }
    let primary = (beta - 1.0) / l_tx + (beta + 1.0) / 2.0;
    primary.max(fallback)
}

/// Checks the paper's inequality chain
/// `β² ≤ γ ≤ β ≤ ½(γ−1)L + 1 ≤ 1` for a concrete `(β, γ, L)` triple.
///
/// Used by tests and the parameter-sweep harness to confirm the concrete
/// `γ_tx` choice is admissible. A small epsilon absorbs floating-point
/// round-off.
pub fn gamma_chain_holds(beta: f64, gamma: f64, l_tx: f64) -> bool {
    const EPS: f64 = 1e-9;
    let mid = 0.5 * (gamma - 1.0) * l_tx + 1.0;
    beta * beta <= gamma + EPS && gamma <= beta + EPS && beta <= mid + EPS && mid <= 1.0 + EPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn defaults_are_valid() {
        ReputationParams::default().validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(ReputationParams::new(0.0, 0.5, 2.0, 2.0).is_err());
        assert!(ReputationParams::new(1.0, 0.5, 2.0, 2.0).is_err());
        assert!(ReputationParams::new(0.9, 0.0, 2.0, 2.0).is_err());
        assert!(ReputationParams::new(0.9, 1.0, 2.0, 2.0).is_err());
        assert!(ReputationParams::new(0.9, 0.5, 1.0, 2.0).is_err());
        assert!(ReputationParams::new(0.9, 0.5, 2.0, 0.5).is_err());
        let err = ReputationParams::new(2.0, 0.5, 2.0, 2.0).unwrap_err();
        assert!(err.to_string().contains("beta"));
    }

    #[test]
    fn theorem_beta_matches_formula_and_clamps() {
        // r = 8, T = 4800 → β = 1 − 4√(ln 8 / 4800) ≈ 0.9167 → clamped 0.9.
        assert_eq!(ReputationParams::theorem_beta(8, 4800), 0.9);
        // Small T forces tiny beta → clamped at 0.1.
        assert_eq!(ReputationParams::theorem_beta(8, 4), 0.1);
        // Mid-range: formula applies un-clamped.
        let b = ReputationParams::theorem_beta(8, 400);
        let expected = 1.0 - 4.0 * ((8f64).ln() / 400.0).sqrt();
        assert!((b - expected).abs() < 1e-12);
        assert!(b > 0.1 && b < 0.9);
    }

    #[test]
    fn with_theorem_beta_replaces_beta() {
        let p = ReputationParams::default().with_theorem_beta(8, 400);
        assert!((p.beta - ReputationParams::theorem_beta(8, 400)).abs() < 1e-15);
        p.validate().unwrap();
    }

    #[test]
    fn loss_edge_cases() {
        assert_eq!(loss_ltx(1.0, 0.0), 0.0);
        assert_eq!(loss_ltx(0.0, 1.0), 2.0);
        assert_eq!(loss_ltx(1.0, 1.0), 1.0);
        assert_eq!(loss_ltx(0.0, 0.0), 0.0);
    }

    #[test]
    fn gamma_known_values() {
        // With beta = 0.9, L = 2 (everyone wrong): γ = max{0.9+(-0.05), .855}
        let g = gamma_tx(0.9, 2.0);
        assert!((g - 0.9).abs() < 1e-12);
        // L → 0: fallback (β²+β)/2 = 0.855.
        assert!((gamma_tx(0.9, 0.0) - 0.855).abs() < 1e-12);
    }

    proptest! {
        /// The paper's claim: for every β ∈ (0,1) and L ∈ (0,2], the chosen
        /// γ_tx satisfies the full inequality chain.
        #[test]
        fn gamma_chain_always_holds(beta in 0.01f64..0.99, l in 0.001f64..2.0) {
            let gamma = gamma_tx(beta, l);
            prop_assert!(gamma > 0.0 && gamma < 1.0, "gamma {gamma} out of (0,1)");
            prop_assert!(
                gamma_chain_holds(beta, gamma, l),
                "chain violated: beta={beta} gamma={gamma} l={l}"
            );
        }

        /// γ ≥ β² always (needed so w_min ≥ β^{S_min} in Theorem 1).
        #[test]
        fn gamma_at_least_beta_squared(beta in 0.01f64..0.99, l in 0.0f64..2.0) {
            prop_assert!(gamma_tx(beta, l) >= beta * beta - 1e-12);
        }

        /// γ ≥ 2(β−1)/L + 1, the lower bound used in the potential argument.
        #[test]
        fn gamma_upper_bounds_potential(beta in 0.01f64..0.99, l in 0.001f64..2.0) {
            let gamma = gamma_tx(beta, l);
            prop_assert!(gamma >= 2.0 * (beta - 1.0) / l + 1.0 - 1e-9);
        }
    }
}

//! Algorithm 3 — Reputation Updating — over a governor's full table.
//!
//! A governor keeps one [`ReputationVector`] per collector; this module
//! applies the three update cases of §3.4.2:
//!
//! - **case 1** (forged/illegal signature): `w_forge −= 1`,
//! - **case 2** (transaction checked): `w_misreport ± 1` per reporting
//!   collector,
//! - **case 3** (unchecked transaction's truth revealed): multiplicative
//!   discounts on the per-provider weights — `×γ_tx` for wrong labels,
//!   `×β` for missed uploads, unchanged for correct labels.
//!
//! ### Note on a discrepancy in the paper
//!
//! The prose of §3.4.2 and the potential argument in Theorem 1's proof
//! (`W_{t+1} = W_{t,0} + β·W_{t,1} + γ_t·W_{t,2}`, with `W_{t,0}` the
//! *correct* weight and `W_{t,1}` the *abstaining* weight) both say:
//! correct → unchanged, missed → `×β`, wrong → `×γ`. The pseudo-code of
//! Algorithm 3 (lines 20–25) instead applies `β` to *correct* labels and
//! nothing to the missing. We implement the prose/proof version — the
//! pseudo-code variant would break the regret bound the paper proves
//! (a perfect expert's weight would decay as `β^T`).

use std::fmt;

use crate::params::{gamma_tx, loss_ltx, ReputationParams};
use crate::vector::ReputationVector;

/// What a collector did with a revealed transaction, for case 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RevealedBehaviour {
    /// Labeled in agreement with the revealed status.
    Correct,
    /// Labeled opposite to the revealed status.
    Wrong,
    /// Was linked with the provider but did not upload the transaction.
    Missed,
}

/// One collector's involvement in a revealed transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RevealedReport {
    /// The collector's index in the table.
    pub collector: usize,
    /// The provider slot in that collector's reputation vector.
    pub provider_slot: usize,
    /// What the collector did.
    pub behaviour: RevealedBehaviour,
}

/// Summary of a case-3 update (exposed for metrics and tests).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RevealOutcome {
    /// The realized `L_tx` over the reporting weights.
    pub l_tx: f64,
    /// The applied `γ_tx`.
    pub gamma: f64,
    /// `W_right` at update time.
    pub w_right: f64,
    /// `W_wrong` at update time.
    pub w_wrong: f64,
}

/// A governor's reputation table: one vector per collector.
#[derive(Clone, PartialEq)]
pub struct ReputationTable {
    vectors: Vec<ReputationVector>,
    params: ReputationParams,
}

impl fmt::Debug for ReputationTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReputationTable")
            .field("collectors", &self.vectors.len())
            .field("params", &self.params)
            .finish()
    }
}

impl ReputationTable {
    /// A table for `collectors` collectors, each overseeing `s` providers.
    pub fn new(collectors: usize, s: usize, params: ReputationParams) -> Self {
        ReputationTable {
            vectors: (0..collectors).map(|_| ReputationVector::new(s)).collect(),
            params,
        }
    }

    /// The mechanism parameters.
    pub fn params(&self) -> &ReputationParams {
        &self.params
    }

    /// Restores a table from per-collector vectors (checkpoint
    /// state-sync): the adopted vectors replace any locally accumulated
    /// history.
    pub fn from_vectors(vectors: Vec<ReputationVector>, params: ReputationParams) -> Self {
        ReputationTable { vectors, params }
    }

    /// The vector for collector `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn collector(&self, i: usize) -> &ReputationVector {
        &self.vectors[i]
    }

    /// Number of collectors tracked.
    pub fn collector_count(&self) -> usize {
        self.vectors.len()
    }

    /// The screening weight of collector `i` w.r.t. its provider slot.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn weight(&self, collector: usize, provider_slot: usize) -> f64 {
        self.vectors[collector].weight(provider_slot)
    }

    /// Resets collector `i` to a fresh prior-seeded vector — a member
    /// (re)joining under churn starts from the configured bootstrap
    /// prior, never from a stale pre-departure score (E17).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `prior` is outside `(0, 1]`.
    pub fn bootstrap_collector(&mut self, i: usize, prior: f64) {
        let s = self.vectors[i].provider_slots();
        self.vectors[i] = ReputationVector::with_prior(s, prior);
    }

    /// Applies one silence-decay step to collector `i`: every screening
    /// weight is multiplied by `factor`, floored at the table's
    /// `weight_floor` so a silent member never reaches an exact zero
    /// (which would be unrecoverable in the multiplicative-weights
    /// regime).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `factor` is outside `(0, 1]`.
    pub fn decay_collector(&mut self, i: usize, factor: f64) {
        let floor = self.params.weight_floor;
        self.vectors[i].decay(factor, floor);
    }

    /// Case 1: collector `i` uploaded a transaction with an illegal
    /// signature.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn record_forgery(&mut self, i: usize) {
        self.vectors[i].record_forgery();
    }

    /// Case 2: the governor checked a transaction; `reports` lists each
    /// reporting collector and whether its label matched the outcome.
    pub fn record_checked(&mut self, reports: &[(usize, bool)]) {
        for &(collector, correct) in reports {
            self.vectors[collector].record_checked(correct);
        }
    }

    /// Case 3: the real status of a previously unchecked transaction is
    /// revealed; applies the multiplicative discounts and returns the
    /// realized `(L_tx, γ_tx)`.
    pub fn record_revealed(&mut self, reports: &[RevealedReport]) -> RevealOutcome {
        let mut w_right = 0.0;
        let mut w_wrong = 0.0;
        for r in reports {
            let w = self.vectors[r.collector].weight(r.provider_slot);
            match r.behaviour {
                RevealedBehaviour::Correct => w_right += w,
                RevealedBehaviour::Wrong => w_wrong += w,
                RevealedBehaviour::Missed => {}
            }
        }
        let l_tx = loss_ltx(w_right, w_wrong);
        let gamma = gamma_tx(self.params.beta, l_tx);
        let floor = self.params.weight_floor;
        for r in reports {
            match r.behaviour {
                RevealedBehaviour::Correct => {}
                RevealedBehaviour::Wrong => {
                    self.vectors[r.collector].discount_floored(r.provider_slot, gamma, floor)
                }
                RevealedBehaviour::Missed => self.vectors[r.collector].discount_floored(
                    r.provider_slot,
                    self.params.beta,
                    floor,
                ),
            }
        }
        RevealOutcome {
            l_tx,
            gamma,
            w_right,
            w_wrong,
        }
    }

    /// Log revenue weights for all collectors (§3.4.3 revenue product).
    pub fn log_revenue_weights(&self) -> Vec<f64> {
        self.vectors
            .iter()
            .map(|v| v.log_revenue_weight(self.params.mu, self.params.nu))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ReputationTable {
        ReputationTable::new(4, 2, ReputationParams::default())
    }

    #[test]
    fn fresh_table_all_ones() {
        let t = table();
        assert_eq!(t.collector_count(), 4);
        for i in 0..4 {
            assert_eq!(t.weight(i, 0), 1.0);
            assert_eq!(t.collector(i).misreport(), 0);
        }
    }

    #[test]
    fn case1_decrements_forge() {
        let mut t = table();
        t.record_forgery(2);
        t.record_forgery(2);
        assert_eq!(t.collector(2).forge(), -2);
        assert_eq!(t.collector(1).forge(), 0);
    }

    #[test]
    fn case2_moves_misreport_both_ways() {
        let mut t = table();
        t.record_checked(&[(0, true), (1, false), (2, true)]);
        assert_eq!(t.collector(0).misreport(), 1);
        assert_eq!(t.collector(1).misreport(), -1);
        assert_eq!(t.collector(2).misreport(), 1);
        assert_eq!(t.collector(3).misreport(), 0);
    }

    #[test]
    fn case3_discounts_follow_prose_not_pseudocode() {
        let mut t = table();
        let out = t.record_revealed(&[
            RevealedReport {
                collector: 0,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Correct,
            },
            RevealedReport {
                collector: 1,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Wrong,
            },
            RevealedReport {
                collector: 2,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Missed,
            },
        ]);
        // Correct: unchanged. Wrong: ×γ. Missed: ×β.
        assert_eq!(t.weight(0, 0), 1.0);
        assert!((t.weight(1, 0) - out.gamma).abs() < 1e-12);
        assert!((t.weight(2, 0) - 0.9).abs() < 1e-12);
        // L = 2·1/(1+1) = 1 at equal weights.
        assert!((out.l_tx - 1.0).abs() < 1e-12);
        assert_eq!(out.w_right, 1.0);
        assert_eq!(out.w_wrong, 1.0);
    }

    #[test]
    fn case3_only_touches_named_slot() {
        let mut t = table();
        t.record_revealed(&[RevealedReport {
            collector: 0,
            provider_slot: 1,
            behaviour: RevealedBehaviour::Wrong,
        }]);
        assert_eq!(t.weight(0, 0), 1.0);
        assert!(t.weight(0, 1) < 1.0);
    }

    #[test]
    fn case3_gamma_uses_current_weights() {
        let mut t = table();
        // Degrade collector 1 first so its wrongness matters less.
        for _ in 0..10 {
            t.record_revealed(&[RevealedReport {
                collector: 1,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Wrong,
            }]);
        }
        let out = t.record_revealed(&[
            RevealedReport {
                collector: 0,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Correct,
            },
            RevealedReport {
                collector: 1,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Wrong,
            },
        ]);
        // w_wrong is tiny now, so L ≈ 0 and γ ≈ (β²+β)/2 path is possible;
        // in all cases L < 1 (the equal-weight value).
        assert!(out.l_tx < 1.0);
        assert!(out.w_wrong < out.w_right);
    }

    #[test]
    fn rejoin_bootstraps_from_prior_not_stale_score() {
        let mut t = table();
        // Build a terrible pre-departure history for collector 1.
        t.record_checked(&[(1, false), (1, false)]);
        for _ in 0..10 {
            t.record_revealed(&[RevealedReport {
                collector: 1,
                provider_slot: 0,
                behaviour: RevealedBehaviour::Wrong,
            }]);
        }
        assert!(t.weight(1, 0) < 0.5);
        assert_eq!(t.collector(1).misreport(), -2);

        // Leave + rejoin: the fresh vector carries the configured prior
        // everywhere and zeroed counters — no stale score survives.
        t.bootstrap_collector(1, 0.5);
        assert_eq!(t.weight(1, 0), 0.5);
        assert_eq!(t.weight(1, 1), 0.5);
        assert_eq!(t.collector(1).misreport(), 0);
        assert_eq!(t.collector(1).forge(), 0);
        // Untouched incumbents keep their state.
        assert_eq!(t.weight(0, 0), 1.0);
    }

    #[test]
    fn silence_decay_respects_table_floor() {
        let params = ReputationParams {
            weight_floor: 0.01,
            ..ReputationParams::default()
        };
        let mut t = ReputationTable::new(2, 2, params);
        for _ in 0..1_000 {
            t.decay_collector(0, 0.5);
        }
        for slot in 0..2 {
            let w = t.weight(0, slot);
            assert!(w.is_finite() && w >= 0.01, "weight {w} broke the floor");
        }
        // The silent collector decayed; the active one did not.
        assert_eq!(t.weight(1, 0), 1.0);
    }

    #[test]
    fn revenue_weights_reflect_history() {
        let mut t = table();
        t.record_checked(&[(0, true), (1, false)]);
        t.record_forgery(2);
        let logs = t.log_revenue_weights();
        assert!(logs[0] > logs[3]); // praised > neutral
        assert!(logs[1] < logs[3]); // misreporter < neutral
        assert!(logs[2] < logs[3]); // forger < neutral
    }
}

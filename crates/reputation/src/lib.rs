//! # prb-reputation
//!
//! The provable reputation mechanism from *"An Efficient Permissioned
//! Blockchain with Provable Reputation Mechanism"* (ICDCS 2021), isolated
//! from the networking and ledger layers so its learning-theoretic
//! guarantees are directly testable:
//!
//! - [`params`] — `β`, `f`, `μ`, `ν`, the `γ_tx` formula and the paper's
//!   admissibility chain `β² ≤ γ ≤ β ≤ ½(γ−1)L+1 ≤ 1`,
//! - [`vector`] — the `(s+2)`-entry reputation vector per collector,
//! - [`rwm`] — Randomized Weighted Majority with abstentions, the process
//!   behind Theorem 1's `L_T ≤ S^min_T + O(√T)` regret bound,
//! - [`screening`] — the weighted source draw and `1 − f·Pr` coin of
//!   Algorithm 2 plus the Lemma 2 skip-probability formula,
//! - [`update`] — Algorithm 3 (all three cases) over a governor's table,
//! - [`revenue`] — the `∏w · μ^mis · ν^forge` profit split of §3.4.3,
//! - [`transitive`] — advisory EigenTrust-style gossip blending: claims
//!   weighted by the reporter's own earned trust, for churn telemetry
//!   (E17).
//!
//! # Quickstart
//!
//! ```
//! use prb_reputation::params::ReputationParams;
//! use prb_reputation::rwm::{Advice, Rwm};
//! use rand::SeedableRng;
//!
//! // Three collectors watch one provider; the first is always right.
//! let mut rwm = Rwm::new(3, 0.9);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! for _ in 0..100 {
//!     rwm.round(&[Advice::Correct, Advice::Wrong, Advice::Abstain], &mut rng);
//! }
//! assert_eq!(rwm.best_expert_loss(), 0.0);
//! assert!(rwm.expected_loss() <= rwm.theorem_bound(100));
//! # let _ = ReputationParams::default();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod params;
pub mod revenue;
pub mod rwm;
pub mod screening;
pub mod transitive;
pub mod update;
pub mod vector;

pub use params::ReputationParams;
pub use transitive::TransitiveView;
pub use update::ReputationTable;
pub use vector::ReputationVector;

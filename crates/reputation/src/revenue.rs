//! Collector revenue distribution (§3.4.3).
//!
//! *"A constant proportion of the profit gained by executing these
//! transactions will be allotted to the collectors according to their
//! reputations. Concretely, collector `c_i`'s revenue would be in
//! proportion with `∏ w · μ^misreport · ν^forge`."*
//!
//! Shares are computed from log-space weights with a max-shift so that very
//! long histories (weights like `0.9^10000`) normalize without underflow.

/// Splits `total_profit` among collectors proportionally to their
/// (log-space) revenue weights.
///
/// Collectors whose weight collapsed to zero (`-∞` log weight) receive 0.
/// When *every* weight is `-∞` (or the list is empty) nobody is paid and
/// the profit is considered retained by the governors.
pub fn distribute(total_profit: f64, log_weights: &[f64]) -> Vec<f64> {
    let shares = shares(log_weights);
    shares.iter().map(|s| s * total_profit).collect()
}

/// Normalized shares (summing to 1 unless all weights are `-∞`).
pub fn shares(log_weights: &[f64]) -> Vec<f64> {
    let max = log_weights
        .iter()
        .copied()
        .filter(|w| w.is_finite())
        .fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return vec![0.0; log_weights.len()];
    }
    let exps: Vec<f64> = log_weights
        .iter()
        .map(|&w| if w.is_finite() { (w - max).exp() } else { 0.0 })
        .collect();
    let total: f64 = exps.iter().sum();
    exps.iter().map(|e| e / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn equal_weights_split_equally() {
        let out = distribute(100.0, &[0.0, 0.0, 0.0, 0.0]);
        for share in out {
            assert!((share - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_weight_earns_more() {
        let out = distribute(100.0, &[2f64.ln(), 0.0]);
        assert!((out[0] - 100.0 * 2.0 / 3.0).abs() < 1e-9);
        assert!((out[1] - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_collector_gets_nothing() {
        let out = distribute(60.0, &[0.0, f64::NEG_INFINITY, 0.0]);
        assert!((out[0] - 30.0).abs() < 1e-9);
        assert_eq!(out[1], 0.0);
        assert!((out[2] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn all_negative_infinity_pays_nobody() {
        let out = distribute(60.0, &[f64::NEG_INFINITY, f64::NEG_INFINITY]);
        assert_eq!(out, vec![0.0, 0.0]);
        assert!(shares(&[]).is_empty());
    }

    #[test]
    fn extreme_log_weights_are_stable() {
        // Weights like β^50_000 — direct exponentiation would underflow.
        let out = shares(&[-50_000.0, -50_001.0]);
        assert!(out[0] > out[1]);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(out.iter().all(|s| s.is_finite()));
    }

    proptest! {
        #[test]
        fn shares_sum_to_one_and_order_matches(
            logs in proptest::collection::vec(-100.0f64..100.0, 1..10)
        ) {
            let s = shares(&logs);
            prop_assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-6);
            for i in 0..logs.len() {
                for j in 0..logs.len() {
                    if logs[i] > logs[j] {
                        prop_assert!(s[i] >= s[j]);
                    }
                }
            }
        }
    }
}

//! The probabilistic core of Algorithm 2 (transaction screening).
//!
//! For a transaction reported by a set of collectors with per-provider
//! weights, the governor:
//!
//! 1. draws one reporter with probability proportional to its weight
//!    (`Pr = w / (W₊₁ + W₋₁)`),
//! 2. if the drawn label is `+1`, validates;
//! 3. if the drawn label is `-1`, validates with probability
//!    `1 − f · Pr_drawn` — i.e. skips with probability `f · Pr_drawn`.
//!
//! Lemma 2: the skip probability is `Σ_{-1 reporters} f·w²/W² ≤ f`.

use rand::Rng;

/// One collector's report of a transaction, as input to screening.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Report {
    /// Caller-side identifier (e.g. collector index); opaque here.
    pub collector: u32,
    /// Whether the collector labeled the transaction valid (`+1`).
    pub labeled_valid: bool,
    /// The collector's reputation weight w.r.t. the providing provider.
    pub weight: f64,
}

/// Outcome of one screening draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScreeningOutcome {
    /// Index into the report slice of the drawn collector.
    pub drawn: usize,
    /// The probability with which that collector was drawn.
    pub pr_drawn: f64,
    /// Whether the governor validates the transaction itself.
    pub check: bool,
}

/// Weight aggregates over one transaction's reports.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WeightSums {
    /// `W₊₁`: total weight of collectors that labeled valid.
    pub valid: f64,
    /// `W₋₁`: total weight of collectors that labeled invalid.
    pub invalid: f64,
}

impl WeightSums {
    /// Computes the aggregates for `reports`.
    pub fn of(reports: &[Report]) -> Self {
        let mut sums = WeightSums::default();
        for r in reports {
            if r.labeled_valid {
                sums.valid += r.weight;
            } else {
                sums.invalid += r.weight;
            }
        }
        sums
    }

    /// `W₊₁ + W₋₁`.
    pub fn total(&self) -> f64 {
        self.valid + self.invalid
    }
}

/// Performs the screening draw and coin toss of Algorithm 2.
///
/// When every reported weight is 0 (all reporters fully discredited) the
/// draw falls back to uniform over the reporters and the transaction is
/// always checked — trusting no one means verifying yourself.
///
/// Returns `None` when `reports` is empty.
pub fn screen<R: Rng + ?Sized>(
    reports: &[Report],
    f: f64,
    rng: &mut R,
) -> Option<ScreeningOutcome> {
    if reports.is_empty() {
        return None;
    }
    let sums = WeightSums::of(reports);
    let total = sums.total();
    let (drawn, pr_drawn) = if total <= 0.0 {
        (rng.gen_range(0..reports.len()), 0.0)
    } else {
        // Zero-weight reports must carry zero draw probability: a pick of
        // exactly 0.0 would otherwise land on the first report regardless
        // of its weight (`pick -= 0.0` keeps `pick ≤ 0`).
        let mut pick = rng.gen::<f64>() * total;
        let mut drawn = None;
        for (i, r) in reports.iter().enumerate() {
            if r.weight <= 0.0 {
                continue;
            }
            pick -= r.weight;
            if pick <= 0.0 {
                drawn = Some(i);
                break;
            }
        }
        // Float round-off can leave `pick` marginally positive: take the
        // last positively weighted report.
        let drawn = drawn.unwrap_or_else(|| {
            (0..reports.len())
                .rev()
                .find(|&i| reports[i].weight > 0.0)
                .expect("total > 0 implies a positively weighted report")
        });
        (drawn, reports[drawn].weight / total)
    };
    let check = if reports[drawn].labeled_valid || total <= 0.0 {
        true
    } else {
        // Validate with probability 1 − f·Pr.
        rng.gen::<f64>() >= f * pr_drawn
    };
    Some(ScreeningOutcome {
        drawn,
        pr_drawn,
        check,
    })
}

/// The exact probability that a transaction goes *unchecked* under the
/// screening rule: `Σ_{-1 reporters} f · w² / W²` (from the proof of
/// Lemma 2). Always ≤ `f`.
pub fn prob_unchecked(reports: &[Report], f: f64) -> f64 {
    let total = WeightSums::of(reports).total();
    if total <= 0.0 {
        return 0.0;
    }
    reports
        .iter()
        .filter(|r| !r.labeled_valid)
        .map(|r| f * (r.weight / total) * (r.weight / total))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn report(collector: u32, labeled_valid: bool, weight: f64) -> Report {
        Report {
            collector,
            labeled_valid,
            weight,
        }
    }

    #[test]
    fn empty_reports_yield_none() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(screen(&[], 0.5, &mut rng), None);
    }

    #[test]
    fn positive_label_always_checked() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let out = screen(&[report(0, true, 1.0)], 0.99, &mut rng).unwrap();
            assert!(out.check);
            assert_eq!(out.drawn, 0);
            assert!((out.pr_drawn - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_negative_reporter_skips_at_rate_f() {
        // One reporter labeled -1 with all the weight: Pr = 1, skip prob f.
        let mut rng = StdRng::seed_from_u64(3);
        let f = 0.6;
        let mut skipped = 0;
        let n = 20_000;
        for _ in 0..n {
            let out = screen(&[report(0, false, 1.0)], f, &mut rng).unwrap();
            if !out.check {
                skipped += 1;
            }
        }
        let rate = skipped as f64 / n as f64;
        assert!((rate - f).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn draw_is_weight_proportional() {
        let reports = [
            report(0, false, 3.0),
            report(1, false, 1.0),
            report(2, true, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[screen(&reports, 0.5, &mut rng).unwrap().drawn] += 1;
        }
        let p0 = counts[0] as f64 / 40_000.0;
        let p1 = counts[1] as f64 / 40_000.0;
        assert!((p0 - 0.75).abs() < 0.02, "p0 {p0}");
        assert!((p1 - 0.25).abs() < 0.02, "p1 {p1}");
        assert_eq!(counts[2], 0, "zero-weight reporter must never be drawn");
    }

    /// Deterministic stub: `gen::<f64>()` returns exactly 0.0, the draw
    /// value that used to land on the first report regardless of weight.
    struct ZeroRng;

    impl rand::RngCore for ZeroRng {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn zero_weight_first_reporter_is_never_drawn() {
        // Regression: with a leading zero-weight report, a pick of exactly
        // 0.0 must skip it and draw the positively weighted report.
        let reports = [report(0, false, 0.0), report(1, false, 1.0)];
        let out = screen(&reports, 0.5, &mut ZeroRng).unwrap();
        assert_eq!(out.drawn, 1);
        assert!((out.pr_drawn - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fallback_skips_trailing_zero_weight_reporter() {
        // Mirror image: the round-off fallback (pick ≈ total) must take the
        // last *positively weighted* report, not blindly the last report.
        let reports = [
            report(0, false, 2.0),
            report(1, true, 1.0),
            report(2, false, 0.0),
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5_000 {
            let out = screen(&reports, 0.5, &mut rng).unwrap();
            assert_ne!(out.drawn, 2, "zero-weight report drawn");
        }
    }

    #[test]
    fn zero_total_weight_falls_back_to_uniform_and_checks() {
        let reports = [report(0, false, 0.0), report(1, false, 0.0)];
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 2];
        for _ in 0..100 {
            let out = screen(&reports, 0.9, &mut rng).unwrap();
            assert!(out.check);
            seen[out.drawn] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn empirical_unchecked_rate_matches_formula() {
        let reports = [
            report(0, false, 2.0),
            report(1, false, 1.0),
            report(2, true, 1.0),
        ];
        let f = 0.8;
        let analytic = prob_unchecked(&reports, f);
        let mut rng = StdRng::seed_from_u64(6);
        let n = 60_000;
        let mut unchecked = 0;
        for _ in 0..n {
            if !screen(&reports, f, &mut rng).unwrap().check {
                unchecked += 1;
            }
        }
        let rate = unchecked as f64 / n as f64;
        assert!((rate - analytic).abs() < 0.01, "rate {rate} vs {analytic}");
    }

    #[test]
    fn weight_sums() {
        let sums = WeightSums::of(&[
            report(0, true, 2.0),
            report(1, false, 0.5),
            report(2, true, 1.0),
        ]);
        assert_eq!(sums.valid, 3.0);
        assert_eq!(sums.invalid, 0.5);
        assert_eq!(sums.total(), 3.5);
    }

    proptest! {
        /// Lemma 2: the unchecked probability never exceeds f.
        #[test]
        fn lemma2_unchecked_at_most_f(
            weights in proptest::collection::vec((any::<bool>(), 0.0f64..10.0), 1..12),
            f in 0.01f64..0.99,
        ) {
            let reports: Vec<Report> = weights
                .iter()
                .enumerate()
                .map(|(i, &(v, w))| report(i as u32, v, w))
                .collect();
            prop_assert!(prob_unchecked(&reports, f) <= f + 1e-12);
        }

        /// The screening draw always returns a reporter index in range and
        /// pr_drawn is a probability.
        #[test]
        fn outcome_well_formed(
            weights in proptest::collection::vec((any::<bool>(), 0.0f64..10.0), 1..12),
            f in 0.01f64..0.99,
            seed in any::<u64>(),
        ) {
            let reports: Vec<Report> = weights
                .iter()
                .enumerate()
                .map(|(i, &(v, w))| report(i as u32, v, w))
                .collect();
            let mut rng = StdRng::seed_from_u64(seed);
            let out = screen(&reports, f, &mut rng).unwrap();
            prop_assert!(out.drawn < reports.len());
            prop_assert!((0.0..=1.0).contains(&out.pr_drawn));
        }
    }
}

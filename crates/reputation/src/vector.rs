//! The `(s+2)`-dimensional reputation vector a governor keeps per collector.
//!
//! §3.4: `~r_{j,i} = (w_{j,i,k_{i,1}}, …, w_{j,i,k_{i,s}}, w_misreport,
//! w_forge)`. The first `s` entries are multiplicative weights — one per
//! provider the collector oversees — governing source selection on
//! *unchecked* transactions. The `(s+1)`-th entry counts behaviour on
//! *checked* transactions (±1 per outcome) and the last counts forgery
//! attempts (−1 each). The two counters feed the revenue product
//! `∏ w · μ^misreport · ν^forge` (§3.4.3).

use std::fmt;

/// Reputation state for one collector, as seen by one governor.
#[derive(Clone, Debug, PartialEq)]
pub struct ReputationVector {
    per_provider: Vec<f64>,
    misreport: i64,
    forge: i64,
}

impl ReputationVector {
    /// A fresh vector for a collector overseeing `s` providers: all
    /// per-provider weights start at 1, counters at 0.
    pub fn new(s: usize) -> Self {
        ReputationVector {
            per_provider: vec![1.0; s],
            misreport: 0,
            forge: 0,
        }
    }

    /// A newcomer's vector: all per-provider weights start at `prior`
    /// (the configurable bootstrap reputation for members admitted under
    /// churn, E17), counters at 0.
    ///
    /// # Panics
    ///
    /// Panics if `prior` is not a finite value in `(0, 1]` — a newcomer
    /// may not start above the incumbent maximum.
    pub fn with_prior(s: usize, prior: f64) -> Self {
        assert!(
            prior.is_finite() && prior > 0.0 && prior <= 1.0,
            "bootstrap prior must be in (0,1], got {prior}"
        );
        ReputationVector {
            per_provider: vec![prior; s],
            misreport: 0,
            forge: 0,
        }
    }

    /// Multiplies every per-provider weight by `factor`, never dropping
    /// below `floor` — the silence decay for members that stop uploading
    /// (E17). Counters are untouched: decay models staleness of the
    /// screening weights, not checked-transaction behaviour.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]` or `floor` is negative or
    /// not finite (either could mint negative/NaN screening weights).
    pub fn decay(&mut self, factor: f64, floor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "decay factor must be in (0,1], got {factor}"
        );
        assert!(
            floor.is_finite() && floor >= 0.0,
            "decay floor must be finite and non-negative, got {floor}"
        );
        for w in &mut self.per_provider {
            *w = (*w * factor).max(floor);
        }
    }

    /// Restores a vector from snapshot parts (checkpoint state-sync).
    pub fn from_parts(per_provider: Vec<f64>, misreport: i64, forge: i64) -> Self {
        ReputationVector {
            per_provider,
            misreport,
            forge,
        }
    }

    /// Number of provider slots (`s`).
    pub fn provider_slots(&self) -> usize {
        self.per_provider.len()
    }

    /// The weight for provider slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn weight(&self, slot: usize) -> f64 {
        self.per_provider[slot]
    }

    /// All per-provider weights.
    pub fn weights(&self) -> &[f64] {
        &self.per_provider
    }

    /// Multiplies the weight of `slot` by `factor` (a `γ_tx` or `β`
    /// discount from Algorithm 3, case 3).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `factor` is not in `(0, 1]`.
    pub fn discount(&mut self, slot: usize, factor: f64) {
        self.discount_floored(slot, factor, 0.0);
    }

    /// Like [`discount`](Self::discount) but never drops below `floor`
    /// (the forgiveness extension; `floor = 0` is the paper's rule).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range or `factor` is not in `(0, 1]`.
    pub fn discount_floored(&mut self, slot: usize, factor: f64, floor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "discount factor must be in (0,1], got {factor}"
        );
        self.per_provider[slot] = (self.per_provider[slot] * factor).max(floor);
    }

    /// The misreport counter (checked-transaction behaviour).
    pub fn misreport(&self) -> i64 {
        self.misreport
    }

    /// The forge counter (≤ 0 in honest operation).
    pub fn forge(&self) -> i64 {
        self.forge
    }

    /// Algorithm 3 case 2: +1 when the collector's label matched the
    /// checked outcome, −1 when it was opposite.
    pub fn record_checked(&mut self, correct: bool) {
        self.misreport += if correct { 1 } else { -1 };
    }

    /// Algorithm 3 case 1: a forged/illegal signature costs 1.
    pub fn record_forgery(&mut self) {
        self.forge -= 1;
    }

    /// Natural log of the revenue weight
    /// `∏_u w_u · μ^misreport · ν^forge` (§3.4.3, computed in log space so
    /// long histories neither overflow nor underflow).
    ///
    /// Returns `f64::NEG_INFINITY` when any per-provider weight reached 0.
    pub fn log_revenue_weight(&self, mu: f64, nu: f64) -> f64 {
        let mut log = 0.0;
        for &w in &self.per_provider {
            if w <= 0.0 {
                return f64::NEG_INFINITY;
            }
            log += w.ln();
        }
        log + self.misreport as f64 * mu.ln() + self.forge as f64 * nu.ln()
    }

    /// The revenue weight itself; may underflow to 0 for terrible histories
    /// (prefer [`log_revenue_weight`](Self::log_revenue_weight) for
    /// comparisons).
    pub fn revenue_weight(&self, mu: f64, nu: f64) -> f64 {
        self.log_revenue_weight(mu, nu).exp()
    }
}

impl fmt::Display for ReputationVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, w) in self.per_provider.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{w:.4}")?;
        }
        write!(f, " | mis={} forge={})", self.misreport, self.forge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_vector_is_all_ones() {
        let v = ReputationVector::new(3);
        assert_eq!(v.weights(), &[1.0, 1.0, 1.0]);
        assert_eq!(v.misreport(), 0);
        assert_eq!(v.forge(), 0);
        assert_eq!(v.provider_slots(), 3);
    }

    #[test]
    fn discounts_compound() {
        let mut v = ReputationVector::new(2);
        v.discount(0, 0.9);
        v.discount(0, 0.9);
        assert!((v.weight(0) - 0.81).abs() < 1e-12);
        assert_eq!(v.weight(1), 1.0);
    }

    #[test]
    #[should_panic(expected = "discount factor")]
    fn zero_discount_rejected() {
        ReputationVector::new(1).discount(0, 0.0);
    }

    #[test]
    #[should_panic(expected = "discount factor")]
    fn amplifying_discount_rejected() {
        ReputationVector::new(1).discount(0, 1.5);
    }

    #[test]
    fn counters_move_correctly() {
        let mut v = ReputationVector::new(1);
        v.record_checked(true);
        v.record_checked(true);
        v.record_checked(false);
        assert_eq!(v.misreport(), 1);
        v.record_forgery();
        assert_eq!(v.forge(), -1);
    }

    #[test]
    fn revenue_ordering_matches_behaviour() {
        let mu = 2.0;
        let nu = 3.0;
        let honest = {
            let mut v = ReputationVector::new(2);
            v.record_checked(true);
            v.record_checked(true);
            v
        };
        let misreporter = {
            let mut v = ReputationVector::new(2);
            v.record_checked(false);
            v.record_checked(false);
            v
        };
        let forger = {
            let mut v = ReputationVector::new(2);
            v.record_checked(true);
            v.record_checked(true);
            v.record_forgery();
            v
        };
        let discounted = {
            let mut v = ReputationVector::new(2);
            v.record_checked(true);
            v.record_checked(true);
            v.discount(0, 0.5);
            v
        };
        let h = honest.log_revenue_weight(mu, nu);
        assert!(h > misreporter.log_revenue_weight(mu, nu));
        assert!(h > forger.log_revenue_weight(mu, nu));
        assert!(h > discounted.log_revenue_weight(mu, nu));
    }

    #[test]
    fn log_revenue_matches_direct_product_when_small() {
        let mut v = ReputationVector::new(2);
        v.discount(0, 0.5);
        v.record_checked(true);
        v.record_forgery();
        // Product = 0.5 * 1 * 2^1 * 3^-1.
        let direct: f64 = 0.5 * 2.0 / 3.0;
        assert!((v.revenue_weight(2.0, 3.0) - direct).abs() < 1e-12);
        assert!((v.log_revenue_weight(2.0, 3.0) - direct.ln()).abs() < 1e-12);
    }

    #[test]
    fn prior_vector_starts_at_prior_with_zero_counters() {
        let v = ReputationVector::with_prior(3, 0.25);
        assert_eq!(v.weights(), &[0.25, 0.25, 0.25]);
        assert_eq!(v.misreport(), 0);
        assert_eq!(v.forge(), 0);
    }

    #[test]
    #[should_panic(expected = "bootstrap prior")]
    fn zero_prior_rejected() {
        ReputationVector::with_prior(1, 0.0);
    }

    #[test]
    #[should_panic(expected = "bootstrap prior")]
    fn superunit_prior_rejected() {
        ReputationVector::with_prior(1, 1.5);
    }

    #[test]
    #[should_panic(expected = "bootstrap prior")]
    fn nan_prior_rejected() {
        ReputationVector::with_prior(1, f64::NAN);
    }

    #[test]
    fn zero_interaction_decay_stops_at_floor() {
        // A collector that never interacts again decays towards the
        // floor but never through it, no matter how many silent rounds.
        let mut v = ReputationVector::new(2);
        for _ in 0..10_000 {
            v.decay(0.5, 1e-6);
        }
        for &w in v.weights() {
            assert!((w - 1e-6).abs() < 1e-18, "weight {w} left the floor");
        }
    }

    #[test]
    #[should_panic(expected = "decay floor")]
    fn negative_decay_floor_rejected() {
        ReputationVector::new(1).decay(0.9, -0.1);
    }

    #[test]
    #[should_panic(expected = "decay factor")]
    fn amplifying_decay_rejected() {
        ReputationVector::new(1).decay(1.1, 0.0);
    }

    #[test]
    fn display_renders() {
        let v = ReputationVector::new(2);
        assert!(v.to_string().contains("mis=0"));
    }

    proptest! {
        /// Weights only decrease under discounts and stay positive.
        #[test]
        fn weights_monotone_nonincreasing(factors in proptest::collection::vec(0.01f64..=1.0, 1..50)) {
            let mut v = ReputationVector::new(1);
            let mut prev = v.weight(0);
            for f in factors {
                v.discount(0, f);
                prop_assert!(v.weight(0) <= prev + 1e-15);
                prop_assert!(v.weight(0) > 0.0);
                prev = v.weight(0);
            }
        }

        /// Decay never produces a negative or NaN screening weight, for
        /// any admissible factor/floor sequence and starting prior.
        #[test]
        fn decay_weights_stay_finite_nonnegative(
            prior in 0.001f64..=1.0,
            steps in proptest::collection::vec((0.01f64..=1.0, 0.0f64..=0.5), 1..60),
        ) {
            let mut v = ReputationVector::with_prior(2, prior);
            for (factor, floor) in steps {
                v.decay(factor, floor);
                for &w in v.weights() {
                    prop_assert!(w.is_finite(), "weight went non-finite");
                    prop_assert!(w >= 0.0, "weight went negative: {w}");
                    prop_assert!(w >= floor - 1e-15, "weight fell through the floor");
                }
            }
        }

        /// Log-revenue is strictly monotone in the counters.
        #[test]
        fn revenue_monotone_in_counters(mis in -20i64..20, forge in -20i64..0) {
            let mut v = ReputationVector::new(1);
            for _ in 0..mis.abs() {
                v.record_checked(mis > 0);
            }
            for _ in 0..forge.abs() {
                v.record_forgery();
            }
            let base = v.log_revenue_weight(2.0, 2.0);
            v.record_checked(true);
            prop_assert!(v.log_revenue_weight(2.0, 2.0) > base);
            v.record_forgery();
            v.record_forgery();
            prop_assert!(v.log_revenue_weight(2.0, 2.0) < base);
        }
    }
}

//! EigenTrust-style transitive reputation over gossiped claims (E17).
//!
//! Under churn a governor also hears *claims* about collector quality
//! from its peers. Taking such claims at face value is a collusion
//! vector: a clique of fresh joiners could vouch each other up. The
//! EigenTrust insight is to weight each incoming claim by the
//! *reporter's own* standing, and to earn that standing by agreeing
//! with the local first-hand view over time.
//!
//! This layer is **advisory only**: it never feeds the screening draw,
//! the revenue split, or any consensus-critical path, so it cannot
//! perturb the Theorem 1 regret bound or two-run determinism. It exists
//! so operators (and E17's telemetry) can compare first-hand and
//! gossip-blended views and flag diverging reporters.

use std::collections::BTreeMap;
use std::fmt;

/// Default trust assigned to a reporter never heard from before.
pub const DEFAULT_REPORTER_TRUST: f64 = 0.5;

/// A governor's transitive (gossip-blended) view of collector quality.
///
/// Opinions and reporter trust both live in `[0, 1]`. Reporters are
/// keyed by an opaque `u32` id (their net/committee index) in a
/// `BTreeMap` so iteration — and therefore any derived output — is
/// deterministic.
#[derive(Clone, PartialEq)]
pub struct TransitiveView {
    opinion: Vec<f64>,
    trust: BTreeMap<u32, f64>,
    alpha: f64,
    merged: u64,
    rejected: u64,
}

impl fmt::Debug for TransitiveView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitiveView")
            .field("collectors", &self.opinion.len())
            .field("reporters", &self.trust.len())
            .field("alpha", &self.alpha)
            .field("merged", &self.merged)
            .field("rejected", &self.rejected)
            .finish()
    }
}

impl TransitiveView {
    /// A view over `collectors` collectors, every opinion starting at
    /// `prior` and blend rate `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `prior` is outside `[0, 1]` or `alpha` outside `(0, 1]`.
    pub fn new(collectors: usize, prior: f64, alpha: f64) -> Self {
        assert!(
            prior.is_finite() && (0.0..=1.0).contains(&prior),
            "opinion prior must be in [0,1], got {prior}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0 && alpha <= 1.0,
            "blend rate must be in (0,1], got {alpha}"
        );
        TransitiveView {
            opinion: vec![prior; collectors],
            trust: BTreeMap::new(),
            alpha,
            merged: 0,
            rejected: 0,
        }
    }

    /// Current trust in `reporter` (the default for strangers).
    pub fn trust(&self, reporter: u32) -> f64 {
        self.trust
            .get(&reporter)
            .copied()
            .unwrap_or(DEFAULT_REPORTER_TRUST)
    }

    /// The blended opinion of collector `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn opinion(&self, c: usize) -> f64 {
        self.opinion[c]
    }

    /// All blended opinions.
    pub fn opinions(&self) -> &[f64] {
        &self.opinion
    }

    /// Claims merged / rejected so far (for `member.*` telemetry).
    pub fn stats(&self) -> (u64, u64) {
        (self.merged, self.rejected)
    }

    /// Merges one gossiped claim vector from `reporter`, weighting it
    /// by the reporter's current trust and then re-scoring that trust
    /// by how well the claim agreed with the governor's first-hand
    /// `local` view.
    ///
    /// Per collector `c`: `opinion[c] ← (1 − α·t)·opinion[c] + α·t·claim[c]`
    /// with `t` the reporter's trust — a stranger (t = 0.5) moves the
    /// needle half as fast as a fully trusted peer, a fully distrusted
    /// one not at all. Trust then updates towards `1 − d` where `d` is
    /// the mean absolute disagreement with `local`.
    ///
    /// Returns `false` (and counts a rejection, leaving all state
    /// untouched) when the claim is malformed: wrong length, or any
    /// entry non-finite or outside `[0, 1]`.
    pub fn merge_claim(&mut self, reporter: u32, claim: &[f64], local: &[f64]) -> bool {
        let well_formed = claim.len() == self.opinion.len()
            && local.len() == self.opinion.len()
            && claim
                .iter()
                .chain(local)
                .all(|w| w.is_finite() && (0.0..=1.0).contains(w));
        if !well_formed {
            self.rejected += 1;
            return false;
        }
        let t = self.trust(reporter);
        let gain = self.alpha * t;
        for (o, &c) in self.opinion.iter_mut().zip(claim) {
            *o = (1.0 - gain) * *o + gain * c;
        }
        let disagreement = claim
            .iter()
            .zip(local)
            .map(|(c, l)| (c - l).abs())
            .sum::<f64>()
            / claim.len().max(1) as f64;
        let entry = self.trust.entry(reporter).or_insert(DEFAULT_REPORTER_TRUST);
        *entry = ((1.0 - self.alpha) * *entry + self.alpha * (1.0 - disagreement)).clamp(0.0, 1.0);
        self.merged += 1;
        true
    }

    /// Forgets a departed reporter entirely: its trust no longer
    /// occupies state, and on rejoin it starts from the stranger
    /// default rather than any pre-departure standing.
    pub fn purge_reporter(&mut self, reporter: u32) {
        self.trust.remove(&reporter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strangers_start_at_default_trust_and_prior_opinion() {
        let v = TransitiveView::new(3, 0.5, 0.2);
        assert_eq!(v.trust(7), DEFAULT_REPORTER_TRUST);
        assert_eq!(v.opinions(), &[0.5, 0.5, 0.5]);
    }

    #[test]
    fn agreement_raises_trust_and_disagreement_lowers_it() {
        let mut v = TransitiveView::new(2, 0.5, 0.3);
        let local = [0.9, 0.1];
        for _ in 0..10 {
            assert!(v.merge_claim(1, &[0.9, 0.1], &local));
            assert!(v.merge_claim(2, &[0.1, 0.9], &local));
        }
        assert!(v.trust(1) > 0.9, "agreeing reporter trust {}", v.trust(1));
        assert!(
            v.trust(2) < DEFAULT_REPORTER_TRUST,
            "disagreeing reporter trust {}",
            v.trust(2)
        );
    }

    #[test]
    fn trusted_reporters_move_opinions_more() {
        let local = [0.5];
        let mut trusted = TransitiveView::new(1, 0.5, 0.3);
        for _ in 0..10 {
            trusted.merge_claim(1, &[0.5], &local); // earn trust
        }
        let mut stranger = TransitiveView::new(1, 0.5, 0.3);
        trusted.merge_claim(1, &[1.0], &local);
        stranger.merge_claim(2, &[1.0], &local);
        assert!(
            trusted.opinion(0) > stranger.opinion(0),
            "trusted {} vs stranger {}",
            trusted.opinion(0),
            stranger.opinion(0)
        );
    }

    #[test]
    fn malformed_claims_are_rejected_without_side_effects() {
        let mut v = TransitiveView::new(2, 0.5, 0.2);
        let local = [0.5, 0.5];
        assert!(!v.merge_claim(1, &[0.5], &local)); // wrong length
        assert!(!v.merge_claim(1, &[f64::NAN, 0.5], &local));
        assert!(!v.merge_claim(1, &[1.5, 0.5], &local));
        assert!(!v.merge_claim(1, &[-0.1, 0.5], &local));
        assert_eq!(v.opinions(), &[0.5, 0.5]);
        assert_eq!(v.trust(1), DEFAULT_REPORTER_TRUST);
        assert_eq!(v.stats(), (0, 4));
    }

    #[test]
    fn trust_stays_in_unit_interval() {
        let mut v = TransitiveView::new(1, 0.5, 1.0);
        let local = [1.0];
        for _ in 0..50 {
            v.merge_claim(1, &[1.0], &local);
        }
        assert!(v.trust(1) <= 1.0);
        for _ in 0..50 {
            v.merge_claim(1, &[0.0], &local);
        }
        assert!(v.trust(1) >= 0.0);
    }

    #[test]
    fn purged_reporter_rejoins_as_stranger() {
        let mut v = TransitiveView::new(1, 0.5, 0.3);
        let local = [0.9];
        for _ in 0..10 {
            v.merge_claim(3, &[0.9], &local);
        }
        assert!(v.trust(3) > 0.9);
        v.purge_reporter(3);
        assert_eq!(v.trust(3), DEFAULT_REPORTER_TRUST);
    }
}

//! Randomized Weighted Majority with abstentions — the learning-theoretic
//! core of Theorem 1.
//!
//! Theorem 1 is *"an extension of the result for the Randomized Weighted
//! Majority algorithm in the problem of learning with expert advice"*: the
//! collectors overseeing one provider are the experts, their labels are the
//! predictions, a missed upload is an abstention, and the governor is the
//! learner. Per revealed transaction `t`:
//!
//! - experts that judged correctly keep their weight,
//! - experts that abstained are discounted by `β`,
//! - experts that judged wrongly are discounted by `γ_t` (see
//!   [`crate::params::gamma_tx`]),
//! - the learner's expected loss is `L_t = 2·W_wrong / (W_right + W_wrong)`.
//!
//! Expert losses are 2 per wrong judgment and 1 per abstention (so that
//! `w_min ≥ β^{S_min}`, the potential bound in the proof). The regret bound
//! is `L_T ≤ S^min_T + O(√T)`.
//!
//! This module exists separately from the full protocol so experiment E1
//! can compare the protocol's measured regret against the clean
//! learning-theoretic process, and so the bound itself is unit-testable.

use rand::Rng;

use crate::params::{gamma_tx, loss_ltx};

/// Which discount `γ_t` the learner applies to wrong experts (ablation A2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GammaMode {
    /// The paper's `max{(β−1)/L + (β+1)/2, (β²+β)/2}`.
    #[default]
    PaperMax,
    /// The naive alternative `γ = β` (admissible: it satisfies the
    /// inequality chain for every `L ≤ 2`, but discounts wrong experts no
    /// harder than abstainers).
    FixedBeta,
}

/// What an expert (collector) did for one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Advice {
    /// Judged correctly (label matched the revealed truth).
    Correct,
    /// Judged incorrectly.
    Wrong,
    /// Did not report (missed/discarded the transaction).
    Abstain,
}

/// The Randomized Weighted Majority learner.
#[derive(Clone, Debug)]
pub struct Rwm {
    weights: Vec<f64>,
    beta: f64,
    gamma_mode: GammaMode,
    expected_loss: f64,
    realized_loss: f64,
    expert_loss: Vec<f64>,
    rounds: u64,
}

impl Rwm {
    /// A learner over `experts` experts with discount base `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `experts ≥ 1` and `beta ∈ (0, 1)`.
    pub fn new(experts: usize, beta: f64) -> Self {
        assert!(experts >= 1, "need at least one expert");
        assert!(beta > 0.0 && beta < 1.0, "beta must be in (0,1)");
        Rwm {
            weights: vec![1.0; experts],
            beta,
            gamma_mode: GammaMode::PaperMax,
            expected_loss: 0.0,
            realized_loss: 0.0,
            expert_loss: vec![0.0; experts],
            rounds: 0,
        }
    }

    /// Selects the `γ_t` formula (ablation hook); defaults to the paper's.
    pub fn set_gamma_mode(&mut self, mode: GammaMode) {
        self.gamma_mode = mode;
    }

    /// Number of experts.
    pub fn expert_count(&self) -> usize {
        self.weights.len()
    }

    /// Current weight of expert `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn weight(&self, i: usize) -> f64 {
        self.weights[i]
    }

    /// Sum of all weights (the potential `W_t`).
    pub fn potential(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Processes one revealed transaction.
    ///
    /// `advice[i]` is what expert `i` did; `rng` drives the learner's
    /// randomized pick among the non-abstaining experts (weight-
    /// proportional), which accrues *realized* loss: 2 when the picked
    /// expert was wrong. Expected loss accrues `L_t` regardless of the
    /// draw. Returns the index of the picked expert, or `None` when every
    /// expert abstained (no loss accrues; weights untouched, matching the
    /// protocol where an unreported transaction never reaches a governor).
    ///
    /// # Panics
    ///
    /// Panics if `advice.len()` differs from the expert count.
    pub fn round<R: Rng + ?Sized>(&mut self, advice: &[Advice], rng: &mut R) -> Option<usize> {
        assert_eq!(advice.len(), self.weights.len(), "advice length mismatch");
        let mut w_right = 0.0;
        let mut w_wrong = 0.0;
        for (i, a) in advice.iter().enumerate() {
            match a {
                Advice::Correct => w_right += self.weights[i],
                Advice::Wrong => w_wrong += self.weights[i],
                Advice::Abstain => {}
            }
        }
        let reporting_total = w_right + w_wrong;
        if reporting_total <= 0.0 {
            return None;
        }
        self.rounds += 1;

        // Learner's expected loss for this transaction.
        let l_t = loss_ltx(w_right, w_wrong);
        self.expected_loss += l_t;

        // Weight-proportional draw among reporters (the screening draw).
        // Zero-weight reporters (multiplicative underflow after enough
        // discounting) must carry zero probability, so they are skipped:
        // a draw of exactly 0.0 would otherwise land on the first reporter
        // regardless of its weight, since `pick -= 0.0` keeps `pick ≤ 0`.
        let mut pick = rng.gen::<f64>() * reporting_total;
        let mut picked = None;
        for (i, a) in advice.iter().enumerate() {
            if matches!(a, Advice::Abstain) || self.weights[i] <= 0.0 {
                continue;
            }
            pick -= self.weights[i];
            if pick <= 0.0 {
                picked = Some(i);
                break;
            }
        }
        // Float round-off can leave `pick` marginally positive: take the
        // last positively weighted reporter.
        let picked = picked.unwrap_or_else(|| {
            (0..advice.len())
                .rev()
                .find(|&i| !matches!(advice[i], Advice::Abstain) && self.weights[i] > 0.0)
                .expect("reporting_total > 0 implies a positively weighted reporter")
        });
        if matches!(advice[picked], Advice::Wrong) {
            self.realized_loss += 2.0;
        }

        // Multiplicative updates + expert loss accounting.
        let gamma = match self.gamma_mode {
            GammaMode::PaperMax => gamma_tx(self.beta, l_t),
            GammaMode::FixedBeta => self.beta,
        };
        for (i, a) in advice.iter().enumerate() {
            match a {
                Advice::Correct => {}
                Advice::Wrong => {
                    self.weights[i] *= gamma;
                    self.expert_loss[i] += 2.0;
                }
                Advice::Abstain => {
                    self.weights[i] *= self.beta;
                    self.expert_loss[i] += 1.0;
                }
            }
        }
        Some(picked)
    }

    /// Cumulative expected learner loss `L_T`.
    pub fn expected_loss(&self) -> f64 {
        self.expected_loss
    }

    /// Cumulative realized (sampled) learner loss.
    pub fn realized_loss(&self) -> f64 {
        self.realized_loss
    }

    /// Cumulative loss of expert `i` (2 per wrong, 1 per abstention).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn expert_loss(&self, i: usize) -> f64 {
        self.expert_loss[i]
    }

    /// Loss of the best expert, `S^min_T`.
    pub fn best_expert_loss(&self) -> f64 {
        self.expert_loss
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// The learner's regret `L_T − S^min_T`.
    pub fn regret(&self) -> f64 {
        self.expected_loss - self.best_expert_loss()
    }

    /// Rounds processed (excluding all-abstain rounds).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The closed-form bound from the proof of Theorem 1:
    /// `L_T ≤ S^min + 2·(ln r / (1−β) + 16·(1−β)·T)` for `β ∈ [0.1, 0.9]`.
    pub fn theorem_bound(&self, t: u64) -> f64 {
        let r = self.weights.len() as f64;
        self.best_expert_loss()
            + 2.0 * (r.ln() / (1.0 - self.beta) + 16.0 * (1.0 - self.beta) * t as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_expert_keeps_weight() {
        let mut rwm = Rwm::new(3, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            rwm.round(&[Advice::Correct, Advice::Wrong, Advice::Abstain], &mut rng);
        }
        assert_eq!(rwm.weight(0), 1.0);
        assert!(rwm.weight(1) < rwm.weight(0));
        assert!(rwm.weight(2) < rwm.weight(0));
        // Wrong (γ ≤ β per round) decays at least as fast as abstain (β).
        assert!(rwm.weight(1) <= rwm.weight(2) + 1e-12);
        assert_eq!(rwm.best_expert_loss(), 0.0);
        assert_eq!(rwm.rounds(), 50);
    }

    #[test]
    fn expected_loss_vanishes_with_perfect_majority() {
        let mut rwm = Rwm::new(2, 0.9);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            rwm.round(&[Advice::Correct, Advice::Correct], &mut rng);
        }
        assert_eq!(rwm.expected_loss(), 0.0);
        assert_eq!(rwm.realized_loss(), 0.0);
    }

    #[test]
    fn all_abstain_rounds_are_skipped() {
        let mut rwm = Rwm::new(2, 0.9);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            rwm.round(&[Advice::Abstain, Advice::Abstain], &mut rng),
            None
        );
        assert_eq!(rwm.rounds(), 0);
        assert_eq!(rwm.potential(), 2.0);
    }

    #[test]
    fn expected_loss_formula_single_round() {
        let mut rwm = Rwm::new(2, 0.9);
        let mut rng = StdRng::seed_from_u64(4);
        // Equal weights, one right one wrong: L = 2·1/(1+1) = 1.
        rwm.round(&[Advice::Correct, Advice::Wrong], &mut rng);
        assert!((rwm.expected_loss() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn picked_expert_is_never_an_abstainer() {
        let mut rwm = Rwm::new(3, 0.5);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let picked = rwm
                .round(&[Advice::Abstain, Advice::Wrong, Advice::Abstain], &mut rng)
                .unwrap();
            assert_eq!(picked, 1);
        }
    }

    #[test]
    fn regret_within_theorem_bound_adversarial_mix() {
        // One honest expert, seven noisy ones with varying error rates.
        let t = 2000u64;
        let r = 8;
        let beta = crate::params::ReputationParams::theorem_beta(r, t);
        let mut rwm = Rwm::new(r, beta);
        let mut rng = StdRng::seed_from_u64(6);
        let mut advice_rng = StdRng::seed_from_u64(7);
        use rand::Rng as _;
        for _ in 0..t {
            let advice: Vec<Advice> = (0..r)
                .map(|i| {
                    if i == 0 {
                        Advice::Correct
                    } else {
                        let p = 0.2 + 0.1 * i as f64 / r as f64;
                        if advice_rng.gen::<f64>() < p {
                            Advice::Wrong
                        } else {
                            Advice::Correct
                        }
                    }
                })
                .collect();
            rwm.round(&advice, &mut rng);
        }
        assert_eq!(rwm.best_expert_loss(), 0.0);
        assert!(rwm.expected_loss() <= rwm.theorem_bound(t));
        // The constant-free shape check: regret well below T.
        assert!(rwm.regret() < t as f64 / 4.0, "regret {}", rwm.regret());
    }

    #[test]
    fn regret_grows_sublinearly() {
        // Measure regret at two horizons; the ratio should be far below the
        // horizon ratio (≈ √ for the theory, allow generous slack).
        let run = |t: u64| {
            let beta = crate::params::ReputationParams::theorem_beta(4, t);
            let mut rwm = Rwm::new(4, beta);
            let mut rng = StdRng::seed_from_u64(8);
            let mut advice_rng = StdRng::seed_from_u64(9);
            use rand::Rng as _;
            for _ in 0..t {
                let advice: Vec<Advice> = (0..4)
                    .map(|i| {
                        if i == 0 {
                            Advice::Correct
                        } else if advice_rng.gen::<f64>() < 0.5 {
                            Advice::Wrong
                        } else {
                            Advice::Correct
                        }
                    })
                    .collect();
                rwm.round(&advice, &mut rng);
            }
            rwm.regret()
        };
        let r1 = run(500);
        let r2 = run(8000);
        // 16× horizon → regret should grow ≲ 4–6×, not 16×.
        assert!(r2 < r1 * 8.0, "r1={r1} r2={r2}");
    }

    #[test]
    fn realized_tracks_expected() {
        let mut rwm = Rwm::new(4, 0.9);
        let mut rng = StdRng::seed_from_u64(10);
        let mut advice_rng = StdRng::seed_from_u64(11);
        use rand::Rng as _;
        for _ in 0..3000 {
            let advice: Vec<Advice> = (0..4)
                .map(|_| {
                    if advice_rng.gen::<f64>() < 0.3 {
                        Advice::Wrong
                    } else {
                        Advice::Correct
                    }
                })
                .collect();
            rwm.round(&advice, &mut rng);
        }
        let ratio = rwm.realized_loss() / rwm.expected_loss();
        assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fixed_beta_gamma_mode_discounts_like_abstain() {
        let mut rwm = Rwm::new(2, 0.9);
        rwm.set_gamma_mode(GammaMode::FixedBeta);
        let mut rng = StdRng::seed_from_u64(12);
        rwm.round(&[Advice::Correct, Advice::Wrong], &mut rng);
        assert!((rwm.weight(1) - 0.9).abs() < 1e-12);
    }

    /// Deterministic RNG whose `gen::<f64>()` is exactly 0.0 — the
    /// adversarial draw for the zero-weight regression below.
    struct ZeroRng;

    impl rand::RngCore for ZeroRng {
        fn next_u64(&mut self) -> u64 {
            0
        }
    }

    #[test]
    fn zero_weight_reporter_is_never_drawn() {
        // Expert 0 answers Wrong until multiplicative discounting
        // underflows its weight to exactly 0.0 (FixedBeta keeps γ = β, so
        // 0.01^k hits the subnormal floor fast). Expert 1 stays perfect.
        let mut rwm = Rwm::new(2, 0.01);
        rwm.set_gamma_mode(GammaMode::FixedBeta);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..300 {
            rwm.round(&[Advice::Wrong, Advice::Correct], &mut rng);
        }
        assert_eq!(rwm.weight(0), 0.0, "weight must have underflowed");
        assert_eq!(rwm.weight(1), 1.0);
        // A draw of exactly 0.0 used to land on the zero-weight reporter
        // (`pick -= 0.0` leaves `pick ≤ 0` immediately); it must now pick
        // the only positively weighted one.
        let realized_before = rwm.realized_loss();
        let picked = rwm.round(&[Advice::Wrong, Advice::Correct], &mut ZeroRng);
        assert_eq!(picked, Some(1));
        assert_eq!(rwm.realized_loss(), realized_before);
    }

    #[test]
    fn rposition_fallback_skips_trailing_zero_weight_reporter() {
        // Mirror image: the LAST reporter is the zero-weight one, so the
        // round-off fallback path (draw ≈ reporting_total) must also skip
        // it rather than blindly taking the last non-abstainer.
        let mut rwm = Rwm::new(2, 0.01);
        rwm.set_gamma_mode(GammaMode::FixedBeta);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..300 {
            rwm.round(&[Advice::Correct, Advice::Wrong], &mut rng);
        }
        assert_eq!(rwm.weight(1), 0.0);
        for _ in 0..50 {
            let picked = rwm.round(&[Advice::Correct, Advice::Wrong], &mut rng);
            assert_eq!(picked, Some(0));
        }
    }

    #[test]
    #[should_panic(expected = "advice length")]
    fn mismatched_advice_panics() {
        let mut rwm = Rwm::new(2, 0.9);
        let mut rng = StdRng::seed_from_u64(1);
        rwm.round(&[Advice::Correct], &mut rng);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn invalid_beta_panics() {
        Rwm::new(2, 1.0);
    }
}

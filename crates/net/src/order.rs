//! Atomic (total-order) broadcast building blocks.
//!
//! §3.2/§3.3 of the paper require `broadcast_provider(·)` and
//! `broadcast_collector(·)` to implement an *atomic broadcast* (total-order
//! broadcast, [Cachin–Guerraoui–Rodrigues]) so that all recipients observe
//! the same transaction order. In a permissioned deployment this is
//! typically realized with a fixed sequencer; here the [`Sequencer`] stamps
//! each broadcast with a per-channel sequence number and each receiver runs
//! an [`OrderedInbox`] that releases messages in stamped order, buffering
//! gaps. Under the synchrony assumption every gap fills within Δ, so the
//! primitive is live.

use std::collections::BTreeMap;
use std::fmt;

/// Identifies one totally-ordered broadcast channel (e.g. "all uploads from
/// collector 3"). Each channel has independent sequence numbering.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u64);

/// Sequence number within a channel, starting at 0.
pub type SeqNo = u64;

/// Assigns consecutive sequence numbers per channel.
///
/// One logical sequencer is owned by each broadcasting node for its own
/// channel (a node's own sends are trivially self-ordered), which matches
/// the "sender-sequenced FIFO atomic broadcast" construction valid when
/// each channel has a single writer.
#[derive(Clone, Debug, Default)]
pub struct Sequencer {
    next: BTreeMap<ChannelId, SeqNo>,
}

impl Sequencer {
    /// A sequencer with all channels at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next sequence number for `channel` and advances it.
    pub fn assign(&mut self, channel: ChannelId) -> SeqNo {
        let next = self.next.entry(channel).or_insert(0);
        let seq = *next;
        *next += 1;
        seq
    }

    /// The number that will be assigned next on `channel`.
    pub fn peek(&self, channel: ChannelId) -> SeqNo {
        self.next.get(&channel).copied().unwrap_or(0)
    }
}

/// Receiver-side reordering buffer: releases messages of one channel in
/// sequence order, buffering out-of-order arrivals.
///
/// # Examples
///
/// ```
/// use prb_net::order::{ChannelId, OrderedInbox};
///
/// let mut inbox = OrderedInbox::new();
/// let ch = ChannelId(0);
/// assert!(inbox.push(ch, 1, "b").is_empty()); // gap: buffered
/// assert_eq!(inbox.push(ch, 0, "a"), vec!["a", "b"]);
/// ```
#[derive(Clone)]
pub struct OrderedInbox<M> {
    expected: BTreeMap<ChannelId, SeqNo>,
    buffered: BTreeMap<(ChannelId, SeqNo), M>,
}

impl<M> fmt::Debug for OrderedInbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedInbox")
            .field("channels", &self.expected.len())
            .field("buffered", &self.buffered.len())
            .finish()
    }
}

impl<M> Default for OrderedInbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> OrderedInbox<M> {
    /// An empty inbox.
    pub fn new() -> Self {
        OrderedInbox {
            expected: BTreeMap::new(),
            buffered: BTreeMap::new(),
        }
    }

    /// Ingests `(channel, seq, message)`; returns all messages that are now
    /// deliverable in order (possibly empty).
    ///
    /// Duplicate or already-delivered sequence numbers are discarded.
    pub fn push(&mut self, channel: ChannelId, seq: SeqNo, message: M) -> Vec<M> {
        let expected = self.expected.entry(channel).or_insert(0);
        if seq < *expected || self.buffered.contains_key(&(channel, seq)) {
            return Vec::new(); // duplicate
        }
        self.buffered.insert((channel, seq), message);
        let mut out = Vec::new();
        while let Some(m) = self.buffered.remove(&(channel, *expected)) {
            out.push(m);
            *expected += 1;
        }
        out
    }

    /// Number of messages buffered waiting for a gap to fill.
    pub fn pending(&self) -> usize {
        self.buffered.len()
    }

    /// Next expected sequence number on `channel`.
    pub fn expected(&self, channel: ChannelId) -> SeqNo {
        self.expected.get(&channel).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_is_per_channel() {
        let mut s = Sequencer::new();
        assert_eq!(s.assign(ChannelId(0)), 0);
        assert_eq!(s.assign(ChannelId(0)), 1);
        assert_eq!(s.assign(ChannelId(1)), 0);
        assert_eq!(s.peek(ChannelId(0)), 2);
        assert_eq!(s.peek(ChannelId(9)), 0);
    }

    #[test]
    fn in_order_passes_through() {
        let mut inbox = OrderedInbox::new();
        let ch = ChannelId(0);
        assert_eq!(inbox.push(ch, 0, 'a'), vec!['a']);
        assert_eq!(inbox.push(ch, 1, 'b'), vec!['b']);
        assert_eq!(inbox.pending(), 0);
    }

    #[test]
    fn out_of_order_is_buffered_then_released() {
        let mut inbox = OrderedInbox::new();
        let ch = ChannelId(0);
        assert!(inbox.push(ch, 2, 'c').is_empty());
        assert!(inbox.push(ch, 1, 'b').is_empty());
        assert_eq!(inbox.pending(), 2);
        assert_eq!(inbox.push(ch, 0, 'a'), vec!['a', 'b', 'c']);
        assert_eq!(inbox.pending(), 0);
        assert_eq!(inbox.expected(ch), 3);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut inbox = OrderedInbox::new();
        let ch = ChannelId(0);
        assert_eq!(inbox.push(ch, 0, 'a'), vec!['a']);
        assert!(inbox.push(ch, 0, 'a').is_empty());
        // Duplicate of a buffered (not yet delivered) message.
        assert!(inbox.push(ch, 2, 'c').is_empty());
        assert!(inbox.push(ch, 2, 'x').is_empty());
        assert_eq!(inbox.push(ch, 1, 'b'), vec!['b', 'c']);
    }

    #[test]
    fn channels_are_independent() {
        let mut inbox = OrderedInbox::new();
        assert!(inbox.push(ChannelId(1), 1, 'x').is_empty());
        assert_eq!(inbox.push(ChannelId(0), 0, 'a'), vec!['a']);
        assert_eq!(inbox.push(ChannelId(1), 0, 'w'), vec!['w', 'x']);
    }

    #[test]
    fn total_order_property_random_arrival() {
        // Whatever the arrival permutation, delivery order is by seq.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut order: Vec<u64> = (0..50).collect();
            order.shuffle(&mut rng);
            let mut inbox = OrderedInbox::new();
            let mut delivered = Vec::new();
            for seq in order {
                delivered.extend(inbox.push(ChannelId(0), seq, seq));
            }
            assert_eq!(delivered, (0..50).collect::<Vec<_>>());
        }
    }
}

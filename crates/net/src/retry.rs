//! Reliable delivery: an ack-based retry envelope for critical hops.
//!
//! The kernel's fault plan drops messages silently (loss, partitions,
//! crash windows). For the protocol's *critical* hops — provider →
//! collector submission, collector → governor TXList upload, and block
//! dissemination — a lost message must be retransmitted until the
//! receiver acknowledges it or the sender gives up. [`ReliableSender`]
//! implements that: each tracked send gets a token, an ack cancels the
//! retransmission, and an unacked send is retried with exponential
//! backoff plus *deterministic* jitter (a hash of the token and attempt
//! number, never the kernel RNG, so enabling retries does not shift any
//! other random draw and runs stay bit-reproducible).
//!
//! Duplicate suppression is the receiver's job and comes for free on the
//! hops this is used for: sequenced channels dedupe through
//! [`OrderedInbox`](crate::order::OrderedInbox), and block dissemination
//! dedupes on the block serial. Non-critical gossip stays fire-and-forget.

use std::collections::{BTreeMap, HashMap};

use prb_obs::{Obs, ObsHandle};

use crate::message::{NodeIdx, TimerId};
use crate::sim::Context;
use crate::time::SimDuration;

/// Retransmission policy for a [`ReliableSender`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Delay before the first retransmission. Should exceed one ack
    /// round trip (2Δ plus processing), or every send retransmits once.
    pub base_delay: SimDuration,
    /// Cap on the backoff (the delay doubles per attempt up to this).
    pub max_delay: SimDuration,
    /// Total attempts (first send included). After this many the send is
    /// abandoned and counted in [`RetryStats::exhausted`].
    pub max_attempts: u32,
    /// Jitter modulus: each armed delay adds `hash(token, attempt) %
    /// jitter` ticks. Zero disables jitter.
    pub jitter: u64,
    /// Capacity of the pending (unacked) queue. When tracking a new
    /// send would exceed it, the *oldest* pending send (smallest token)
    /// is dropped and counted in [`RetryStats::dropped`] — under
    /// sustained overload the retransmission guarantee degrades
    /// deterministically instead of the queue growing without bound.
    pub max_pending: usize,
}

impl RetryConfig {
    /// A policy derived from the synchrony bound Δ: first retry after
    /// `3Δ + 2` (one ack round trip with slack), doubling to a cap of
    /// `24Δ`, five attempts, jitter up to Δ.
    pub fn for_delta(delta: SimDuration) -> Self {
        let d = delta.ticks().max(1);
        RetryConfig {
            base_delay: SimDuration(3 * d + 2),
            max_delay: SimDuration(24 * d),
            max_attempts: 5,
            jitter: d,
            max_pending: 65536,
        }
    }

    /// The same policy with an explicit pending-queue capacity.
    pub fn with_max_pending(self, max_pending: usize) -> Self {
        RetryConfig {
            max_pending: max_pending.max(1),
            ..self
        }
    }
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig::for_delta(SimDuration(10))
    }
}

/// Counters describing a sender's retransmission activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Tracked sends issued (first transmissions).
    pub sent: u64,
    /// Retransmissions issued.
    pub resent: u64,
    /// Sends settled by an ack.
    pub acked: u64,
    /// Sends abandoned after `max_attempts`.
    pub exhausted: u64,
    /// Acks for unknown/already-settled tokens (harmless duplicates).
    pub duplicate_acks: u64,
    /// Pending sends evicted oldest-first because the queue hit
    /// [`RetryConfig::max_pending`].
    pub dropped: u64,
    /// Pending sends discarded because the destination peer left or was
    /// evicted ([`ReliableSender::purge_peer`], E17).
    pub purged: u64,
}

#[derive(Clone, Debug)]
struct PendingSend<M> {
    to: NodeIdx,
    kind: &'static str,
    size: usize,
    msg: M,
    attempts: u32,
}

/// Per-node reliable-delivery state: pending (unacked) sends keyed by
/// token, plus the timers that drive retransmission.
///
/// Kernel timers cannot be cancelled, so an ack simply removes the
/// pending entry and the stale timer fire becomes a no-op. All state
/// lives in ordered maps keyed by the monotonically assigned token, so
/// iteration order — and therefore the event schedule — is deterministic.
#[derive(Clone, Debug)]
pub struct ReliableSender<M> {
    cfg: RetryConfig,
    next_token: u64,
    pending: BTreeMap<u64, PendingSend<M>>,
    timers: HashMap<TimerId, u64>,
    stats: RetryStats,
    high_water: usize,
    obs: ObsHandle,
}

impl<M: Clone> ReliableSender<M> {
    /// A sender with the given policy and no pending sends.
    pub fn new(cfg: RetryConfig) -> Self {
        ReliableSender {
            cfg,
            next_token: 0,
            pending: BTreeMap::new(),
            timers: HashMap::new(),
            stats: RetryStats::default(),
            high_water: 0,
            obs: Obs::off(),
        }
    }

    /// Installs an observability hub; the sender then maintains the
    /// `net.retry.{sent,resent,acked,exhausted}` counters.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// Retransmission counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Number of sends still awaiting an ack.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The largest the pending queue has ever been. Never exceeds
    /// [`RetryConfig::max_pending`] — the E15 bounded-memory assert.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Sends a tracked message to `to`. `make_msg` receives the assigned
    /// token and builds the wire message embedding it (so the receiver
    /// can ack); the built message is retained for retransmission.
    /// Returns the token.
    pub fn send_with(
        &mut self,
        ctx: &mut Context<'_, M>,
        to: NodeIdx,
        kind: &'static str,
        size: usize,
        make_msg: impl FnOnce(u64) -> M,
    ) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        let msg = make_msg(token);
        ctx.send_sized(to, kind, size, msg.clone());
        self.stats.sent += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("net.retry.sent");
        }
        self.pending.insert(
            token,
            PendingSend {
                to,
                kind,
                size,
                msg,
                attempts: 1,
            },
        );
        // Bounded queue: evict the oldest tracked send (smallest token —
        // tokens are assigned monotonically) before memory grows past the
        // cap. Its armed timer is left to fire as a no-op; the dangling
        // entry costs one map probe, not a retransmission.
        while self.pending.len() > self.cfg.max_pending.max(1) {
            let oldest = *self
                .pending
                .keys()
                .next()
                .expect("non-empty: len > cap >= 1");
            self.pending.remove(&oldest);
            self.stats.dropped += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("net.retry.dropped");
            }
        }
        self.high_water = self.high_water.max(self.pending.len());
        let timer = ctx.set_timer(self.delay_for(token, 1));
        self.timers.insert(timer, token);
        token
    }

    /// Settles the send for `token`. Returns whether it was still
    /// pending (a `false` is a duplicate ack, e.g. for a retransmission
    /// whose original also arrived).
    pub fn on_ack(&mut self, token: u64) -> bool {
        if self.pending.remove(&token).is_some() {
            self.stats.acked += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("net.retry.acked");
            }
            true
        } else {
            self.stats.duplicate_acks += 1;
            false
        }
    }

    /// Discards every pending send addressed to `peer` — called when a
    /// member leaves or is evicted, so retries to a gone node stop
    /// immediately instead of burning the full backoff budget and
    /// inflating `net.retry.{resent,exhausted}`. Armed timers are left
    /// to fire as no-ops (the established stale-timer pattern). Returns
    /// the number of sends purged.
    pub fn purge_peer(&mut self, peer: NodeIdx) -> usize {
        let before = self.pending.len();
        self.pending.retain(|_, p| p.to != peer);
        let purged = before - self.pending.len();
        self.stats.purged += purged as u64;
        if purged > 0 && self.obs.is_enabled() {
            self.obs.metrics().add("net.retry.purged", purged as u64);
        }
        purged
    }

    /// Handles a timer fire. Returns `true` when the timer belonged to
    /// this sender (the caller must then not treat it as its own); a
    /// consumed timer either retransmits, gives up, or no-ops for an
    /// already-acked token.
    pub fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, M>) -> bool {
        let Some(token) = self.timers.remove(&timer) else {
            return false;
        };
        let Some(p) = self.pending.get_mut(&token) else {
            return true; // acked before the timer fired
        };
        if p.attempts >= self.cfg.max_attempts {
            self.pending.remove(&token);
            self.stats.exhausted += 1;
            if self.obs.is_enabled() {
                self.obs.metrics().inc("net.retry.exhausted");
            }
            return true;
        }
        p.attempts += 1;
        let attempts = p.attempts;
        ctx.send_sized(p.to, p.kind, p.size, p.msg.clone());
        self.stats.resent += 1;
        if self.obs.is_enabled() {
            self.obs.metrics().inc("net.retry.resent");
        }
        let timer = ctx.set_timer(self.delay_for(token, attempts));
        self.timers.insert(timer, token);
        true
    }

    /// Backoff delay before attempt `attempt + 1`: `base · 2^(attempt−1)`
    /// capped at `max_delay`, plus deterministic jitter.
    fn delay_for(&self, token: u64, attempt: u32) -> SimDuration {
        let base = self.cfg.base_delay.ticks().max(1);
        let backoff = base
            .saturating_mul(1u64 << (attempt - 1).min(32))
            .min(self.cfg.max_delay.ticks().max(base));
        let jitter = if self.cfg.jitter == 0 {
            0
        } else {
            splitmix64((token << 8).wrapping_add(attempt as u64)) % self.cfg.jitter
        };
        SimDuration(backoff + jitter)
    }
}

/// SplitMix64 finalizer — a cheap, well-distributed hash used for the
/// deterministic retransmission jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use crate::message::Envelope;
    use crate::sim::{Actor, NetConfig, Network};
    use crate::time::SimTime;

    /// Wire format for the test protocol: tracked payloads and acks.
    #[derive(Clone, Debug)]
    enum Msg {
        Data { token: u64, value: u64 },
        Ack { token: u64 },
    }

    /// Sender retries; receiver acks every copy but applies values once.
    enum Driver {
        Sender(ReliableSender<Msg>),
        Receiver(Vec<u64>),
    }

    impl Actor for Driver {
        type Msg = Msg;

        fn on_message(&mut self, env: Envelope<Msg>, ctx: &mut Context<'_, Msg>) {
            match self {
                Driver::Sender(r) => match env.payload {
                    // External command: send `value` reliably to node 1.
                    Msg::Data { value, .. } if env.from == crate::message::EXTERNAL => {
                        r.send_with(ctx, 1, "data", 8, |token| Msg::Data { token, value });
                    }
                    Msg::Ack { token } => {
                        r.on_ack(token);
                    }
                    _ => {}
                },
                Driver::Receiver(seen) => {
                    if let Msg::Data { token, value } = env.payload {
                        ctx.send(env.from, "ack", Msg::Ack { token });
                        if !seen.contains(&value) {
                            seen.push(value);
                        }
                    }
                }
            }
        }

        fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, Msg>) {
            if let Driver::Sender(r) = self {
                r.on_timer(timer, ctx);
            }
        }
    }

    fn build(seed: u64, cfg: RetryConfig) -> Network<Driver> {
        let mut net = Network::new(NetConfig::uniform(1, 4), seed);
        net.add_node(Driver::Sender(ReliableSender::new(cfg)));
        net.add_node(Driver::Receiver(Vec::new()));
        net
    }

    fn sender_stats(net: &Network<Driver>) -> RetryStats {
        match net.node(0) {
            Driver::Sender(r) => r.stats(),
            Driver::Receiver(_) => panic!("node 0 is the sender"),
        }
    }

    fn received(net: &Network<Driver>) -> Vec<u64> {
        match net.node(1) {
            Driver::Receiver(seen) => seen.clone(),
            Driver::Sender(_) => panic!("node 1 is the receiver"),
        }
    }

    #[test]
    fn clean_link_sends_once_and_settles() {
        let mut net = build(1, RetryConfig::for_delta(SimDuration(4)));
        net.send_external(0, "cmd", Msg::Data { token: 0, value: 7 }, SimTime(0));
        net.run_until(SimTime(2_000));
        let s = sender_stats(&net);
        assert_eq!(s.sent, 1);
        assert_eq!(s.resent, 0, "no loss: nothing to retransmit");
        assert_eq!(s.acked, 1);
        assert_eq!(s.exhausted, 0);
        assert_eq!(received(&net), vec![7]);
        match net.node(0) {
            Driver::Sender(r) => assert_eq!(r.in_flight(), 0),
            Driver::Receiver(_) => unreachable!(),
        }
    }

    #[test]
    fn lossy_link_is_survived_by_retries() {
        // Generous attempt budget: at 40% loss, 10 attempts leave ~1e-4
        // per-value failure probability, so the fixed seed passes by a
        // wide margin rather than by luck.
        let cfg = RetryConfig {
            max_attempts: 10,
            ..RetryConfig::for_delta(SimDuration(4))
        };
        let mut net = build(3, cfg);
        let mut faults = FaultPlan::none();
        faults.drop_all(0.4);
        net.set_faults(faults);
        for v in 0..20 {
            net.send_external(0, "cmd", Msg::Data { token: 0, value: v }, SimTime(v * 10));
        }
        net.run_until(SimTime(20_000));
        let s = sender_stats(&net);
        assert_eq!(s.sent, 20);
        assert!(s.resent > 0, "40% loss must force retransmissions");
        let mut got = received(&net);
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>(), "all values delivered");
    }

    #[test]
    fn attempts_are_capped_against_a_dead_receiver() {
        let cfg = RetryConfig {
            base_delay: SimDuration(10),
            max_delay: SimDuration(40),
            max_attempts: 3,
            jitter: 0,
            ..RetryConfig::default()
        };
        let mut net = build(5, cfg);
        let mut faults = FaultPlan::none();
        faults.crash(1, SimTime(0));
        net.set_faults(faults);
        net.send_external(0, "cmd", Msg::Data { token: 0, value: 1 }, SimTime(0));
        net.run_until(SimTime(10_000));
        let s = sender_stats(&net);
        assert_eq!(s.sent, 1);
        assert_eq!(s.resent, 2, "max_attempts=3 → 2 retransmissions");
        assert_eq!(s.exhausted, 1);
        assert_eq!(s.acked, 0);
        // The kernel saw exactly 3 transmissions of the data message.
        assert_eq!(net.stats().kind("data").sent, 3);
    }

    #[test]
    fn duplicate_deliveries_ack_but_apply_once() {
        // A retransmission races its original: the receiver acks both
        // copies, applies one, and the sender counts one duplicate ack.
        let cfg = RetryConfig {
            base_delay: SimDuration(2), // below the RTT: guaranteed retransmit
            max_delay: SimDuration(2),
            max_attempts: 4,
            jitter: 0,
            ..RetryConfig::default()
        };
        let mut net = build(7, cfg);
        net.send_external(0, "cmd", Msg::Data { token: 0, value: 9 }, SimTime(0));
        net.run_until(SimTime(5_000));
        let s = sender_stats(&net);
        assert!(s.resent >= 1, "sub-RTT base delay forces a retransmit");
        assert_eq!(s.acked, 1);
        assert!(s.duplicate_acks >= 1);
        assert_eq!(received(&net), vec![9], "value applied exactly once");
    }

    #[test]
    fn backoff_and_jitter_are_deterministic() {
        let run = |seed| {
            let mut net = build(seed, RetryConfig::for_delta(SimDuration(4)));
            let mut faults = FaultPlan::none();
            faults.drop_all(0.5);
            net.set_faults(faults);
            for v in 0..10 {
                net.send_external(0, "cmd", Msg::Data { token: 0, value: v }, SimTime(v * 5));
            }
            net.run_until(SimTime(50_000));
            (sender_stats(&net), received(&net), net.stats().total_sent())
        };
        assert_eq!(run(11), run(11), "same seed → identical retry schedule");
    }

    #[test]
    fn pending_queue_is_bounded_and_sheds_oldest_first() {
        // A dead receiver never acks, so every tracked send stays
        // pending; the queue must plateau at `max_pending` by evicting
        // the smallest (oldest) tokens, never OOM.
        let cfg = RetryConfig {
            base_delay: SimDuration(10_000), // park retries out of the run
            max_delay: SimDuration(10_000),
            max_attempts: 2,
            jitter: 0,
            max_pending: 4,
        };
        let mut net = build(9, cfg);
        let mut faults = FaultPlan::none();
        faults.crash(1, SimTime(0));
        net.set_faults(faults);
        for v in 0..10 {
            net.send_external(0, "cmd", Msg::Data { token: 0, value: v }, SimTime(v));
        }
        net.run_until(SimTime(100));
        match net.node(0) {
            Driver::Sender(r) => {
                assert_eq!(r.in_flight(), 4, "queue capped at max_pending");
                assert!(r.high_water() <= 4, "high-water {}", r.high_water());
                assert_eq!(r.stats().dropped, 6, "10 sends − 4 capacity");
                // Oldest-first: the survivors are the newest tokens 6..10.
                assert_eq!(
                    r.pending.keys().copied().collect::<Vec<_>>(),
                    vec![6, 7, 8, 9]
                );
            }
            Driver::Receiver(_) => unreachable!(),
        }
        // The evicted sends' timers fire as no-ops, not retransmissions.
        net.run_until(SimTime(50_000));
        let s = sender_stats(&net);
        assert_eq!(s.resent, 4, "only surviving entries retransmit");
    }

    #[test]
    fn retries_to_departed_peer_are_purged_not_backed_off() {
        // A receiver that will never ack again (left/evicted). Without
        // the purge every tracked send burns the full max_attempts
        // backoff budget; with it, pending state drops to zero at the
        // membership change and not one retransmission is issued.
        let cfg = RetryConfig {
            base_delay: SimDuration(50),
            max_delay: SimDuration(50),
            max_attempts: 5,
            jitter: 0,
            ..RetryConfig::default()
        };
        let mut net = build(13, cfg);
        let mut faults = FaultPlan::none();
        faults.crash(1, SimTime(0));
        net.set_faults(faults);
        for v in 0..6 {
            net.send_external(0, "cmd", Msg::Data { token: 0, value: v }, SimTime(v));
        }
        // Let the sends go out but purge before the first retry at ~t=50.
        net.run_until(SimTime(20));
        match net.node_mut(0) {
            Driver::Sender(r) => {
                assert_eq!(r.in_flight(), 6);
                assert_eq!(r.purge_peer(1), 6);
                assert_eq!(r.in_flight(), 0);
                assert_eq!(r.stats().purged, 6);
                // Purging an already-clean peer is a no-op.
                assert_eq!(r.purge_peer(1), 0);
            }
            Driver::Receiver(_) => unreachable!(),
        }
        // The armed timers fire as no-ops: no retransmission, no
        // exhaustion, nothing new on the wire.
        net.run_until(SimTime(10_000));
        let s = sender_stats(&net);
        assert_eq!(s.sent, 6);
        assert_eq!(s.resent, 0, "purged sends must not retransmit");
        assert_eq!(s.exhausted, 0, "purged sends never exhaust");
        assert_eq!(net.stats().kind("data").sent, 6, "wire saw only originals");
    }

    #[test]
    fn delay_schedule_backs_off_and_caps() {
        let r: ReliableSender<Msg> = ReliableSender::new(RetryConfig {
            base_delay: SimDuration(10),
            max_delay: SimDuration(35),
            max_attempts: 8,
            jitter: 0,
            ..RetryConfig::default()
        });
        assert_eq!(r.delay_for(0, 1), SimDuration(10));
        assert_eq!(r.delay_for(0, 2), SimDuration(20));
        assert_eq!(r.delay_for(0, 3), SimDuration(35), "capped");
        assert_eq!(r.delay_for(0, 7), SimDuration(35), "stays capped");
        // Jitter varies by token but never exceeds the modulus.
        let j: ReliableSender<Msg> = ReliableSender::new(RetryConfig {
            base_delay: SimDuration(10),
            max_delay: SimDuration(80),
            max_attempts: 8,
            jitter: 6,
            ..RetryConfig::default()
        });
        for token in 0..20 {
            let d = j.delay_for(token, 1).ticks();
            assert!((10..16).contains(&d), "attempt 1 delay {d}");
        }
        // Identical inputs hash identically.
        assert_eq!(j.delay_for(3, 2), j.delay_for(3, 2));
    }
}

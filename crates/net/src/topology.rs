//! The three-tier network topology of the paper.
//!
//! §3.1: *l* providers each submit to *r* collectors; *n* collectors each
//! receive from *s* providers, with `r·l = s·n`; *m* governors are (by
//! default) connected to every collector and to each other.
//!
//! [`Topology`] builds and answers adjacency queries for that structure,
//! either with the deterministic cyclic wiring or a seeded random r-regular
//! bipartite wiring.

use rand::seq::SliceRandom;
use rand::Rng;

use std::fmt;

/// Parameters of the provider/collector/governor hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TopologyParams {
    /// Number of providers (`l`).
    pub providers: u32,
    /// Number of collectors (`n`).
    pub collectors: u32,
    /// Number of governors (`m`).
    pub governors: u32,
    /// Collectors per provider (`r`).
    pub replication: u32,
}

impl TopologyParams {
    /// Providers per collector (`s = r·l / n`).
    pub fn providers_per_collector(&self) -> u32 {
        self.replication * self.providers / self.collectors
    }

    /// Validates the regularity constraint `n | r·l` and `r ≤ n`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.providers == 0 || self.collectors == 0 || self.governors == 0 {
            return Err("all three tiers must be non-empty".into());
        }
        if self.replication == 0 {
            return Err("replication r must be at least 1".into());
        }
        if self.replication > self.collectors {
            return Err(format!(
                "replication r={} exceeds collector count n={}",
                self.replication, self.collectors
            ));
        }
        let stubs = self.replication as u64 * self.providers as u64;
        if !stubs.is_multiple_of(self.collectors as u64) {
            return Err(format!(
                "r·l = {stubs} is not divisible by n = {}; the graph cannot be s-regular",
                self.collectors
            ));
        }
        Ok(())
    }
}

/// The wired topology with adjacency in both directions.
#[derive(Clone)]
pub struct Topology {
    params: TopologyParams,
    /// `collectors_of[p]` = the r collectors provider `p` submits to.
    collectors_of: Vec<Vec<u32>>,
    /// `providers_of[c]` = the s providers collector `c` hears from.
    providers_of: Vec<Vec<u32>>,
}

impl fmt::Debug for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topology")
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl Topology {
    /// Deterministic cyclic wiring: provider `k` submits to collectors
    /// `(k·r + i) mod n` for `i in 0..r`.
    ///
    /// # Errors
    ///
    /// Returns an error when [`TopologyParams::validate`] fails.
    pub fn cyclic(params: TopologyParams) -> Result<Self, String> {
        params.validate()?;
        let n = params.collectors;
        let r = params.replication;
        let mut collectors_of = Vec::with_capacity(params.providers as usize);
        for k in 0..params.providers {
            let base = (k as u64 * r as u64) % n as u64;
            collectors_of.push(
                (0..r)
                    .map(|i| ((base + i as u64) % n as u64) as u32)
                    .collect(),
            );
        }
        Ok(Self::from_provider_adjacency(params, collectors_of))
    }

    /// Seeded random r-regular bipartite wiring via the configuration model
    /// (with retries to avoid duplicate provider→collector edges).
    ///
    /// # Errors
    ///
    /// Returns an error when [`TopologyParams::validate`] fails.
    pub fn random<R: Rng + ?Sized>(params: TopologyParams, rng: &mut R) -> Result<Self, String> {
        params.validate()?;
        let n = params.collectors as usize;
        let r = params.replication as usize;
        let l = params.providers as usize;
        let s = params.providers_per_collector() as usize;
        // Stub list: each collector appears s times; shuffle and deal r per
        // provider; retry on duplicates within one provider's hand.
        'attempt: for _ in 0..1000 {
            let mut stubs: Vec<u32> = (0..n as u32)
                .flat_map(|c| std::iter::repeat_n(c, s))
                .collect();
            stubs.shuffle(rng);
            let mut collectors_of: Vec<Vec<u32>> = Vec::with_capacity(l);
            for p in 0..l {
                let hand = &stubs[p * r..(p + 1) * r];
                let mut sorted = hand.to_vec();
                sorted.sort_unstable();
                sorted.dedup();
                if sorted.len() != r {
                    continue 'attempt; // duplicate edge; reshuffle
                }
                collectors_of.push(hand.to_vec());
            }
            return Ok(Self::from_provider_adjacency(params, collectors_of));
        }
        // Dense corner cases (e.g. r == n) can defeat rejection sampling;
        // fall back to the deterministic wiring.
        Self::cyclic(params)
    }

    fn from_provider_adjacency(params: TopologyParams, collectors_of: Vec<Vec<u32>>) -> Self {
        let mut providers_of = vec![Vec::new(); params.collectors as usize];
        for (p, cs) in collectors_of.iter().enumerate() {
            for &c in cs {
                providers_of[c as usize].push(p as u32);
            }
        }
        Topology {
            params,
            collectors_of,
            providers_of,
        }
    }

    /// The parameters this topology was built from.
    pub fn params(&self) -> &TopologyParams {
        &self.params
    }

    /// The `r` collectors provider `p` submits to.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn collectors_of(&self, p: u32) -> &[u32] {
        &self.collectors_of[p as usize]
    }

    /// The `s` providers collector `c` hears from.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn providers_of(&self, c: u32) -> &[u32] {
        &self.providers_of[c as usize]
    }

    /// Whether provider `p` is linked with collector `c`.
    pub fn linked(&self, p: u32, c: u32) -> bool {
        self.collectors_of
            .get(p as usize)
            .is_some_and(|cs| cs.contains(&c))
    }

    /// Position of provider `p` in collector `c`'s provider list, i.e. the
    /// index `u` such that `providers_of(c)[u] == p`. This is the
    /// per-provider slot in the collector's reputation vector (§3.4).
    ///
    /// `providers_of` lists are built by scanning providers in ascending
    /// order ([`Self::from_provider_adjacency`]), so they are always
    /// sorted and this is a binary search. The linear scan it replaces
    /// was O(s) *per report per screened transaction* — at s = 6250
    /// (10⁵ providers over 64 collectors) it dominated governor
    /// screening in the E15 scale profile.
    pub fn provider_slot(&self, c: u32, p: u32) -> Option<usize> {
        let slots = &self.providers_of[c as usize];
        debug_assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots sorted");
        slots.binary_search(&p).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(l: u32, n: u32, r: u32) -> TopologyParams {
        TopologyParams {
            providers: l,
            collectors: n,
            governors: 3,
            replication: r,
        }
    }

    fn check_regular(t: &Topology) {
        let p = t.params();
        let s = p.providers_per_collector();
        for k in 0..p.providers {
            let cs = t.collectors_of(k);
            assert_eq!(cs.len(), p.replication as usize, "provider {k} degree");
            let mut dedup = cs.to_vec();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), cs.len(), "provider {k} duplicate edges");
        }
        for c in 0..p.collectors {
            assert_eq!(t.providers_of(c).len(), s as usize, "collector {c} degree");
        }
    }

    #[test]
    fn cyclic_is_regular() {
        for (l, n, r) in [(8, 8, 3), (10, 5, 2), (12, 4, 1), (6, 6, 6)] {
            let t = Topology::cyclic(params(l, n, r)).unwrap();
            check_regular(&t);
        }
    }

    #[test]
    fn random_is_regular() {
        let mut rng = StdRng::seed_from_u64(5);
        for (l, n, r) in [(8, 8, 3), (20, 10, 4), (16, 8, 8)] {
            let t = Topology::random(params(l, n, r), &mut rng).unwrap();
            check_regular(&t);
        }
    }

    #[test]
    fn adjacency_is_consistent() {
        let t = Topology::cyclic(params(10, 5, 2)).unwrap();
        for p in 0..10 {
            for &c in t.collectors_of(p) {
                assert!(t.linked(p, c));
                assert!(t.providers_of(c).contains(&p));
                let slot = t.provider_slot(c, p).unwrap();
                assert_eq!(t.providers_of(c)[slot], p);
            }
        }
        assert_eq!(t.provider_slot(0, 9), None);
    }

    #[test]
    fn provider_slot_matches_linear_scan_on_both_wirings() {
        // Regression for the O(s)-per-report slot lookup: the binary
        // search must agree with the definitional linear scan for every
        // (collector, provider) pair, including absent ones, under both
        // the cyclic and the random wiring.
        let mut rng = StdRng::seed_from_u64(17);
        for t in [
            Topology::cyclic(params(24, 8, 3)).unwrap(),
            Topology::random(params(24, 8, 3), &mut rng).unwrap(),
        ] {
            for c in 0..8 {
                for p in 0..25 {
                    let linear = t.providers_of[c as usize].iter().position(|&x| x == p);
                    assert_eq!(t.provider_slot(c, p), linear, "collector {c} provider {p}");
                }
            }
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(params(0, 5, 2).validate().is_err());
        assert!(params(5, 5, 0).validate().is_err());
        assert!(params(5, 4, 5).validate().is_err()); // r > n
        assert!(params(5, 4, 2).validate().is_err()); // 10 not divisible by 4
        assert!(Topology::cyclic(params(5, 4, 2)).is_err());
    }

    #[test]
    fn s_computation() {
        assert_eq!(params(10, 5, 2).providers_per_collector(), 4);
        assert_eq!(params(8, 8, 3).providers_per_collector(), 3);
    }

    #[test]
    fn random_deterministic_under_seed() {
        let t1 = Topology::random(params(20, 10, 4), &mut StdRng::seed_from_u64(9)).unwrap();
        let t2 = Topology::random(params(20, 10, 4), &mut StdRng::seed_from_u64(9)).unwrap();
        for p in 0..20 {
            assert_eq!(t1.collectors_of(p), t2.collectors_of(p));
        }
    }
}

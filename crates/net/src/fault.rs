//! Fault injection: crashes, message loss, and network partitions.
//!
//! The protocol's safety properties (§3.1) must hold under crash faults and
//! message loss within the synchrony budget. [`FaultPlan`] describes the
//! faults for a run; the kernel consults it on every send/delivery.

use std::collections::HashMap;

use crate::message::NodeIdx;
use crate::time::SimTime;

/// A temporary partition of the node set.
///
/// While active, messages between nodes in *different* groups are dropped.
/// Nodes in no group communicate freely with each other and with every
/// group (they are unaffected bystanders).
#[derive(Clone, Debug)]
pub struct Partition {
    /// Disjoint groups of nodes that cannot reach each other.
    pub groups: Vec<Vec<NodeIdx>>,
    /// Partition start (inclusive).
    pub from: SimTime,
    /// Partition end (exclusive).
    pub until: SimTime,
}

/// The full fault schedule for a simulation run.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    crashes: HashMap<NodeIdx, Vec<(SimTime, SimTime)>>,
    link_drop_prob: HashMap<(NodeIdx, NodeIdx), f64>,
    default_drop_prob: f64,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A fault-free plan.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crashes `node` at time `at`, permanently (it neither sends nor
    /// receives afterwards).
    pub fn crash(&mut self, node: NodeIdx, at: SimTime) -> &mut Self {
        self.crash_window(node, at, SimTime::MAX)
    }

    /// Crashes `node` for the window `[from, until)`: a crash-recovery
    /// fault. The node is deaf and mute inside the window and resumes with
    /// its pre-crash state afterwards; recovery (chain sync, retransmits)
    /// is handled by the protocol layer — see `prb_core`'s governor sync
    /// state machine and [`crate::retry::ReliableSender`]. As a special
    /// case, a window ending at [`SimTime::MAX`] is a *permanent* crash
    /// and is inclusive of `SimTime::MAX` itself (there is no later tick
    /// at which the node could be alive again).
    pub fn crash_window(&mut self, node: NodeIdx, from: SimTime, until: SimTime) -> &mut Self {
        self.crashes.entry(node).or_default().push((from, until));
        self
    }

    /// Sets a uniform drop probability for all links.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn drop_all(&mut self, prob: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.default_drop_prob = prob;
        self
    }

    /// Sets a drop probability for the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `prob` is not in `[0, 1]`.
    pub fn drop_link(&mut self, from: NodeIdx, to: NodeIdx, prob: f64) -> &mut Self {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        self.link_drop_prob.insert((from, to), prob);
        self
    }

    /// Adds a timed partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition window is empty (`from >= until`) or if
    /// any node appears in more than one group — overlapping groups
    /// would make `is_partitioned` depend on group declaration order.
    pub fn partition(&mut self, partition: Partition) -> &mut Self {
        assert!(
            partition.from < partition.until,
            "partition window is empty: from {:?} must precede until {:?}",
            partition.from,
            partition.until
        );
        let mut seen = std::collections::HashSet::new();
        for group in &partition.groups {
            for &node in group {
                assert!(
                    seen.insert(node),
                    "partition groups overlap: node {node} appears in more than one group"
                );
            }
        }
        self.partitions.push(partition);
        self
    }

    /// Whether `node` is crashed at time `at`.
    pub fn is_crashed(&self, node: NodeIdx, at: SimTime) -> bool {
        self.crashes.get(&node).is_some_and(|windows| {
            // `until` is exclusive, except that a permanent crash
            // (`until == SimTime::MAX`) covers `SimTime::MAX` too.
            windows
                .iter()
                .any(|&(from, until)| at >= from && (at < until || until == SimTime::MAX))
        })
    }

    /// Drop probability for the link `from → to`.
    pub fn drop_prob(&self, from: NodeIdx, to: NodeIdx) -> f64 {
        self.link_drop_prob
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_drop_prob)
    }

    /// Whether a partition separates `from` and `to` at time `at`.
    pub fn is_partitioned(&self, from: NodeIdx, to: NodeIdx, at: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            if at < p.from || at >= p.until {
                return false;
            }
            let group_of = |n: NodeIdx| p.groups.iter().position(|g| g.contains(&n));
            match (group_of(from), group_of(to)) {
                (Some(a), Some(b)) => a != b,
                // A node outside every group is unaffected.
                _ => false,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashes_take_effect_at_time() {
        let mut plan = FaultPlan::none();
        plan.crash(3, SimTime(100));
        assert!(!plan.is_crashed(3, SimTime(99)));
        assert!(plan.is_crashed(3, SimTime(100)));
        assert!(plan.is_crashed(3, SimTime(200)));
        assert!(!plan.is_crashed(4, SimTime(200)));
    }

    #[test]
    fn crash_windows_allow_recovery() {
        let mut plan = FaultPlan::none();
        plan.crash_window(1, SimTime(10), SimTime(20));
        plan.crash_window(1, SimTime(40), SimTime(50));
        assert!(!plan.is_crashed(1, SimTime(9)));
        assert!(plan.is_crashed(1, SimTime(10)));
        assert!(plan.is_crashed(1, SimTime(19)));
        assert!(!plan.is_crashed(1, SimTime(20)));
        assert!(plan.is_crashed(1, SimTime(45)));
        assert!(!plan.is_crashed(1, SimTime(50)));
    }

    #[test]
    fn link_overrides_default_drop() {
        let mut plan = FaultPlan::none();
        plan.drop_all(0.1).drop_link(1, 2, 0.9);
        assert_eq!(plan.drop_prob(1, 2), 0.9);
        assert_eq!(plan.drop_prob(2, 1), 0.1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        FaultPlan::none().drop_all(1.5);
    }

    #[test]
    fn partition_window_and_groups() {
        let mut plan = FaultPlan::none();
        plan.partition(Partition {
            groups: vec![vec![0, 1], vec![2, 3]],
            from: SimTime(10),
            until: SimTime(20),
        });
        // Across groups, inside window: partitioned.
        assert!(plan.is_partitioned(0, 2, SimTime(10)));
        assert!(plan.is_partitioned(3, 1, SimTime(19)));
        // Same group: fine.
        assert!(!plan.is_partitioned(0, 1, SimTime(15)));
        // Outside window: fine.
        assert!(!plan.is_partitioned(0, 2, SimTime(9)));
        assert!(!plan.is_partitioned(0, 2, SimTime(20)));
        // Bystander (node 4 in no group): fine both ways.
        assert!(!plan.is_partitioned(4, 0, SimTime(15)));
        assert!(!plan.is_partitioned(2, 4, SimTime(15)));
    }

    #[test]
    fn permanent_crash_covers_sim_time_max() {
        // Regression: `until` is exclusive, so a permanent crash via
        // `SimTime::MAX` used to report not-crashed at exactly
        // `SimTime::MAX`. Permanent crashes are now inclusive.
        let mut plan = FaultPlan::none();
        plan.crash(2, SimTime(100));
        assert!(plan.is_crashed(2, SimTime(u64::MAX - 1)));
        assert!(plan.is_crashed(2, SimTime::MAX));
        // Finite windows keep the exclusive upper bound.
        plan.crash_window(5, SimTime(10), SimTime(20));
        assert!(!plan.is_crashed(5, SimTime(20)));
    }

    #[test]
    #[should_panic(expected = "partition window is empty")]
    fn empty_partition_window_rejected() {
        FaultPlan::none().partition(Partition {
            groups: vec![vec![0], vec![1]],
            from: SimTime(20),
            until: SimTime(20),
        });
    }

    #[test]
    #[should_panic(expected = "partition window is empty")]
    fn inverted_partition_window_rejected() {
        FaultPlan::none().partition(Partition {
            groups: vec![vec![0], vec![1]],
            from: SimTime(30),
            until: SimTime(20),
        });
    }

    #[test]
    #[should_panic(expected = "partition groups overlap")]
    fn overlapping_partition_groups_rejected() {
        // Node 1 in two groups would make is_partitioned(1, ..) depend on
        // which group happens to be found first.
        FaultPlan::none().partition(Partition {
            groups: vec![vec![0, 1], vec![1, 2]],
            from: SimTime(10),
            until: SimTime(20),
        });
    }

    #[test]
    #[should_panic(expected = "more than one group")]
    fn duplicate_node_within_a_group_rejected() {
        FaultPlan::none().partition(Partition {
            groups: vec![vec![0, 0], vec![1]],
            from: SimTime(10),
            until: SimTime(20),
        });
    }
}

//! The discrete-event simulation kernel.
//!
//! A [`Network`] owns a set of actors, an event heap, a [`FaultPlan`], and
//! the message statistics. Actors implement [`Actor`] and interact with the
//! world only through the [`Context`] handed to their callbacks, which keeps
//! the kernel deterministic: given the same seed and the same actor logic, a
//! run is bit-for-bit reproducible.
//!
//! Delivery model: each message is assigned a delay drawn uniformly from
//! `[min_delay, max_delay]` (the synchrony bound Δ of §3.1). Ties are broken
//! by send order, so the schedule is deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use prb_obs::{DropReason, EventKind as ObsEvent, Obs, ObsHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fault::FaultPlan;
use crate::message::{Envelope, NodeIdx, TimerId, EXTERNAL};
use crate::stats::MessageStats;
use crate::time::{SimDuration, SimTime};

/// A protocol participant driven by the kernel.
pub trait Actor {
    /// The message type exchanged between actors.
    type Msg;

    /// Called when a message (or external command) is delivered.
    fn on_message(&mut self, envelope: Envelope<Self::Msg>, ctx: &mut Context<'_, Self::Msg>);

    /// Called when a timer set via [`Context::set_timer`] fires.
    fn on_timer(&mut self, _timer: TimerId, _ctx: &mut Context<'_, Self::Msg>) {}
}

/// Network delay configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetConfig {
    /// Minimum message latency.
    pub min_delay: SimDuration,
    /// Maximum message latency — the synchrony bound Δ.
    pub max_delay: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            min_delay: SimDuration(1),
            max_delay: SimDuration(10),
        }
    }
}

impl NetConfig {
    /// Uniform latency in `[min, max]` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn uniform(min: u64, max: u64) -> Self {
        assert!(min <= max, "min_delay must not exceed max_delay");
        NetConfig {
            min_delay: SimDuration(min),
            max_delay: SimDuration(max),
        }
    }

    /// The synchrony bound Δ.
    pub fn delta(&self) -> SimDuration {
        self.max_delay
    }
}

enum EventKind<M> {
    Deliver(Envelope<M>),
    Timer { node: NodeIdx, timer: TimerId },
}

struct Event<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Handle through which an actor interacts with the kernel during a callback.
///
/// Sends and timer requests are buffered and applied by the kernel after the
/// callback returns.
pub struct Context<'a, M> {
    now: SimTime,
    self_idx: NodeIdx,
    rng: &'a mut StdRng,
    outbox: Vec<(NodeIdx, &'static str, usize, M, Option<SimDuration>)>,
    timer_requests: Vec<(SimDuration, TimerId)>,
    next_timer: &'a mut u64,
}

impl<M> std::fmt::Debug for Context<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("now", &self.now)
            .field("self_idx", &self.self_idx)
            .finish_non_exhaustive()
    }
}

impl<M> Context<'_, M> {
    /// Current global simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The index of the actor being called.
    pub fn self_idx(&self) -> NodeIdx {
        self.self_idx
    }

    /// The kernel's deterministic RNG (shared by all actors).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `payload` to `to` with a kernel-chosen delay in `[min, Δ]`.
    pub fn send(&mut self, to: NodeIdx, kind: &'static str, payload: M) {
        self.outbox.push((to, kind, 0, payload, None));
    }

    /// Like [`send`](Self::send) with a declared payload size for
    /// bandwidth accounting.
    pub fn send_sized(&mut self, to: NodeIdx, kind: &'static str, size: usize, payload: M) {
        self.outbox.push((to, kind, size, payload, None));
    }

    /// Sends with an explicit delay (still subject to faults). Useful for
    /// modeling processing time on top of network latency.
    pub fn send_after(&mut self, to: NodeIdx, kind: &'static str, payload: M, delay: SimDuration) {
        self.outbox.push((to, kind, 0, payload, Some(delay)));
    }

    /// Schedules a timer for this actor after `delay`; returns its id.
    pub fn set_timer(&mut self, delay: SimDuration) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.timer_requests.push((delay, id));
        id
    }
}

/// The simulated network: actors + event queue + faults + statistics.
pub struct Network<A: Actor> {
    nodes: Vec<A>,
    queue: BinaryHeap<Event<A::Msg>>,
    now: SimTime,
    config: NetConfig,
    faults: FaultPlan,
    stats: MessageStats,
    obs: ObsHandle,
    rng: StdRng,
    next_seq: u64,
    next_timer: u64,
    events_processed: u64,
}

impl<A: Actor> std::fmt::Debug for Network<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("events_processed", &self.events_processed)
            .finish()
    }
}

impl<A: Actor> Network<A> {
    /// Creates an empty network.
    pub fn new(config: NetConfig, seed: u64) -> Self {
        Network {
            nodes: Vec::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            config,
            faults: FaultPlan::none(),
            stats: MessageStats::new(),
            obs: Obs::off(),
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            next_timer: 0,
            events_processed: 0,
        }
    }

    /// Installs a fault plan (replacing any previous one).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.faults = faults;
    }

    /// Installs an observability hub; the kernel mirrors every
    /// send/deliver/drop/timer into it. The default is [`Obs::off`],
    /// which reduces each hook to a single branch.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The installed observability hub.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Adds an actor, returning its index.
    pub fn add_node(&mut self, actor: A) -> NodeIdx {
        self.nodes.push(actor);
        self.nodes.len() - 1
    }

    /// Number of actors.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable access to an actor.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: NodeIdx) -> &A {
        &self.nodes[idx]
    }

    /// Mutable access to an actor (e.g. for post-run inspection hooks).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut A {
        &mut self.nodes[idx]
    }

    /// Iterates over all actors.
    pub fn nodes(&self) -> impl Iterator<Item = &A> {
        self.nodes.iter()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MessageStats {
        &self.stats
    }

    /// Mutable statistics (to reset between measurement windows).
    pub fn stats_mut(&mut self) -> &mut MessageStats {
        &mut self.stats
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Injects an external message to `to`, delivered at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or `to` is out of range.
    pub fn send_external(&mut self, to: NodeIdx, kind: &'static str, payload: A::Msg, at: SimTime) {
        assert!(at >= self.now, "cannot schedule in the past");
        assert!(to < self.nodes.len(), "unknown node {to}");
        self.stats.record_sent(kind, 0);
        self.obs.emit(
            self.now.ticks(),
            prb_obs::EXTERNAL_NODE,
            ObsEvent::MsgSent {
                msg: kind,
                to: to as u64,
                bytes: 0,
            },
        );
        let seq = self.bump_seq();
        self.queue.push(Event {
            at,
            seq,
            kind: EventKind::Deliver(Envelope {
                from: EXTERNAL,
                to,
                kind,
                size: 0,
                sent_at: self.now,
                payload,
            }),
        });
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// Runs until the queue is empty or `max_events` have been processed.
    ///
    /// Returns the number of events processed by this call.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            if !self.step() {
                break;
            }
            processed += 1;
        }
        processed
    }

    /// Runs events with `at <= deadline`. Afterwards `now == deadline` if
    /// the queue emptied or the next event lies beyond the deadline.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek() {
                Some(e) if e.at <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Processes one event; returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.now, "time went backwards");
        self.now = event.at;
        self.events_processed += 1;
        match event.kind {
            EventKind::Deliver(envelope) => {
                if self.faults.is_crashed(envelope.to, self.now) {
                    self.stats.record_dropped(envelope.kind, envelope.size);
                    self.obs.emit(
                        self.now.ticks(),
                        envelope.to as u64,
                        ObsEvent::MsgDropped {
                            msg: envelope.kind,
                            from: node_id(envelope.from),
                            bytes: envelope.size as u64,
                            reason: DropReason::Crash,
                        },
                    );
                    return true;
                }
                self.stats.record_delivered(envelope.kind, envelope.size);
                // Depth of the kernel's event heap at delivery time — the
                // network-side queue pressure behind commit latency.
                self.obs.observe("depth.net_queue", self.queue.len() as u64);
                self.obs.emit(
                    self.now.ticks(),
                    envelope.to as u64,
                    ObsEvent::MsgDelivered {
                        msg: envelope.kind,
                        from: node_id(envelope.from),
                        bytes: envelope.size as u64,
                        latency: self.now.ticks().saturating_sub(envelope.sent_at.ticks()),
                    },
                );
                let to = envelope.to;
                self.dispatch(to, |actor, ctx| actor.on_message(envelope, ctx));
            }
            EventKind::Timer { node, timer } => {
                if self.faults.is_crashed(node, self.now) {
                    return true;
                }
                self.stats.record_timer();
                self.obs.emit(
                    self.now.ticks(),
                    node as u64,
                    ObsEvent::TimerFired { timer: timer.0 },
                );
                self.dispatch(node, |actor, ctx| actor.on_timer(timer, ctx));
            }
        }
        true
    }

    fn dispatch<F>(&mut self, node: NodeIdx, f: F)
    where
        F: FnOnce(&mut A, &mut Context<'_, A::Msg>),
    {
        let mut ctx = Context {
            now: self.now,
            self_idx: node,
            rng: &mut self.rng,
            outbox: Vec::new(),
            timer_requests: Vec::new(),
            next_timer: &mut self.next_timer,
        };
        f(&mut self.nodes[node], &mut ctx);
        let Context {
            outbox,
            timer_requests,
            ..
        } = ctx;
        for (to, kind, size, payload, explicit_delay) in outbox {
            self.enqueue_send(node, to, kind, size, payload, explicit_delay);
        }
        for (delay, timer) in timer_requests {
            let seq = self.bump_seq();
            self.queue.push(Event {
                at: self.now + delay,
                seq,
                kind: EventKind::Timer { node, timer },
            });
        }
    }

    fn enqueue_send(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        kind: &'static str,
        size: usize,
        payload: A::Msg,
        explicit_delay: Option<SimDuration>,
    ) {
        assert!(to < self.nodes.len(), "send to unknown node {to}");
        self.stats.record_sent(kind, size);
        self.obs.emit(
            self.now.ticks(),
            from as u64,
            ObsEvent::MsgSent {
                msg: kind,
                to: to as u64,
                bytes: size as u64,
            },
        );
        // Fault checks at send time.
        if self.faults.is_crashed(from, self.now) || self.faults.is_partitioned(from, to, self.now)
        {
            let reason = if self.faults.is_crashed(from, self.now) {
                DropReason::Crash
            } else {
                DropReason::Partition
            };
            self.stats.record_dropped(kind, size);
            self.obs.emit(
                self.now.ticks(),
                from as u64,
                ObsEvent::MsgDropped {
                    msg: kind,
                    from: from as u64,
                    bytes: size as u64,
                    reason,
                },
            );
            return;
        }
        let p = self.faults.drop_prob(from, to);
        if p > 0.0 && self.rng.gen::<f64>() < p {
            self.stats.record_dropped(kind, size);
            self.obs.emit(
                self.now.ticks(),
                from as u64,
                ObsEvent::MsgDropped {
                    msg: kind,
                    from: from as u64,
                    bytes: size as u64,
                    reason: DropReason::Loss,
                },
            );
            return;
        }
        let delay = explicit_delay.unwrap_or_else(|| {
            let min = self.config.min_delay.0;
            let max = self.config.max_delay.0;
            SimDuration(self.rng.gen_range(min..=max))
        });
        let seq = self.bump_seq();
        self.queue.push(Event {
            at: self.now + delay,
            seq,
            kind: EventKind::Deliver(Envelope {
                from,
                to,
                kind,
                size,
                sent_at: self.now,
                payload,
            }),
        });
    }
}

/// Maps a kernel node index onto the obs node-id space, folding the
/// sentinel [`EXTERNAL`] onto [`prb_obs::EXTERNAL_NODE`].
fn node_id(idx: NodeIdx) -> u64 {
    if idx == EXTERNAL {
        prb_obs::EXTERNAL_NODE
    } else {
        idx as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Partition;

    /// Test actor: counts received values; pings neighbours on command.
    struct Counter {
        received: Vec<(NodeIdx, u64)>,
        timers: u32,
        forward_to: Option<NodeIdx>,
    }

    impl Counter {
        fn new() -> Self {
            Counter {
                received: Vec::new(),
                timers: 0,
                forward_to: None,
            }
        }
    }

    impl Actor for Counter {
        type Msg = u64;

        fn on_message(&mut self, env: Envelope<u64>, ctx: &mut Context<'_, u64>) {
            self.received.push((env.from, env.payload));
            if let Some(next) = self.forward_to {
                ctx.send(next, "fwd", env.payload + 1);
            }
        }

        fn on_timer(&mut self, _t: TimerId, _ctx: &mut Context<'_, u64>) {
            self.timers += 1;
        }
    }

    fn two_node_net() -> Network<Counter> {
        let mut net = Network::new(NetConfig::uniform(1, 5), 42);
        net.add_node(Counter::new());
        net.add_node(Counter::new());
        net
    }

    #[test]
    fn external_message_delivery() {
        let mut net = two_node_net();
        net.send_external(0, "cmd", 7, SimTime(3));
        net.run_until_idle(100);
        assert_eq!(net.node(0).received, vec![(EXTERNAL, 7)]);
        assert_eq!(net.now(), SimTime(3));
    }

    #[test]
    fn forwarding_respects_delay_bounds() {
        let mut net = two_node_net();
        net.node_mut(0).forward_to = Some(1);
        net.send_external(0, "cmd", 1, SimTime(0));
        net.run_until_idle(100);
        assert_eq!(net.node(1).received, vec![(0, 2)]);
        // Delivered within [1, 5] ticks of the send at t=0.
        assert!(net.now().ticks() >= 1 && net.now().ticks() <= 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut net = Network::new(NetConfig::uniform(1, 50), seed);
            let a = net.add_node(Counter::new());
            let b = net.add_node(Counter::new());
            net.node_mut(a).forward_to = Some(b);
            net.node_mut(b).forward_to = Some(a);
            for i in 0..10 {
                net.send_external(a, "cmd", i, SimTime(i));
            }
            net.run_until_idle(100); // bounded: forwarding loops forever
            (net.now(), net.node(a).received.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).1, run(8).1);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerActor {
            fired: Vec<TimerId>,
            pending: Vec<TimerId>,
        }
        impl Actor for TimerActor {
            type Msg = ();
            fn on_message(&mut self, _env: Envelope<()>, ctx: &mut Context<'_, ()>) {
                self.pending.push(ctx.set_timer(SimDuration(10)));
                self.pending.push(ctx.set_timer(SimDuration(5)));
            }
            fn on_timer(&mut self, t: TimerId, _ctx: &mut Context<'_, ()>) {
                self.fired.push(t);
            }
        }
        let mut net = Network::new(NetConfig::default(), 1);
        let n = net.add_node(TimerActor {
            fired: vec![],
            pending: vec![],
        });
        net.send_external(n, "cmd", (), SimTime(0));
        net.run_until_idle(10);
        let pending = net.node(n).pending.clone();
        // The 5-tick timer (second set) fires before the 10-tick timer.
        assert_eq!(net.node(n).fired, vec![pending[1], pending[0]]);
        assert_eq!(net.stats().timers_fired(), 2);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut net = two_node_net();
        let mut faults = FaultPlan::none();
        faults.crash(1, SimTime(0));
        net.set_faults(faults);
        net.node_mut(0).forward_to = Some(1);
        net.send_external(0, "cmd", 1, SimTime(0));
        net.run_until_idle(100);
        assert!(net.node(1).received.is_empty());
        assert_eq!(net.stats().kind("fwd").dropped, 1);
    }

    #[test]
    fn crashed_sender_sends_nothing() {
        let mut net = two_node_net();
        let mut faults = FaultPlan::none();
        faults.crash(0, SimTime(1));
        net.set_faults(faults);
        net.node_mut(0).forward_to = Some(1);
        // Delivered at t=2 (> crash) — the actor is dead, handler not run.
        net.send_external(0, "cmd", 1, SimTime(2));
        net.run_until_idle(100);
        assert!(net.node(0).received.is_empty());
        assert!(net.node(1).received.is_empty());
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = two_node_net();
        let mut faults = FaultPlan::none();
        faults.partition(Partition {
            groups: vec![vec![0], vec![1]],
            from: SimTime(0),
            until: SimTime(100),
        });
        net.set_faults(faults);
        net.node_mut(0).forward_to = Some(1);
        net.send_external(0, "cmd", 9, SimTime(0));
        net.run_until_idle(100);
        assert!(net.node(1).received.is_empty());
        // After the partition heals, traffic flows.
        net.send_external(0, "cmd", 10, SimTime(200));
        net.run_until_idle(100);
        assert_eq!(net.node(1).received, vec![(0, 11)]);
    }

    #[test]
    fn lossy_link_drops_approximately_p() {
        let mut net = Network::new(NetConfig::uniform(1, 1), 99);
        let a = net.add_node(Counter::new());
        let b = net.add_node(Counter::new());
        let mut faults = FaultPlan::none();
        faults.drop_link(a, b, 0.5);
        net.set_faults(faults);
        net.node_mut(a).forward_to = Some(b);
        for i in 0..1000 {
            net.send_external(a, "cmd", i, SimTime(i));
        }
        net.run_until_idle(10_000);
        let got = net.node(b).received.len();
        assert!((300..700).contains(&got), "got {got} of 1000 at p=0.5");
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut net = two_node_net();
        net.send_external(0, "cmd", 1, SimTime(10));
        net.send_external(0, "cmd", 2, SimTime(20));
        net.run_until(SimTime(15));
        assert_eq!(net.node(0).received.len(), 1);
        assert_eq!(net.now(), SimTime(15));
        net.run_until(SimTime(25));
        assert_eq!(net.node(0).received.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn external_to_unknown_node_panics() {
        let mut net = two_node_net();
        net.send_external(5, "cmd", 1, SimTime(0));
    }

    #[test]
    fn obs_events_mirror_stats() {
        use std::rc::Rc;

        let ring = Rc::new(prb_obs::RingRecorder::new(4096));
        let obs = prb_obs::Obs::with_sink(ring.clone());
        let mut net = Network::new(NetConfig::uniform(1, 1), 5);
        let a = net.add_node(Counter::new());
        let b = net.add_node(Counter::new());
        net.set_obs(obs.clone());
        let mut faults = FaultPlan::none();
        faults.drop_link(a, b, 0.4);
        net.set_faults(faults);
        net.node_mut(a).forward_to = Some(b);
        for i in 0..200 {
            net.send_external(a, "cmd", i, SimTime(i));
        }
        net.run_until_idle(10_000);
        // Per-kind obs tallies equal the kernel's own stats.
        let counts = obs.msg_counts();
        for (kind, c) in &counts {
            let k = net.stats().kind(kind);
            assert_eq!(c.sent, k.sent, "{kind} sent");
            assert_eq!(c.delivered, k.delivered, "{kind} delivered");
            assert_eq!(c.dropped, k.dropped, "{kind} dropped");
        }
        assert_eq!(
            counts.values().map(|c| c.sent).sum::<u64>(),
            net.stats().total_sent()
        );
        assert!(ring.total_recorded() > 0);
        // Node-to-node deliveries carry latencies within the delay
        // bounds (external injections measure scheduling gap instead).
        for e in ring.events() {
            if let prb_obs::EventKind::MsgDelivered {
                msg: "fwd",
                latency,
                ..
            } = e.kind
            {
                assert_eq!(latency, 1, "uniform(1,1) kernel");
            }
        }
    }

    #[test]
    fn stats_track_sent_and_delivered() {
        let mut net = two_node_net();
        net.node_mut(0).forward_to = Some(1);
        net.send_external(0, "cmd", 1, SimTime(0));
        net.run_until_idle(100);
        assert_eq!(net.stats().kind("cmd").sent, 1);
        assert_eq!(net.stats().kind("cmd").delivered, 1);
        assert_eq!(net.stats().kind("fwd").sent, 1);
        assert_eq!(net.stats().kind("fwd").delivered, 1);
    }
}

//! # prb-net
//!
//! Deterministic discrete-event network simulation substrate for the `prb`
//! permissioned blockchain (reproduction of *"An Efficient Permissioned
//! Blockchain with Provable Reputation Mechanism"*, ICDCS 2021).
//!
//! The paper's system model (§3.1) is a synchronous network: bounded message
//! delay Δ, bounded processing delay, and bounded-drift local clocks. This
//! crate provides exactly that model, plus the machinery the protocol
//! needs on top of it:
//!
//! - [`time`] — global simulated time and drifting local clocks,
//! - [`sim`] — the event kernel: [`sim::Network`], [`sim::Actor`],
//!   [`sim::Context`], timers, deterministic scheduling,
//! - [`order`] — atomic (total-order) broadcast primitives
//!   ([`order::Sequencer`] / [`order::OrderedInbox`]),
//! - [`fault`] — crash, loss and partition injection,
//! - [`retry`] — ack-based reliable delivery with exponential backoff
//!   and deterministic jitter for critical protocol hops,
//! - [`health`] — deterministic last-seen tracking that feeds the
//!   membership layer's silence-decay and eviction timers (E17),
//! - [`topology`] — the l/n/m three-tier wiring with `r·l = s·n`,
//! - [`stats`] — per-kind message accounting for the complexity
//!   experiments (E6).
//!
//! # Quickstart
//!
//! ```
//! use prb_net::sim::{Actor, Context, NetConfig, Network};
//! use prb_net::message::Envelope;
//! use prb_net::time::SimTime;
//!
//! struct Echo(Option<usize>);
//! impl Actor for Echo {
//!     type Msg = String;
//!     fn on_message(&mut self, env: Envelope<String>, ctx: &mut Context<'_, String>) {
//!         if let Some(peer) = self.0.take() {
//!             ctx.send(peer, "echo", env.payload);
//!         }
//!     }
//! }
//!
//! let mut net = Network::new(NetConfig::uniform(1, 4), 7);
//! let a = net.add_node(Echo(None));
//! let b = net.add_node(Echo(Some(a)));
//! net.send_external(b, "cmd", "hello".into(), SimTime(0));
//! net.run_until_idle(10);
//! assert_eq!(net.stats().kind("echo").delivered, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod health;
pub mod message;
pub mod order;
pub mod retry;
pub mod sim;
pub mod stats;
pub mod time;
pub mod topology;

pub use health::PeerHealth;
pub use message::{Envelope, NodeIdx, TimerId, EXTERNAL};
pub use retry::{ReliableSender, RetryConfig, RetryStats};
pub use sim::{Actor, Context, NetConfig, Network};
pub use time::{SimDuration, SimTime};

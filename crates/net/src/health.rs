//! Peer-health tracking for membership under churn (E17).
//!
//! A governor deciding whether a member has gone *silent* needs a
//! deterministic, clock-driven record of when each peer last showed
//! signs of life. [`PeerHealth`] is that record: callers feed it
//! `record_seen` on every authenticated message from a peer and ask
//! `suspects` at round boundaries. Everything is driven by the caller's
//! simulated clock — no wall time, no RNG — so two runs of the same
//! schedule produce identical suspicion verdicts, and the eviction
//! proposals built on them stay byte-reproducible.
//!
//! The tracker is policy-free: it reports *who is silent for how long*;
//! the membership layer decides what silence threshold warrants a decay
//! step or an eviction proposal.

use std::collections::BTreeMap;

use crate::message::NodeIdx;
use crate::time::{SimDuration, SimTime};

/// Deterministic last-seen tracking over a set of watched peers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PeerHealth {
    last_seen: BTreeMap<NodeIdx, SimTime>,
}

impl PeerHealth {
    /// An empty tracker.
    pub fn new() -> Self {
        PeerHealth::default()
    }

    /// Starts (or restarts) watching `peer`, treating `now` as its last
    /// sign of life — a freshly admitted member is not instantly silent.
    pub fn watch(&mut self, peer: NodeIdx, now: SimTime) {
        self.last_seen.insert(peer, now);
    }

    /// Stops watching `peer` (it left or was evicted). Idempotent.
    pub fn unwatch(&mut self, peer: NodeIdx) {
        self.last_seen.remove(&peer);
    }

    /// Whether `peer` is currently watched.
    pub fn is_watched(&self, peer: NodeIdx) -> bool {
        self.last_seen.contains_key(&peer)
    }

    /// Number of watched peers.
    pub fn watched(&self) -> usize {
        self.last_seen.len()
    }

    /// Records an authenticated sign of life from `peer` at `now`.
    /// Ignored for unwatched peers (stale traffic from a departed node
    /// must not resurrect it).
    pub fn record_seen(&mut self, peer: NodeIdx, now: SimTime) {
        if let Some(t) = self.last_seen.get_mut(&peer) {
            if now.0 > t.0 {
                *t = now;
            }
        }
    }

    /// How long `peer` has been silent as of `now`; `None` when not
    /// watched.
    pub fn silent_for(&self, peer: NodeIdx, now: SimTime) -> Option<SimDuration> {
        self.last_seen
            .get(&peer)
            .map(|t| SimDuration(now.0.saturating_sub(t.0)))
    }

    /// The watched peers silent for at least `threshold` as of `now`,
    /// in ascending index order (deterministic).
    pub fn suspects(&self, now: SimTime, threshold: SimDuration) -> Vec<NodeIdx> {
        self.last_seen
            .iter()
            .filter(|(_, t)| now.0.saturating_sub(t.0) >= threshold.0)
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_watch_is_not_silent() {
        let mut h = PeerHealth::new();
        h.watch(3, SimTime(100));
        assert_eq!(h.silent_for(3, SimTime(100)), Some(SimDuration(0)));
        assert!(h.suspects(SimTime(100), SimDuration(1)).is_empty());
    }

    #[test]
    fn silence_accumulates_and_seen_resets_it() {
        let mut h = PeerHealth::new();
        h.watch(1, SimTime(0));
        h.watch(2, SimTime(0));
        h.record_seen(1, SimTime(90));
        assert_eq!(h.silent_for(1, SimTime(100)), Some(SimDuration(10)));
        assert_eq!(h.silent_for(2, SimTime(100)), Some(SimDuration(100)));
        assert_eq!(h.suspects(SimTime(100), SimDuration(50)), vec![2]);
    }

    #[test]
    fn out_of_order_seen_never_moves_last_seen_backwards() {
        let mut h = PeerHealth::new();
        h.watch(1, SimTime(0));
        h.record_seen(1, SimTime(80));
        h.record_seen(1, SimTime(40)); // late-delivered older message
        assert_eq!(h.silent_for(1, SimTime(100)), Some(SimDuration(20)));
    }

    #[test]
    fn departed_peers_stay_gone() {
        let mut h = PeerHealth::new();
        h.watch(5, SimTime(0));
        h.unwatch(5);
        assert!(!h.is_watched(5));
        // Stale traffic from a gone node must not resurrect it.
        h.record_seen(5, SimTime(10));
        assert_eq!(h.silent_for(5, SimTime(20)), None);
        assert!(h.suspects(SimTime(1_000), SimDuration(0)).is_empty());
        h.unwatch(5); // idempotent
    }

    #[test]
    fn suspects_are_sorted_and_threshold_inclusive() {
        let mut h = PeerHealth::new();
        for p in [9, 2, 7] {
            h.watch(p, SimTime(0));
        }
        h.record_seen(7, SimTime(50));
        assert_eq!(h.suspects(SimTime(100), SimDuration(100)), vec![2, 9]);
        assert_eq!(h.suspects(SimTime(100), SimDuration(50)), vec![2, 7, 9]);
        assert_eq!(h.watched(), 3);
    }
}

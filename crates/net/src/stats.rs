//! Message accounting for complexity experiments.
//!
//! §4.1 of the paper claims `O(b_limit · m)` communication for an ordinary
//! block and `O(m²)` for a stake-transform block. [`MessageStats`] counts
//! every send/delivery/drop per message kind so experiment E6 can measure
//! those shapes directly.

use std::collections::BTreeMap;
use std::fmt;

/// Per-kind message counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Messages handed to the kernel for sending.
    pub sent: u64,
    /// Messages actually delivered to a live receiver.
    pub delivered: u64,
    /// Messages dropped (faults, crashes, partitions).
    pub dropped: u64,
    /// Sum of declared payload sizes of sent messages, in bytes.
    pub bytes_sent: u64,
    /// Sum of declared payload sizes of delivered messages, in bytes.
    pub bytes_delivered: u64,
    /// Sum of declared payload sizes of dropped messages, in bytes.
    pub bytes_dropped: u64,
}

/// Aggregated network statistics, broken down by message kind.
///
/// Kinds are `&'static str` tags chosen by the sending actor (e.g.
/// `"tx-upload"`, `"block-proposal"`).
///
/// Equality compares every per-kind counter; the determinism regression
/// tests rely on this to show two same-seed runs exchanged byte-identical
/// traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MessageStats {
    by_kind: BTreeMap<&'static str, KindStats>,
    timers_fired: u64,
}

impl MessageStats {
    /// Fresh, all-zero statistics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_sent(&mut self, kind: &'static str, bytes: usize) {
        let entry = self.by_kind.entry(kind).or_default();
        entry.sent += 1;
        entry.bytes_sent += bytes as u64;
    }

    pub(crate) fn record_delivered(&mut self, kind: &'static str, bytes: usize) {
        let entry = self.by_kind.entry(kind).or_default();
        entry.delivered += 1;
        entry.bytes_delivered += bytes as u64;
    }

    pub(crate) fn record_dropped(&mut self, kind: &'static str, bytes: usize) {
        let entry = self.by_kind.entry(kind).or_default();
        entry.dropped += 1;
        entry.bytes_dropped += bytes as u64;
    }

    pub(crate) fn record_timer(&mut self) {
        self.timers_fired += 1;
    }

    /// Counters for one message kind (zeros if never seen).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.by_kind.get(kind).cloned().unwrap_or_default()
    }

    /// Iterates over all kinds in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, &KindStats)> {
        self.by_kind.iter().map(|(k, v)| (*k, v))
    }

    /// Total messages sent across all kinds.
    pub fn total_sent(&self) -> u64 {
        self.by_kind.values().map(|k| k.sent).sum()
    }

    /// Total messages delivered across all kinds.
    pub fn total_delivered(&self) -> u64 {
        self.by_kind.values().map(|k| k.delivered).sum()
    }

    /// Total messages dropped across all kinds.
    pub fn total_dropped(&self) -> u64 {
        self.by_kind.values().map(|k| k.dropped).sum()
    }

    /// Total declared bytes sent.
    pub fn total_bytes_sent(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes_sent).sum()
    }

    /// Total declared bytes delivered (effective bandwidth).
    pub fn total_bytes_delivered(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes_delivered).sum()
    }

    /// Total declared bytes dropped (attempted minus effective).
    pub fn total_bytes_dropped(&self) -> u64 {
        self.by_kind.values().map(|k| k.bytes_dropped).sum()
    }

    /// Number of timer events fired.
    pub fn timers_fired(&self) -> u64 {
        self.timers_fired
    }

    /// Resets all counters (e.g. between measurement windows).
    pub fn reset(&mut self) {
        self.by_kind.clear();
        self.timers_fired = 0;
    }
}

impl fmt::Display for MessageStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<24} {:>10} {:>10} {:>8} {:>12} {:>12}",
            "kind", "sent", "delivered", "dropped", "bytes-sent", "bytes-dlvd"
        )?;
        for (kind, stats) in self.iter() {
            writeln!(
                f,
                "{:<24} {:>10} {:>10} {:>8} {:>12} {:>12}",
                kind,
                stats.sent,
                stats.delivered,
                stats.dropped,
                stats.bytes_sent,
                stats.bytes_delivered
            )?;
        }
        write!(f, "timers fired: {}", self.timers_fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = MessageStats::new();
        s.record_sent("tx", 100);
        s.record_sent("tx", 50);
        s.record_delivered("tx", 100);
        s.record_dropped("tx", 50);
        s.record_sent("block", 10);
        assert_eq!(s.kind("tx").sent, 2);
        assert_eq!(s.kind("tx").delivered, 1);
        assert_eq!(s.kind("tx").dropped, 1);
        assert_eq!(s.kind("tx").bytes_sent, 150);
        assert_eq!(s.kind("tx").bytes_delivered, 100);
        assert_eq!(s.kind("tx").bytes_dropped, 50);
        assert_eq!(s.total_sent(), 3);
        assert_eq!(s.total_bytes_sent(), 160);
        assert_eq!(s.total_bytes_delivered(), 100);
        assert_eq!(s.total_bytes_dropped(), 50);
        assert_eq!(s.kind("unknown"), KindStats::default());
    }

    #[test]
    fn reset_clears() {
        let mut s = MessageStats::new();
        s.record_sent("tx", 1);
        s.record_timer();
        s.reset();
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.timers_fired(), 0);
    }

    #[test]
    fn display_renders_all_kinds() {
        let mut s = MessageStats::new();
        s.record_sent("alpha", 5);
        s.record_sent("beta", 6);
        let text = s.to_string();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("timers fired: 0"));
    }

    #[test]
    fn iter_is_sorted() {
        let mut s = MessageStats::new();
        s.record_sent("zz", 0);
        s.record_sent("aa", 0);
        let kinds: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["aa", "zz"]);
    }
}

//! Message envelopes and node addressing for the simulation kernel.

use std::fmt;

use crate::time::SimTime;

/// Index of a node within a [`crate::sim::Network`].
pub type NodeIdx = usize;

/// Pseudo-sender for messages injected by the simulation driver (e.g.
/// round-start commands) rather than by another node.
pub const EXTERNAL: NodeIdx = usize::MAX;

/// A message in flight or being delivered.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Sending node, or [`EXTERNAL`] for driver-injected messages.
    pub from: NodeIdx,
    /// Receiving node.
    pub to: NodeIdx,
    /// Statistic/debugging tag chosen by the sender.
    pub kind: &'static str,
    /// Declared payload size in bytes (for bandwidth accounting only).
    pub size: usize,
    /// When the message was sent.
    pub sent_at: SimTime,
    /// The payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// Whether this message was injected by the driver.
    pub fn is_external(&self) -> bool {
        self.from == EXTERNAL
    }
}

/// Identifier of a pending timer, unique within one network run.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub(crate) u64);

impl fmt::Debug for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TimerId({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn external_detection() {
        let env = Envelope {
            from: EXTERNAL,
            to: 0,
            kind: "cmd",
            size: 0,
            sent_at: SimTime::ZERO,
            payload: (),
        };
        assert!(env.is_external());
        let env = Envelope { from: 1, ..env };
        assert!(!env.is_external());
    }
}

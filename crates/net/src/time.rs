//! Simulated time: global ticks plus per-node drifting local clocks.
//!
//! The paper's system model (§3.1) is synchronous: *"there is a known upper
//! bound on processing delays, message transmission delays, each node is
//! equipped with a local physical clock and there is an upper bound on the
//! rate at which any local clock deviates from a global real-time clock"*.
//! [`SimTime`] is the global real-time clock of the simulation;
//! [`LocalClock`] models a node's bounded-drift physical clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in abstract ticks.
///
/// Experiments interpret one tick as one microsecond when they need a human
/// unit, but nothing in the kernel depends on the interpretation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Ticks since time zero.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + rhs`, or `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// `self + rhs`, clamped to [`SimTime::MAX`] on overflow. The only
    /// arithmetic that may legitimately saturate — use it (not `+`) when
    /// clamping to "never" is the intended semantics.
    pub fn saturating_add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration of `n` ticks.
    pub fn from_ticks(n: u64) -> Self {
        SimDuration(n)
    }

    /// Number of ticks.
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// `self + rhs`, or `None` on overflow.
    pub fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(rhs.0).map(SimDuration)
    }

    /// `self + rhs`, clamped to `u64::MAX` ticks on overflow.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        // Overflow here is a scheduling bug (an event pushed past the end
        // of representable time), not a value the kernel can act on: the
        // saturated result silently reorders timers that should have been
        // distinct. Loudly reject it in debug builds; saturate in release
        // so a long-running sim degrades instead of aborting.
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "SimTime overflow: {self:?} + {rhs:?} exceeds representable time"
        );
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "SimDuration overflow: {self:?} + {rhs:?} exceeds u64 ticks"
        );
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

/// A node's local physical clock with bounded drift.
///
/// Local time is `offset + global * rate`, with `rate = rate_ppm / 10^6`
/// expressed in parts-per-million so a `rate_ppm` of `1_000_000` is a
/// perfect clock and `1_000_100` runs 100 ppm fast. The synchrony
/// assumption bounds `|rate_ppm - 10^6|`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LocalClock {
    offset: u64,
    rate_ppm: u64,
}

impl Default for LocalClock {
    fn default() -> Self {
        Self::perfect()
    }
}

impl LocalClock {
    /// A drift-free clock with zero offset.
    pub fn perfect() -> Self {
        LocalClock {
            offset: 0,
            rate_ppm: 1_000_000,
        }
    }

    /// A clock with the given start offset and rate (ppm of real time).
    ///
    /// # Panics
    ///
    /// Panics if `rate_ppm` is zero (a stopped clock violates the model).
    pub fn with_drift(offset: u64, rate_ppm: u64) -> Self {
        assert!(rate_ppm > 0, "clock rate must be positive");
        LocalClock { offset, rate_ppm }
    }

    /// Reads the local clock at global time `now`.
    pub fn read(&self, now: SimTime) -> SimTime {
        let scaled = (now.0 as u128 * self.rate_ppm as u128 / 1_000_000) as u64;
        SimTime(self.offset.saturating_add(scaled))
    }

    /// Maximum absolute skew versus a perfect clock over `horizon` ticks.
    pub fn max_skew(&self, horizon: SimDuration) -> SimDuration {
        let drift = (self.rate_ppm as i128 - 1_000_000).unsigned_abs();
        let skew = (horizon.0 as u128 * drift / 1_000_000) as u64;
        SimDuration(skew.saturating_add(self.offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic() {
        let t = SimTime(100) + SimDuration(50);
        assert_eq!(t, SimTime(150));
        assert_eq!(t - SimTime(100), SimDuration(50));
        assert_eq!(SimTime(10).since(SimTime(50)), SimDuration::ZERO);
        assert_eq!(SimDuration(2) + SimDuration(3), SimDuration(5));
    }

    #[test]
    fn saturation_at_extremes() {
        // Intentional clamping goes through the explicit saturating API;
        // the `+` operators assert on overflow in debug builds.
        assert_eq!(SimTime::MAX.saturating_add(SimDuration(1)), SimTime::MAX);
        assert_eq!(
            SimDuration(u64::MAX).saturating_add(SimDuration(1)),
            SimDuration(u64::MAX)
        );
        assert_eq!(SimTime::MAX.checked_add(SimDuration(1)), None);
        assert_eq!(SimDuration(u64::MAX).checked_add(SimDuration(1)), None);
    }

    #[test]
    fn near_max_arithmetic_is_exact() {
        // Regression: arithmetic that *fits* near the top of the range must
        // stay exact — the old silent saturation could only be told apart
        // from a correct result by pinning these values.
        let near = SimTime(u64::MAX - 10);
        assert_eq!(near + SimDuration(10), SimTime::MAX);
        assert_eq!(near.checked_add(SimDuration(10)), Some(SimTime::MAX));
        assert_eq!(near.checked_add(SimDuration(11)), None);
        assert_eq!(SimTime::MAX.since(near), SimDuration(10));
        assert_eq!(
            SimDuration(u64::MAX - 1) + SimDuration(1),
            SimDuration(u64::MAX)
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SimTime overflow")]
    fn overflowing_time_add_panics_in_debug() {
        let _ = SimTime::MAX + SimDuration(1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "SimDuration overflow")]
    fn overflowing_duration_add_panics_in_debug() {
        let _ = SimDuration(u64::MAX) + SimDuration(1);
    }

    #[test]
    fn perfect_clock_tracks_global() {
        let c = LocalClock::perfect();
        assert_eq!(c.read(SimTime(12345)), SimTime(12345));
        assert_eq!(c.max_skew(SimDuration(1_000_000)), SimDuration::ZERO);
    }

    #[test]
    fn fast_clock_runs_ahead() {
        let c = LocalClock::with_drift(0, 1_000_100); // 100 ppm fast
        assert_eq!(c.read(SimTime(1_000_000)), SimTime(1_000_100));
        assert_eq!(c.max_skew(SimDuration(1_000_000)), SimDuration(100));
    }

    #[test]
    fn slow_clock_lags() {
        let c = LocalClock::with_drift(10, 999_900);
        assert_eq!(c.read(SimTime(1_000_000)), SimTime(999_910));
        assert_eq!(c.max_skew(SimDuration(1_000_000)), SimDuration(110));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stopped_clock_panics() {
        LocalClock::with_drift(0, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime(7).to_string(), "7");
        assert_eq!(format!("{:?}", SimTime(7)), "t=7");
        assert_eq!(SimDuration(3).to_string(), "3 ticks");
    }
}

//! Soak tests for the simulation kernel: large message volumes, mixed
//! faults, and accounting invariants.

use prb_net::fault::{FaultPlan, Partition};
use prb_net::message::{Envelope, TimerId};
use prb_net::order::{ChannelId, OrderedInbox, Sequencer};
use prb_net::sim::{Actor, Context, NetConfig, Network};
use prb_net::time::{SimDuration, SimTime};

/// A gossiping node: re-broadcasts each received value once (TTL in the
/// payload), tracking delivery times and per-channel ordering.
struct Gossip {
    peers: Vec<usize>,
    inbox: OrderedInbox<u64>,
    delivered: Vec<(u64, u64)>, // (value, delivery_tick)
    max_latency: u64,
    timers: u32,
}

#[derive(Clone, Debug)]
enum Msg {
    /// (ttl, value) — rebroadcast with ttl−1 until 0.
    Flood(u8, u64),
    /// Sequenced payload on the sender's channel.
    Ordered { seq: u64, value: u64 },
}

impl Actor for Gossip {
    type Msg = Msg;

    fn on_message(&mut self, env: Envelope<Msg>, ctx: &mut Context<'_, Msg>) {
        match env.payload {
            Msg::Flood(ttl, value) => {
                if !env.is_external() {
                    // Externals are scheduled at absolute times, not sent
                    // over a link; only real traffic counts for latency.
                    let latency = ctx.now().ticks().saturating_sub(env.sent_at.ticks());
                    self.max_latency = self.max_latency.max(latency);
                }
                self.delivered.push((value, ctx.now().ticks()));
                if ttl > 0 {
                    for &p in &self.peers.clone() {
                        ctx.send(p, "flood", Msg::Flood(ttl - 1, value + 1));
                    }
                    ctx.set_timer(SimDuration(5));
                }
            }
            Msg::Ordered { seq, value } => {
                let channel = ChannelId(env.from as u64);
                for v in self.inbox.push(channel, seq, value) {
                    self.delivered.push((v, ctx.now().ticks()));
                }
            }
        }
    }

    fn on_timer(&mut self, _t: TimerId, _ctx: &mut Context<'_, Msg>) {
        self.timers += 1;
    }
}

fn build(n: usize, seed: u64) -> Network<Gossip> {
    let mut net = Network::new(NetConfig::uniform(1, 10), seed);
    for i in 0..n {
        let peers = (0..n).filter(|&p| p != i).collect();
        net.add_node(Gossip {
            peers,
            inbox: OrderedInbox::new(),
            delivered: Vec::new(),
            max_latency: 0,
            timers: 0,
        });
    }
    net
}

#[test]
fn flood_of_tens_of_thousands_of_events_stays_consistent() {
    let n = 8;
    let mut net = build(n, 1);
    for i in 0..20 {
        net.send_external(i % n, "flood", Msg::Flood(3, 0), SimTime(i as u64));
    }
    let processed = net.run_until_idle(2_000_000);
    assert!(processed > 5_000, "only {processed} events");
    let stats = net.stats();
    // Accounting: nothing dropped without a fault plan, and every sent
    // message (externals included) was delivered.
    assert_eq!(stats.total_dropped(), 0);
    assert_eq!(stats.total_delivered(), stats.total_sent());
    // Latency bound: no delivery exceeded the configured Δ.
    for i in 0..n {
        assert!(net.node(i).max_latency <= 10, "node {i} saw late delivery");
    }
    // Timers all fired.
    assert!(stats.timers_fired() > 0);
}

#[test]
fn ordered_channels_deliver_in_sequence_under_adversarial_arrival() {
    let mut net = build(2, 7);
    // Inject 500 sequenced values in a deterministic non-monotonic order:
    // reversed 16-element chunks, so almost every arrival is a gap.
    let mut order: Vec<u64> = Vec::new();
    for chunk_start in (0..500u64).step_by(16) {
        let end = (chunk_start + 16).min(500);
        order.extend((chunk_start..end).rev());
    }
    assert_eq!(order.len(), 500);
    for (i, &seq) in order.iter().enumerate() {
        net.send_external(
            0,
            "ordered",
            Msg::Ordered { seq, value: seq },
            SimTime(i as u64),
        );
    }
    net.run_until_idle(10_000);
    // Externals arrive from EXTERNAL, which maps to one channel: the inbox
    // must release every value in ascending order.
    let delivered: Vec<u64> = net.node(0).delivered.iter().map(|(v, _)| *v).collect();
    assert_eq!(delivered.len(), 500);
    let mut sorted = delivered.clone();
    sorted.sort_unstable();
    assert_eq!(delivered, sorted, "out-of-order release");
}

#[test]
fn faults_account_exactly() {
    let n = 4;
    let mut net = build(n, 13);
    let mut faults = FaultPlan::none();
    faults.crash(3, SimTime(50));
    faults.partition(Partition {
        groups: vec![vec![0], vec![1, 2]],
        from: SimTime(0),
        until: SimTime(30),
    });
    net.set_faults(faults);
    for i in 0..10 {
        net.send_external(i % n, "flood", Msg::Flood(2, 0), SimTime(i as u64 * 20));
    }
    net.run_until_idle(1_000_000);
    let stats = net.stats();
    assert_eq!(
        stats.total_sent(),
        stats.total_delivered() + stats.total_dropped(),
        "every sent message is either delivered or dropped"
    );
    assert!(stats.total_dropped() > 0, "faults must drop something");
    // The crashed node stopped participating.
    let after_crash: Vec<_> = net
        .node(3)
        .delivered
        .iter()
        .filter(|(_, t)| *t >= 50)
        .collect();
    assert!(after_crash.is_empty(), "crashed node kept receiving");
}

#[test]
fn determinism_under_load() {
    let run = |seed: u64| {
        let mut net = build(6, seed);
        for i in 0..12 {
            net.send_external(i % 6, "flood", Msg::Flood(3, 0), SimTime(i as u64));
        }
        net.run_until_idle(1_000_000);
        (
            net.now(),
            net.stats().total_sent(),
            net.node(0).delivered.len(),
        )
    };
    assert_eq!(run(99), run(99));
    assert_ne!(run(99), run(100));
}

#[test]
fn sequencer_streams_compose_with_network() {
    // Sanity that Sequencer's numbering matches what OrderedInbox expects
    // when used across rounds, mirroring the collector→governor usage.
    let mut seq = Sequencer::new();
    let mut inbox = OrderedInbox::new();
    let mut delivered = Vec::new();
    for round in 0..50u64 {
        let channel = ChannelId(round % 3);
        let s = seq.assign(channel);
        delivered.extend(inbox.push(channel, s, (round % 3, s)));
    }
    assert_eq!(delivered.len(), 50);
    for (channel, values) in [(0u64, 17), (1, 17), (2, 16)] {
        let count = delivered.iter().filter(|(c, _)| *c == channel).count();
        assert_eq!(count, values, "channel {channel}");
    }
}

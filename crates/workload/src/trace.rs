//! Workload traces: record a generated workload once, replay it under any
//! configuration.
//!
//! Comparing two protocol configurations (e.g. `sim` vs real Schnorr
//! crypto, or different `f` values) is only apples-to-apples when both
//! runs see the *identical* transaction stream. A [`Trace`] records the
//! per-provider, per-round transactions of any [`Workload`]; a
//! [`TraceWorkload`] replays them verbatim.

use std::collections::HashMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use prb_core::workload::{GeneratedTx, Workload};

/// A recorded transaction stream: `(provider, round) → [GeneratedTx]` in
/// generation order.
#[derive(Clone, Default)]
pub struct Trace {
    txs: HashMap<(u32, u64), Vec<GeneratedTx>>,
    name: String,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Trace")
            .field("name", &self.name)
            .field("cells", &self.txs.len())
            .field("transactions", &self.len())
            .finish()
    }
}

impl Trace {
    /// Records `rounds × providers × per_round` transactions from `inner`,
    /// using the same RNG discipline the simulation driver would (one
    /// seeded stream, provider-major within a round).
    pub fn record(
        inner: &mut dyn Workload,
        providers: u32,
        rounds: u64,
        per_round: u32,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut txs: HashMap<(u32, u64), Vec<GeneratedTx>> = HashMap::new();
        for round in 1..=rounds {
            for provider in 0..providers {
                let cell = txs.entry((provider, round)).or_default();
                for _ in 0..per_round {
                    cell.push(inner.next_tx(provider, round, &mut rng));
                }
            }
        }
        Trace {
            txs,
            name: format!("trace:{}", inner.name()),
        }
    }

    /// Total recorded transactions.
    pub fn len(&self) -> usize {
        self.txs.values().map(Vec::len).sum()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// The transactions of one `(provider, round)` cell.
    pub fn cell(&self, provider: u32, round: u64) -> &[GeneratedTx] {
        self.txs
            .get(&(provider, round))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of genuinely invalid transactions recorded.
    pub fn invalid_count(&self) -> usize {
        self.txs
            .values()
            .flat_map(|v| v.iter())
            .filter(|t| !t.valid)
            .count()
    }

    /// Turns the trace into a replayable workload.
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload {
            trace: self,
            cursors: HashMap::new(),
        }
    }
}

/// Replays a [`Trace`] verbatim; exhausted cells fall back to empty,
/// clearly-invalid filler so a longer-than-recorded run fails loudly in
/// experiments (zero-length payload, invalid).
pub struct TraceWorkload {
    trace: Trace,
    cursors: HashMap<(u32, u64), usize>,
}

impl fmt::Debug for TraceWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceWorkload")
            .field("trace", &self.trace)
            .finish()
    }
}

impl Workload for TraceWorkload {
    fn next_tx(&mut self, provider: u32, round: u64, _rng: &mut StdRng) -> GeneratedTx {
        let cursor = self.cursors.entry((provider, round)).or_insert(0);
        let cell = self.trace.cell(provider, round);
        let tx = cell.get(*cursor).cloned().unwrap_or(GeneratedTx {
            data: Vec::new(),
            valid: false,
        });
        *cursor += 1;
        tx
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carshare::CarShareWorkload;

    #[test]
    fn record_covers_every_cell() {
        let mut inner = CarShareWorkload::new(0.3);
        let trace = Trace::record(&mut inner, 4, 3, 5, 1);
        assert_eq!(trace.len(), 4 * 3 * 5);
        assert!(!trace.is_empty());
        for p in 0..4 {
            for r in 1..=3 {
                assert_eq!(trace.cell(p, r).len(), 5);
            }
        }
        assert_eq!(trace.cell(9, 1).len(), 0);
        assert!(trace.invalid_count() > 0);
    }

    #[test]
    fn replay_is_verbatim_and_in_order() {
        let mut inner = CarShareWorkload::new(0.5);
        let trace = Trace::record(&mut inner, 2, 2, 3, 7);
        let expected: Vec<GeneratedTx> = (1..=2u64)
            .flat_map(|r| (0..2u32).flat_map(move |p| (0..3).map(move |k| (r, p, k))))
            .map(|(r, p, k)| trace.cell(p, r)[k].clone())
            .collect();
        let mut replay = trace.clone().into_workload();
        let mut rng = StdRng::seed_from_u64(999); // must be irrelevant
        let mut got = Vec::new();
        for r in 1..=2u64 {
            for p in 0..2u32 {
                for _ in 0..3 {
                    got.push(replay.next_tx(p, r, &mut rng));
                }
            }
        }
        assert_eq!(got, expected);
        assert!(replay.name().starts_with("trace:"));
    }

    #[test]
    fn exhausted_cells_produce_invalid_filler() {
        let mut inner = CarShareWorkload::new(0.0);
        let trace = Trace::record(&mut inner, 1, 1, 1, 3);
        let mut replay = trace.into_workload();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = replay.next_tx(0, 1, &mut rng);
        let filler = replay.next_tx(0, 1, &mut rng);
        assert!(!filler.valid);
        assert!(filler.data.is_empty());
    }

    #[test]
    fn identical_seeds_record_identical_traces() {
        let t1 = Trace::record(&mut CarShareWorkload::new(0.4), 3, 2, 4, 42);
        let t2 = Trace::record(&mut CarShareWorkload::new(0.4), 3, 2, 4, 42);
        for p in 0..3 {
            for r in 1..=2 {
                assert_eq!(t1.cell(p, r), t2.cell(p, r));
            }
        }
        let t3 = Trace::record(&mut CarShareWorkload::new(0.4), 3, 2, 4, 43);
        assert_ne!(t1.cell(0, 1), t3.cell(0, 1));
    }
}

//! # prb-workload
//!
//! Scenario workloads for the `prb` permissioned blockchain (reproduction
//! of *"An Efficient Permissioned Blockchain with Provable Reputation
//! Mechanism"*, ICDCS 2021):
//!
//! - [`carshare`] — the car-sharing market of §5.1 (users / drivers /
//!   schedulers as providers / collectors / governors),
//! - [`insurance`] — the insurance industry of §5.2 (policyholders /
//!   independent agents / insurance companies),
//! - [`adversary`] — the catalogue of named collector-adversary mixes
//!   shared by the experiment suite,
//! - [`trace`] — record/replay of transaction streams so different
//!   configurations can be compared on identical inputs.
//!
//! Both scenarios implement [`prb_core::workload::Workload`] and carry
//! structured payloads whose *decoded* validity always equals the oracle
//! bit, so experiments can audit ledgers at the domain level.
//!
//! # Quickstart
//!
//! ```
//! use prb_core::config::ProtocolConfig;
//! use prb_core::sim::Simulation;
//! use prb_workload::carshare::CarShareWorkload;
//!
//! let mut sim = Simulation::builder(ProtocolConfig::default())
//!     .workload(Box::new(CarShareWorkload::new(0.2)))
//!     .build()?;
//! sim.run(2);
//! assert!(sim.chains_agree());
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod carshare;
pub mod insurance;
pub mod scale;
pub mod trace;

pub use adversary::AdversaryMix;
pub use carshare::CarShareWorkload;
pub use insurance::InsuranceWorkload;
pub use scale::ScaleWorkload;
pub use trace::{Trace, TraceWorkload};

//! The E15 open-loop scale workload: 10⁵–10⁶ interned providers behind a
//! small pool of real signing identities.
//!
//! A simulated provider is *not* an object. It is an index `p` into two
//! arenas — a nonce slot (`Vec<u64>`, one word per provider) and, via
//! `p % pool_len`, a shared [`KeyPair`]. Nothing per-provider is
//! allocated on the arrival path: generating one arrival costs one nonce
//! increment, one payload build, and one real signature from the pooled
//! key. This is what lets the harness sweep arrival rates against a
//! million-provider population without a million keypairs or actor
//! structs.
//!
//! Arrival *times* are open-loop: [`ScaleWorkload::window`] draws a
//! deterministic Bernoulli-thinned uniform stream over a round window at
//! a configured rate (transactions per tick), assigning each arrival a
//! provider round-robin-with-jitter so load spreads across collectors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prb_core::scale::{Arrival, ScaleSim};
use prb_crypto::identity::NodeId;
use prb_crypto::signer::KeyPair;
use prb_ledger::transaction::{SignedTx, TxPayload};

/// Generator of open-loop arrivals over interned provider ids.
#[derive(Debug)]
pub struct ScaleWorkload {
    /// The real signing identities; provider `p` signs with
    /// `signers[p % signers.len()]`.
    signers: Vec<KeyPair>,
    /// Per-provider submission counters (`seq == nonce`): the only
    /// per-provider state in the whole harness, one `u64` each.
    nonces: Vec<u64>,
    /// Probability an arrival is genuinely invalid.
    invalid_rate: f64,
    /// Payload bytes per transaction.
    payload_len: usize,
    rng: StdRng,
    /// Round-robin cursor over providers.
    next_provider: u32,
    generated: u64,
}

impl ScaleWorkload {
    /// A workload over `providers` interned ids signing with the pool
    /// `signers` (clone it from [`ScaleSim::signer_pool`]).
    ///
    /// # Panics
    ///
    /// Panics if `signers` is empty or `providers` is zero.
    pub fn new(providers: u32, signers: Vec<KeyPair>, invalid_rate: f64, seed: u64) -> Self {
        assert!(!signers.is_empty(), "signer pool must be non-empty");
        assert!(providers > 0, "need at least one provider");
        ScaleWorkload {
            signers,
            nonces: vec![0; providers as usize],
            invalid_rate,
            payload_len: 32,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0xE15_E15)),
            next_provider: 0,
            generated: 0,
        }
    }

    /// Overrides the payload size (default 32 bytes).
    pub fn with_payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// A workload wired for `sim`: provider count and signer pool taken
    /// from the deployment, seeded from its config.
    pub fn for_sim(sim: &ScaleSim, invalid_rate: f64) -> Self {
        Self::new(
            sim.config().providers,
            sim.signer_pool().to_vec(),
            invalid_rate,
            sim.config().seed,
        )
    }

    /// Total arrivals generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// One arrival at tick `at` from the next provider in round-robin
    /// order (with a jitter draw so collector load is not perfectly
    /// periodic).
    pub fn next_arrival(&mut self, at: u64) -> Arrival {
        // Jitter: skip 0..3 providers so the stream does not walk the
        // topology in lockstep.
        let skip = self.rng.gen_range(0..4u32);
        let l = self.nonces.len() as u32;
        let provider = (self.next_provider + skip) % l;
        self.next_provider = (provider + 1) % l;
        self.arrival_from(at, provider)
    }

    /// One arrival at tick `at` from a specific provider.
    ///
    /// # Panics
    ///
    /// Panics if `provider` is out of range.
    pub fn arrival_from(&mut self, at: u64, provider: u32) -> Arrival {
        let seq = self.nonces[provider as usize];
        self.nonces[provider as usize] += 1;
        self.generated += 1;
        let valid = !(self.invalid_rate > 0.0 && self.rng.gen::<f64>() < self.invalid_rate);
        let mut data = vec![0u8; self.payload_len];
        self.rng.fill(&mut data[..]);
        let key = &self.signers[provider as usize % self.signers.len()];
        let tx = SignedTx::create(
            TxPayload {
                provider: NodeId::provider(provider),
                nonce: seq,
                data,
            },
            at,
            key,
        );
        Arrival {
            at,
            provider,
            seq,
            tx,
            valid,
        }
    }

    /// Open-loop arrivals for the round window `[t0, t0 + ticks)` at
    /// `rate` transactions per tick. The count is the deterministic
    /// expectation `⌊rate · ticks⌉` (no Poisson variance — the sweep
    /// wants the knee, not the noise), spread uniformly over the window.
    pub fn window(&mut self, t0: u64, ticks: u64, rate: f64) -> Vec<Arrival> {
        let count = (rate * ticks as f64).round() as u64;
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            // Uniform spread with sub-tick positions collapsed to ticks;
            // arrivals stay sorted by construction.
            let at = t0 + (i as f64 * ticks as f64 / count as f64) as u64;
            out.push(self.next_arrival(at.min(t0 + ticks - 1)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_core::config::{ProtocolConfig, RevealPolicy};

    fn sim() -> ScaleSim {
        ScaleSim::new(
            ProtocolConfig {
                providers: 1000,
                collectors: 4,
                governors: 3,
                replication: 2,
                tx_per_provider: 0,
                open_loop: true,
                reveal: RevealPolicy::ArgueOnly,
                seed: 5,
                ..Default::default()
            },
            8,
        )
        .unwrap()
    }

    #[test]
    fn window_matches_rate_and_stays_sorted() {
        let sim = sim();
        let mut wl = ScaleWorkload::for_sim(&sim, 0.0);
        let arrivals = wl.window(100, 200, 0.5);
        assert_eq!(arrivals.len(), 100);
        assert!(arrivals.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(arrivals.iter().all(|a| (100..300).contains(&a.at)));
        assert_eq!(wl.generated(), 100);
    }

    #[test]
    fn nonces_are_per_provider_contiguous() {
        let sim = sim();
        let mut wl = ScaleWorkload::for_sim(&sim, 0.0);
        let mut seen: Vec<Vec<u64>> = vec![Vec::new(); 1000];
        for a in wl.window(0, 1000, 2.0) {
            seen[a.provider as usize].push(a.seq);
        }
        for seqs in seen.iter().filter(|s| !s.is_empty()) {
            let expect: Vec<u64> = (0..seqs.len() as u64).collect();
            assert_eq!(seqs, &expect, "per-provider seq must be 0-based contiguous");
        }
    }

    #[test]
    fn generated_arrivals_commit_through_the_scale_sim() {
        use prb_obs::Obs;
        let mut sim = sim();
        sim.set_obs(Obs::counting());
        let mut wl = ScaleWorkload::for_sim(&sim, 0.2);
        let ticks = sim.round_ticks();
        let t0 = sim.next_round_start();
        let arrivals = wl.window(t0, ticks, 0.4);
        let injected = arrivals.len() as u64;
        sim.run_round(arrivals);
        sim.drain(4);
        // Invalid arrivals are screened out (checked-and-rejected), so
        // the closing invariant is accounting, not commit equality:
        // every submitted tx is either committed or dropped-with-reason.
        let counts = sim.obs().lifecycle_counts();
        assert_eq!(counts.submitted, injected);
        assert_eq!(counts.committed + counts.dropped, counts.submitted);
        assert_eq!(counts.open, 0, "no unaccounted transactions");
        assert!(counts.committed >= sim.committed().min(counts.submitted));
        assert!(sim.chains_agree());
    }

    #[test]
    fn deterministic_under_seed() {
        let sim0 = sim();
        let gen = || {
            let mut wl = ScaleWorkload::for_sim(&sim0, 0.3);
            wl.window(0, 500, 1.0)
                .into_iter()
                .map(|a| (a.at, a.provider, a.seq, a.valid, a.tx.id()))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(), gen());
    }
}

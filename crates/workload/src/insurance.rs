//! The insurance scenario (§5.2).
//!
//! Mapping from the paper: *potential policyholders* are providers whose
//! signed application materials are the transactions; *independent
//! agents* are collectors who verify the materials and label them;
//! *insurance companies* are governors who spot-check with a certain
//! probability and underwrite policies.
//!
//! An application is *valid* when its declared risk factors are internally
//! consistent and within the policy's underwriting rules. Invalid
//! applications model concealed medical history, impossible ages, and
//! inconsistent declarations — exactly the fraud §5.2 describes.

use rand::rngs::StdRng;
use rand::Rng;

use prb_core::workload::{GeneratedTx, Workload};

/// A critical-illness insurance application — the transaction payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Application {
    /// Applying policyholder (provider index).
    pub applicant: u32,
    /// Declared age in years.
    pub age: u8,
    /// Declared smoker status.
    pub smoker: bool,
    /// Declared pack-years of smoking history (0 for never-smokers).
    pub pack_years: u8,
    /// Number of declared prior hospitalizations.
    pub hospitalizations: u8,
    /// Declared weekly alcohol units.
    pub alcohol_units: u8,
    /// Requested coverage in thousands.
    pub coverage_k: u16,
}

impl Application {
    /// Underwriting rules: the scenario's ground-truth validity.
    ///
    /// - age must be 18..=75,
    /// - a never-smoker cannot declare pack-years,
    /// - more than 5 hospitalizations is uninsurable under this policy,
    /// - more than 60 weekly units is implausible (fraud indicator),
    /// - coverage is capped at 500k, scaled down past age 60.
    pub fn is_insurable(&self) -> bool {
        if !(18..=75).contains(&self.age) {
            return false;
        }
        if !self.smoker && self.pack_years > 0 {
            return false;
        }
        if self.hospitalizations > 5 {
            return false;
        }
        if self.alcohol_units > 60 {
            return false;
        }
        let cap = if self.age > 60 { 200 } else { 500 };
        self.coverage_k <= cap
    }

    /// A simple actuarial risk score in [0, 100] (used by examples).
    pub fn risk_score(&self) -> u32 {
        let mut score = self.age as u32 / 2;
        if self.smoker {
            score += 15 + self.pack_years as u32 / 2;
        }
        score += self.hospitalizations as u32 * 8;
        score += self.alcohol_units as u32 / 4;
        score.min(100)
    }

    /// Canonical payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11);
        out.extend_from_slice(&self.applicant.to_be_bytes());
        out.push(self.age);
        out.push(self.smoker as u8);
        out.push(self.pack_years);
        out.push(self.hospitalizations);
        out.push(self.alcohol_units);
        out.extend_from_slice(&self.coverage_k.to_be_bytes());
        out
    }

    /// Parses payload bytes written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 11 {
            return None;
        }
        Some(Application {
            applicant: u32::from_be_bytes(bytes[0..4].try_into().ok()?),
            age: bytes[4],
            smoker: bytes[5] != 0,
            pack_years: bytes[6],
            hospitalizations: bytes[7],
            alcohol_units: bytes[8],
            coverage_k: u16::from_be_bytes(bytes[9..11].try_into().ok()?),
        })
    }
}

/// Workload generating insurance applications with a tunable fraud rate.
#[derive(Clone, Debug)]
pub struct InsuranceWorkload {
    /// Probability a generated application conceals or fabricates facts.
    pub fraud_rate: f64,
}

impl InsuranceWorkload {
    /// A workload with the given fraud rate.
    ///
    /// # Panics
    ///
    /// Panics unless `fraud_rate ∈ [0, 1]`.
    pub fn new(fraud_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraud_rate));
        InsuranceWorkload { fraud_rate }
    }

    fn gen_application(&self, applicant: u32, fraudulent: bool, rng: &mut StdRng) -> Application {
        let smoker = rng.gen_bool(0.3);
        let mut app = Application {
            applicant,
            age: rng.gen_range(18..=75),
            smoker,
            pack_years: if smoker { rng.gen_range(1..=40) } else { 0 },
            hospitalizations: rng.gen_range(0..=5),
            alcohol_units: rng.gen_range(0..=60),
            coverage_k: rng.gen_range(50..=500),
        };
        if app.age > 60 {
            app.coverage_k = app.coverage_k.min(200);
        }
        if fraudulent {
            match rng.gen_range(0..4) {
                0 => app.age = rng.gen_range(76..=120), // age fraud
                1 => {
                    // Concealed smoking: declares non-smoker with history.
                    app.smoker = false;
                    app.pack_years = rng.gen_range(1..=40);
                }
                2 => app.hospitalizations = rng.gen_range(6..=20), // hidden history
                _ => {
                    // Over-insuring an elderly applicant.
                    app.age = rng.gen_range(61..=75);
                    app.coverage_k = rng.gen_range(201..=500);
                }
            }
        }
        app
    }
}

impl Workload for InsuranceWorkload {
    fn next_tx(&mut self, provider: u32, _round: u64, rng: &mut StdRng) -> GeneratedTx {
        let fraudulent = rng.gen::<f64>() < self.fraud_rate;
        let app = self.gen_application(provider, fraudulent, rng);
        GeneratedTx {
            valid: app.is_insurable(),
            data: app.to_bytes(),
        }
    }

    fn name(&self) -> &str {
        "insurance"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn base() -> Application {
        Application {
            applicant: 0,
            age: 40,
            smoker: false,
            pack_years: 0,
            hospitalizations: 1,
            alcohol_units: 10,
            coverage_k: 300,
        }
    }

    #[test]
    fn underwriting_rules() {
        assert!(base().is_insurable());
        assert!(!Application { age: 17, ..base() }.is_insurable());
        assert!(!Application { age: 76, ..base() }.is_insurable());
        assert!(!Application {
            pack_years: 5,
            ..base()
        }
        .is_insurable());
        assert!(Application {
            smoker: true,
            pack_years: 5,
            ..base()
        }
        .is_insurable());
        assert!(!Application {
            hospitalizations: 6,
            ..base()
        }
        .is_insurable());
        assert!(!Application {
            alcohol_units: 61,
            ..base()
        }
        .is_insurable());
        assert!(!Application {
            age: 61,
            coverage_k: 300,
            ..base()
        }
        .is_insurable());
        assert!(Application {
            age: 61,
            coverage_k: 200,
            ..base()
        }
        .is_insurable());
        assert!(!Application {
            coverage_k: 501,
            ..base()
        }
        .is_insurable());
    }

    #[test]
    fn risk_score_monotone_in_risk_factors() {
        let healthy = base();
        let smoker = Application {
            smoker: true,
            pack_years: 20,
            ..base()
        };
        let sick = Application {
            hospitalizations: 5,
            ..base()
        };
        assert!(smoker.risk_score() > healthy.risk_score());
        assert!(sick.risk_score() > healthy.risk_score());
        assert!(healthy.risk_score() <= 100);
    }

    #[test]
    fn bytes_roundtrip() {
        let app = Application {
            applicant: 9,
            age: 55,
            smoker: true,
            pack_years: 12,
            hospitalizations: 2,
            alcohol_units: 21,
            coverage_k: 450,
        };
        assert_eq!(Application::from_bytes(&app.to_bytes()), Some(app));
        assert_eq!(Application::from_bytes(&[0; 5]), None);
    }

    #[test]
    fn workload_truth_matches_payload() {
        let mut w = InsuranceWorkload::new(0.4);
        let mut rng = StdRng::seed_from_u64(3);
        let mut fraud = 0;
        for _ in 0..5_000 {
            let tx = w.next_tx(2, 0, &mut rng);
            let app = Application::from_bytes(&tx.data).unwrap();
            assert_eq!(tx.valid, app.is_insurable());
            if !tx.valid {
                fraud += 1;
            }
        }
        assert!((1_700..2_300).contains(&fraud), "{fraud}");
        assert_eq!(w.name(), "insurance");
    }

    #[test]
    fn honest_applications_always_insurable() {
        let mut w = InsuranceWorkload::new(0.0);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            assert!(w.next_tx(0, 0, &mut rng).valid);
        }
    }
}

//! Adversary schedules: named mixes of collector behaviours used across
//! the experiment suite, so every experiment draws its adversaries from
//! one audited catalogue.

use prb_core::behavior::CollectorProfile;

/// A named adversary mix over `n` collectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryMix {
    /// Everyone honest.
    AllHonest,
    /// One honest collector; the rest misreport at graded rates
    /// `0.2 + 0.6·i/n` (the Theorem 1 setting: at least one well-behaved
    /// collector exists).
    OneHonestRestNoisy,
    /// Half the collectors misreport at the given rate.
    HalfMisreport(u8),
    /// One concealer, one forger, one misreporter, rest honest.
    Zoo,
    /// Sleeper: everyone honest until the given round, after which half
    /// of them misreport at 0.8.
    Sleeper(u32),
}

impl AdversaryMix {
    /// Materializes the mix for `n` collectors.
    pub fn profiles(&self, n: u32) -> Vec<CollectorProfile> {
        match *self {
            AdversaryMix::AllHonest => vec![CollectorProfile::honest(); n as usize],
            AdversaryMix::OneHonestRestNoisy => (0..n)
                .map(|i| {
                    if i == 0 {
                        CollectorProfile::honest()
                    } else {
                        CollectorProfile::misreporter(0.2 + 0.6 * i as f64 / n as f64)
                    }
                })
                .collect(),
            AdversaryMix::HalfMisreport(percent) => (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        CollectorProfile::honest()
                    } else {
                        CollectorProfile::misreporter(percent as f64 / 100.0)
                    }
                })
                .collect(),
            AdversaryMix::Zoo => (0..n)
                .map(|i| match i {
                    0 => CollectorProfile::concealer(0.5),
                    1 => CollectorProfile::forger(0.3),
                    2 => CollectorProfile::misreporter(0.5),
                    _ => CollectorProfile::honest(),
                })
                .collect(),
            AdversaryMix::Sleeper(round) => (0..n)
                .map(|i| {
                    if i % 2 == 1 {
                        CollectorProfile::misreporter(0.8).sleeper(round as u64)
                    } else {
                        CollectorProfile::honest()
                    }
                })
                .collect(),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            AdversaryMix::AllHonest => "all-honest".into(),
            AdversaryMix::OneHonestRestNoisy => "one-honest-rest-noisy".into(),
            AdversaryMix::HalfMisreport(p) => format!("half-misreport-{p}"),
            AdversaryMix::Zoo => "zoo".into(),
            AdversaryMix::Sleeper(r) => format!("sleeper-{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_honest() {
        let profiles = AdversaryMix::AllHonest.profiles(4);
        assert_eq!(profiles.len(), 4);
        assert!(profiles.iter().all(|p| p.is_honest()));
    }

    #[test]
    fn one_honest_rest_noisy_keeps_expert_zero() {
        let profiles = AdversaryMix::OneHonestRestNoisy.profiles(8);
        assert!(profiles[0].is_honest());
        assert!(profiles[1..].iter().all(|p| p.flip_prob > 0.0));
        // Rates are graded and bounded.
        assert!(profiles[7].flip_prob > profiles[1].flip_prob);
        assert!(profiles[7].flip_prob < 1.0);
    }

    #[test]
    fn half_misreport_alternates() {
        let profiles = AdversaryMix::HalfMisreport(50).profiles(6);
        assert!(profiles[0].is_honest());
        assert_eq!(profiles[1].flip_prob, 0.5);
        assert!(profiles[2].is_honest());
    }

    #[test]
    fn zoo_has_all_three_classes() {
        let profiles = AdversaryMix::Zoo.profiles(8);
        assert!(profiles[0].drop_prob > 0.0);
        assert!(profiles[1].forge_prob > 0.0);
        assert!(profiles[2].flip_prob > 0.0);
        assert!(profiles[3..].iter().all(|p| p.is_honest()));
    }

    #[test]
    fn sleeper_activates_later() {
        let profiles = AdversaryMix::Sleeper(10).profiles(4);
        assert_eq!(profiles[1].from_round, 10);
        assert!(!profiles[1].active(9));
        assert!(profiles[1].active(10));
    }

    #[test]
    fn names() {
        assert_eq!(AdversaryMix::AllHonest.name(), "all-honest");
        assert_eq!(AdversaryMix::HalfMisreport(30).name(), "half-misreport-30");
        assert_eq!(AdversaryMix::Sleeper(5).name(), "sleeper-5");
    }
}

//! The car-sharing scenario (§5.1).
//!
//! Mapping from the paper: *users* are providers whose ride requests and
//! payments are the transactions; *drivers* are collectors who label a
//! request `+1` when they are willing and able to serve it; *schedulers*
//! are governors who assign rides and maintain the ledger.
//!
//! A request is *valid* (serviceable) when it is well-formed: pickup and
//! dropoff differ, the fare covers the minimum, and the requested time is
//! in the service window. Invalid requests model spam, impossible routes
//! and underpriced rides that an honest driver would refuse.

use rand::rngs::StdRng;
use rand::Rng;

use prb_core::workload::{GeneratedTx, Workload};

/// Geography size: locations are cells of a `GRID × GRID` city grid.
pub const GRID: u16 = 64;

/// Minimum fare (cents) for a request to be serviceable.
pub const MIN_FARE: u32 = 250;

/// A ride request — the car-sharing transaction payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RideRequest {
    /// Requesting user (provider index).
    pub user: u32,
    /// Pickup cell, row-major in the city grid.
    pub pickup: u16,
    /// Dropoff cell.
    pub dropoff: u16,
    /// Offered fare in cents.
    pub fare_cents: u32,
    /// Requested pickup time (minutes from service start, 0..=1440).
    pub pickup_minute: u16,
}

impl RideRequest {
    /// Whether the request is serviceable (the scenario's validity rule).
    pub fn is_serviceable(&self) -> bool {
        self.pickup != self.dropoff
            && self.pickup < GRID * GRID
            && self.dropoff < GRID * GRID
            && self.fare_cents >= MIN_FARE
            && self.pickup_minute <= 1440
    }

    /// Manhattan distance between pickup and dropoff cells.
    pub fn distance(&self) -> u32 {
        let (px, py) = (self.pickup % GRID, self.pickup / GRID);
        let (dx, dy) = (self.dropoff % GRID, self.dropoff / GRID);
        (px.abs_diff(dx) + py.abs_diff(dy)) as u32
    }

    /// Canonical payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(14);
        out.extend_from_slice(&self.user.to_be_bytes());
        out.extend_from_slice(&self.pickup.to_be_bytes());
        out.extend_from_slice(&self.dropoff.to_be_bytes());
        out.extend_from_slice(&self.fare_cents.to_be_bytes());
        out.extend_from_slice(&self.pickup_minute.to_be_bytes());
        out
    }

    /// Parses payload bytes written by [`to_bytes`](Self::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 14 {
            return None;
        }
        Some(RideRequest {
            user: u32::from_be_bytes(bytes[0..4].try_into().ok()?),
            pickup: u16::from_be_bytes(bytes[4..6].try_into().ok()?),
            dropoff: u16::from_be_bytes(bytes[6..8].try_into().ok()?),
            fare_cents: u32::from_be_bytes(bytes[8..12].try_into().ok()?),
            pickup_minute: u16::from_be_bytes(bytes[12..14].try_into().ok()?),
        })
    }
}

/// Workload generating ride requests with a tunable unserviceable rate.
#[derive(Clone, Debug)]
pub struct CarShareWorkload {
    /// Probability that a generated request is unserviceable.
    pub bad_request_rate: f64,
}

impl CarShareWorkload {
    /// A workload with the given bad-request rate.
    ///
    /// # Panics
    ///
    /// Panics unless `bad_request_rate ∈ [0, 1]`.
    pub fn new(bad_request_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&bad_request_rate));
        CarShareWorkload { bad_request_rate }
    }

    fn gen_request(&self, user: u32, make_bad: bool, rng: &mut StdRng) -> RideRequest {
        let pickup = rng.gen_range(0..GRID * GRID);
        let mut dropoff = rng.gen_range(0..GRID * GRID);
        while dropoff == pickup {
            dropoff = rng.gen_range(0..GRID * GRID);
        }
        let mut req = RideRequest {
            user,
            pickup,
            dropoff,
            fare_cents: rng.gen_range(MIN_FARE..5_000),
            pickup_minute: rng.gen_range(0..=1440),
        };
        if make_bad {
            // Break the request one of three ways.
            match rng.gen_range(0..3) {
                0 => req.dropoff = req.pickup,                    // going nowhere
                1 => req.fare_cents = rng.gen_range(0..MIN_FARE), // underpriced
                _ => req.pickup_minute = 2_000,                   // outside window
            }
        }
        req
    }
}

impl Workload for CarShareWorkload {
    fn next_tx(&mut self, provider: u32, _round: u64, rng: &mut StdRng) -> GeneratedTx {
        let make_bad = rng.gen::<f64>() < self.bad_request_rate;
        let req = self.gen_request(provider, make_bad, rng);
        GeneratedTx {
            valid: req.is_serviceable(),
            data: req.to_bytes(),
        }
    }

    fn name(&self) -> &str {
        "car-share"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn serviceability_rules() {
        let good = RideRequest {
            user: 0,
            pickup: 0,
            dropoff: 1,
            fare_cents: MIN_FARE,
            pickup_minute: 100,
        };
        assert!(good.is_serviceable());
        assert!(!RideRequest {
            dropoff: 0,
            ..good.clone()
        }
        .is_serviceable());
        assert!(!RideRequest {
            fare_cents: 10,
            ..good.clone()
        }
        .is_serviceable());
        assert!(!RideRequest {
            pickup_minute: 1500,
            ..good.clone()
        }
        .is_serviceable());
        assert!(!RideRequest {
            pickup: GRID * GRID,
            ..good
        }
        .is_serviceable());
    }

    #[test]
    fn distance_is_manhattan() {
        let req = RideRequest {
            user: 0,
            pickup: 0,         // (0, 0)
            dropoff: GRID + 3, // (3, 1)
            fare_cents: 300,
            pickup_minute: 0,
        };
        assert_eq!(req.distance(), 4);
    }

    #[test]
    fn bytes_roundtrip() {
        let req = RideRequest {
            user: 42,
            pickup: 17,
            dropoff: 99,
            fare_cents: 1234,
            pickup_minute: 777,
        };
        assert_eq!(RideRequest::from_bytes(&req.to_bytes()), Some(req));
        assert_eq!(RideRequest::from_bytes(&[1, 2, 3]), None);
    }

    #[test]
    fn workload_respects_bad_rate_and_truth_matches_payload() {
        let mut w = CarShareWorkload::new(0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let mut bad = 0;
        for _ in 0..5_000 {
            let tx = w.next_tx(0, 0, &mut rng);
            let req = RideRequest::from_bytes(&tx.data).unwrap();
            // The oracle bit and the decoded payload always agree.
            assert_eq!(tx.valid, req.is_serviceable());
            if !tx.valid {
                bad += 1;
            }
        }
        assert!((1_200..1_800).contains(&bad), "{bad}");
        assert_eq!(w.name(), "car-share");
    }

    #[test]
    fn zero_rate_generates_only_serviceable() {
        let mut w = CarShareWorkload::new(0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..500 {
            assert!(w.next_tx(1, 0, &mut rng).valid);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_rate_panics() {
        CarShareWorkload::new(1.5);
    }
}

//! E15 admission / backpressure edge cases for the open-loop scale
//! harness: full-queue shedding, shed-then-resubmit, zero-rate rounds,
//! single-tick bursts, and same-seed determinism — each closing on the
//! lifecycle invariant `submitted == committed + dropped`, `open == 0`.

use prb_core::config::{ProtocolConfig, RevealPolicy};
use prb_core::scale::{Arrival, ScaleSim};
use prb_obs::Obs;
use prb_workload::ScaleWorkload;

/// A deliberately tight deployment: 4 collectors × 16-slot mempools with
/// replication 2, so ~32 distinct transactions fill every queue.
fn tight_config() -> ProtocolConfig {
    ProtocolConfig {
        providers: 2_000,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 0,
        open_loop: true,
        reveal: RevealPolicy::ArgueOnly,
        mempool_capacity: 16,
        seed: 77,
        ..Default::default()
    }
}

fn tight_sim() -> (ScaleSim, ScaleWorkload) {
    let mut sim = ScaleSim::new(tight_config(), 8).expect("valid config");
    sim.set_obs(Obs::counting());
    let wl = ScaleWorkload::for_sim(&sim, 0.0);
    (sim, wl)
}

/// Every transaction the run touched is committed or dropped, nothing
/// is open, and the per-node shed counters reconcile with the metrics.
fn assert_accounted(sim: &ScaleSim) {
    let counts = sim.obs().lifecycle_counts();
    assert_eq!(counts.submitted, sim.injected(), "tracker lost submissions");
    assert_eq!(
        counts.committed + counts.dropped,
        counts.submitted,
        "submitted != committed + dropped"
    );
    assert_eq!(counts.open, 0, "open traces after drain");
    let metrics = sim.obs().metrics();
    assert_eq!(metrics.counter("mempool.shed"), sim.mempool_stats().shed);
    assert_eq!(
        metrics.counter("gov.pending.shed"),
        sim.pending_stats().shed
    );
    assert!(sim.chains_agree());
}

/// A burst beyond every mempool's capacity sheds oldest-first, pins the
/// high-water mark exactly at the bound, and stays fully accounted.
#[test]
fn full_queue_admission_sheds_and_accounts() {
    let (mut sim, mut wl) = tight_sim();
    let t0 = sim.next_round_start();
    // 300 arrivals on one tick → 600 admissions over 4×16 slots.
    let arrivals: Vec<Arrival> = (0..300).map(|_| wl.next_arrival(t0)).collect();
    sim.run_round(arrivals);
    sim.drain(8);
    assert!(sim.drained());

    let mempool = sim.mempool_stats();
    assert!(mempool.shed > 0, "overload must shed");
    assert_eq!(
        mempool.high_water,
        sim.config().mempool_capacity,
        "bounded pool may fill exactly to capacity, never past it"
    );
    let counts = sim.obs().lifecycle_counts();
    assert!(counts.dropped > 0);
    assert!(counts.committed > 0, "admitted share must still commit");
    assert_accounted(&sim);
}

/// Providers whose transactions were shed in an overloaded round get
/// their next submissions committed once load returns to sustainable —
/// shedding is backpressure, not a ban.
#[test]
fn shed_then_resubmit_commits() {
    let (mut sim, mut wl) = tight_sim();

    // Round 1: overload. Some transactions are shed and dropped.
    let t0 = sim.next_round_start();
    let burst: Vec<Arrival> = (0..200).map(|_| wl.next_arrival(t0)).collect();
    sim.run_round(burst);
    sim.drain(8);
    let after_overload = sim.obs().lifecycle_counts();
    assert!(after_overload.dropped > 0, "overload round must drop");

    // Round 2: the same provider population resubmits (fresh attempts,
    // next per-provider seq) at a rate the queues absorb.
    let ticks = sim.round_ticks();
    let t1 = sim.next_round_start();
    let retry = wl.window(t1, ticks, 0.2);
    let resubmitted = retry.len() as u64;
    sim.run_round(retry);
    sim.drain(8);
    assert!(sim.drained());

    let counts = sim.obs().lifecycle_counts();
    assert_eq!(
        counts.dropped, after_overload.dropped,
        "sustainable resubmission must not shed"
    );
    assert_eq!(
        counts.committed,
        after_overload.committed + resubmitted,
        "every resubmitted transaction commits"
    );
    assert_accounted(&sim);
}

/// Zero-rate rounds run the full protocol machinery and commit nothing:
/// no transactions, no sheds, no open traces, chains still agree.
#[test]
fn zero_rate_rounds_are_quiet() {
    let (mut sim, mut wl) = tight_sim();
    let ticks = sim.round_ticks();
    for _ in 0..3 {
        let t0 = sim.next_round_start();
        let arrivals = wl.window(t0, ticks, 0.0);
        assert!(arrivals.is_empty());
        let round = sim.run_round(arrivals);
        assert_eq!((round.injected, round.committed), (0, 0));
    }
    assert!(sim.drained(), "nothing queued after zero-rate rounds");
    assert_eq!(sim.injected(), 0);
    assert_eq!(sim.mempool_stats().shed, 0);
    assert_eq!(sim.mempool_stats().high_water, 0);
    assert_accounted(&sim);
}

/// A single-tick burst that fits the queues commits in full — burstiness
/// alone (arrival pattern, not volume) never sheds.
#[test]
fn burst_within_capacity_commits_fully() {
    let (mut sim, mut wl) = tight_sim();
    let t0 = sim.next_round_start();
    // 4 collectors × 16 slots / replication 2 = 32 distinct tx capacity.
    let burst: Vec<Arrival> = (0..30).map(|_| wl.next_arrival(t0 + 1)).collect();
    sim.run_round(burst);
    sim.drain(8);

    assert_eq!(
        sim.mempool_stats().shed,
        0,
        "within-capacity burst never sheds"
    );
    let counts = sim.obs().lifecycle_counts();
    assert_eq!(counts.committed, 30);
    assert_eq!(counts.dropped, 0);
    assert_accounted(&sim);
}

/// Two runs at the same seed — overload, invalid traffic, resubmission
/// and all — export byte-identical ledgers from every governor.
#[test]
fn same_seed_runs_export_identical_ledgers() {
    let run = || {
        let mut sim = ScaleSim::new(tight_config(), 8).expect("valid config");
        sim.set_obs(Obs::counting());
        let mut wl = ScaleWorkload::for_sim(&sim, 0.25);
        let ticks = sim.round_ticks();
        let t0 = sim.next_round_start();
        let burst: Vec<Arrival> = (0..150).map(|_| wl.next_arrival(t0)).collect();
        sim.run_round(burst);
        for _ in 0..2 {
            let t = sim.next_round_start();
            let arrivals = wl.window(t, ticks, 0.3);
            sim.run_round(arrivals);
        }
        sim.drain(8);
        assert!(sim.drained());
        assert_accounted(&sim);
        (0..sim.config().governors)
            .map(|g| sim.governor(g).chain().export())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(),
        run(),
        "same seed must reproduce the ledgers byte for byte"
    );
}

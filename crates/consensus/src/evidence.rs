//! Accountable equivocation evidence (BFT forensics).
//!
//! Every block proposal carries a [`SignedHeader`]: the proposer's
//! signature over `(proposer, round, serial, block_hash)` under a
//! dedicated domain tag. Two validly-signed headers from the same
//! proposer for the same serial but different block hashes are
//! *self-verifying* proof of equivocation — any party holding the
//! committee's public keys can check an [`EquivocationEvidence`] record
//! without trusting the accuser, which is what lets honest governors
//! gossip it and expel the culprit deterministically (Polygraph-style
//! accountability on top of tolerance).

use std::fmt;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};

/// Domain tag for proposal-header signatures.
const HEADER_TAG: &[u8] = b"prb-proposal-header";

/// A proposer's signed commitment to one block at one serial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SignedHeader {
    /// The proposing governor's index.
    pub proposer: u32,
    /// The protocol round the proposal was made in.
    pub round: u64,
    /// The proposed block's serial number.
    pub serial: u64,
    /// The proposed block's hash `H(B)`.
    pub block_hash: Digest,
    /// Signature over the above under [`HEADER_TAG`].
    pub sig: Sig,
}

/// Canonical signing bytes for a proposal header.
fn header_bytes(proposer: u32, round: u64, serial: u64, block_hash: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update_field(HEADER_TAG);
    h.update(&proposer.to_be_bytes());
    h.update(&round.to_be_bytes());
    h.update(&serial.to_be_bytes());
    h.update_field(block_hash.as_bytes());
    h.finalize()
}

impl SignedHeader {
    /// Signs a commitment to `block_hash` at `serial` in `round`.
    pub fn create(
        proposer: u32,
        round: u64,
        serial: u64,
        block_hash: Digest,
        key: &KeyPair,
    ) -> Self {
        let msg = header_bytes(proposer, round, serial, &block_hash);
        SignedHeader {
            proposer,
            round,
            serial,
            block_hash,
            sig: key.sign(msg.as_bytes()),
        }
    }

    /// Verifies the signature against the claimed proposer's key.
    pub fn verify(&self, pks: &[PublicKey]) -> bool {
        let Some(pk) = pks.get(self.proposer as usize) else {
            return false;
        };
        let msg = header_bytes(self.proposer, self.round, self.serial, &self.block_hash);
        pk.verify(msg.as_bytes(), &self.sig)
    }
}

/// Why an evidence record failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvidenceError {
    /// The two headers name different proposers.
    ProposerMismatch,
    /// The two headers cover different serials — no conflict.
    SerialMismatch,
    /// The headers commit to the same block hash — no conflict.
    SameBlock,
    /// At least one header's signature does not verify.
    BadSignature,
}

impl fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EvidenceError::ProposerMismatch => "headers name different proposers",
            EvidenceError::SerialMismatch => "headers cover different serials",
            EvidenceError::SameBlock => "headers commit to the same block",
            EvidenceError::BadSignature => "header signature invalid",
        })
    }
}

/// Proof that one governor signed two conflicting blocks at one serial.
///
/// Self-verifying: [`EquivocationEvidence::verify`] needs only the
/// committee's public keys, so evidence can be gossiped and acted on
/// without trusting the node that assembled it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EquivocationEvidence {
    /// The first conflicting signed header observed.
    pub first: SignedHeader,
    /// The second, committing to a different block at the same serial.
    pub second: SignedHeader,
}

impl EquivocationEvidence {
    /// Assembles evidence from two conflicting headers.
    pub fn new(first: SignedHeader, second: SignedHeader) -> Self {
        EquivocationEvidence { first, second }
    }

    /// The accused governor.
    pub fn culprit(&self) -> u32 {
        self.first.proposer
    }

    /// Checks the record end to end and returns the convicted governor.
    ///
    /// # Errors
    ///
    /// Returns which structural or cryptographic check failed; a record
    /// that errors must be discarded without acting on it.
    pub fn verify(&self, pks: &[PublicKey]) -> Result<u32, EvidenceError> {
        if self.first.proposer != self.second.proposer {
            return Err(EvidenceError::ProposerMismatch);
        }
        if self.first.serial != self.second.serial {
            return Err(EvidenceError::SerialMismatch);
        }
        if self.first.block_hash == self.second.block_hash {
            return Err(EvidenceError::SameBlock);
        }
        if !self.first.verify(pks) || !self.second.verify(pks) {
            return Err(EvidenceError::BadSignature);
        }
        Ok(self.first.proposer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::sha256::sha256;
    use prb_crypto::signer::CryptoScheme;

    fn keys(m: u32) -> (Vec<KeyPair>, Vec<PublicKey>) {
        let scheme = CryptoScheme::sim();
        let keys: Vec<KeyPair> = (0..m)
            .map(|g| scheme.keypair_from_seed(format!("ev-g{g}").as_bytes()))
            .collect();
        let pks = keys.iter().map(|k| k.public_key()).collect();
        (keys, pks)
    }

    #[test]
    fn header_roundtrip_and_tamper_detection() {
        let (keys, pks) = keys(3);
        let h = SignedHeader::create(1, 4, 7, sha256(b"block-a"), &keys[1]);
        assert!(h.verify(&pks));
        let mut forged = h.clone();
        forged.serial = 8;
        assert!(!forged.verify(&pks), "tampered serial must not verify");
        let mut wrong_claimant = h.clone();
        wrong_claimant.proposer = 2;
        assert!(!wrong_claimant.verify(&pks), "signature binds the proposer");
        let mut out_of_range = h;
        out_of_range.proposer = 9;
        assert!(!out_of_range.verify(&pks));
    }

    #[test]
    fn conflicting_headers_convict_the_signer() {
        let (keys, pks) = keys(3);
        let a = SignedHeader::create(2, 5, 9, sha256(b"block-a"), &keys[2]);
        let b = SignedHeader::create(2, 5, 9, sha256(b"block-b"), &keys[2]);
        let ev = EquivocationEvidence::new(a, b);
        assert_eq!(ev.verify(&pks), Ok(2));
        assert_eq!(ev.culprit(), 2);
    }

    #[test]
    fn non_conflicts_are_rejected() {
        let (keys, pks) = keys(3);
        let a = SignedHeader::create(0, 1, 3, sha256(b"x"), &keys[0]);
        let same = EquivocationEvidence::new(a.clone(), a.clone());
        assert_eq!(same.verify(&pks), Err(EvidenceError::SameBlock));
        let other_serial = SignedHeader::create(0, 1, 4, sha256(b"y"), &keys[0]);
        let ev = EquivocationEvidence::new(a.clone(), other_serial);
        assert_eq!(ev.verify(&pks), Err(EvidenceError::SerialMismatch));
        let other_gov = SignedHeader::create(1, 1, 3, sha256(b"y"), &keys[1]);
        let ev = EquivocationEvidence::new(a, other_gov);
        assert_eq!(ev.verify(&pks), Err(EvidenceError::ProposerMismatch));
    }

    #[test]
    fn forged_signature_cannot_frame_a_governor() {
        let (keys, pks) = keys(3);
        // Governor 1 signs one block; an accuser fabricates the "second"
        // header by signing with its own key but claiming proposer 1.
        let real = SignedHeader::create(1, 2, 6, sha256(b"real"), &keys[1]);
        let framed = SignedHeader::create(1, 2, 6, sha256(b"fake"), &keys[0]);
        let ev = EquivocationEvidence::new(real, framed);
        assert_eq!(ev.verify(&pks), Err(EvidenceError::BadSignature));
    }
}

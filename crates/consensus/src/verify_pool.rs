//! A std-only worker pool for batched signature / VRF verification.
//!
//! Governors accumulate signature checks per block (provider signatures
//! during screening, the stake-block certificate, election claims) and
//! drain them through a [`VerifyPool`]: the batch is split into contiguous
//! chunks, each chunk is handed to a scoped `std::thread` worker, and every
//! worker runs the randomized-linear-combination batch verifier from
//! `prb_crypto::batch` over its chunk. Two layers of speedup compose:
//!
//! 1. **algebraic** — within a chunk, one Straus multi-exponentiation
//!    replaces `n` independent verifications (`prb_crypto::batch`), and
//! 2. **parallel** — chunks verify concurrently across OS threads.
//!
//! Results are positionally identical to calling `PublicKey::verify` /
//! `PublicKey::vrf_verify` item by item, for every thread count: chunking
//! only changes *which* random linear combinations are checked, not their
//! verdicts (batch-vs-sequential equality is property-tested in
//! `prb-crypto`), so simulations remain bit-for-bit deterministic under any
//! `verify_threads` setting.
//!
//! The pool spawns scoped threads per drain rather than keeping a resident
//! thread set: verification batches are milliseconds-long for the secure
//! parameter sets, so spawn cost is noise there, and the small-batch /
//! sim-scheme cases never reach the spawn path at all (see
//! [`PAR_MIN_ITEMS`]).

use prb_crypto::sha256::Digest;
use prb_crypto::signer::{self, PublicKey, Sig, VrfEvaluation};

/// Default inline threshold: below this many items a drain runs inline on
/// the caller's thread — the per-thread spawn + join overhead outweighs any
/// parallel win, and the sim scheme's hash-only checks are far cheaper than
/// a context switch. Tunable per pool via [`VerifyPool::with_inline_min`]
/// (surfaced as `ProtocolConfig::verify_inline_min`; the E14 micro-sweep in
/// `exp_throughput --pipeline` confirms 8 as the default).
pub const PAR_MIN_ITEMS: usize = 8;

/// Minimum items per worker chunk; keeps the RLC combination large enough
/// that the shared squaring chain still amortises.
const MIN_CHUNK: usize = 4;

/// A handle describing how verification batches are drained.
///
/// Cheap to clone; carries only the configured parallelism. `threads == 1`
/// (or small batches) verify inline via the same batch verifier, so results
/// never depend on the thread count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerifyPool {
    threads: usize,
    inline_min: usize,
}

impl Default for VerifyPool {
    fn default() -> Self {
        VerifyPool::single_threaded()
    }
}

impl VerifyPool {
    /// Creates a pool with the given worker count; `0` selects the host
    /// parallelism (capped at 8 — verification batches rarely have enough
    /// items to feed more workers).
    pub fn new(threads: usize) -> Self {
        VerifyPool::with_inline_min(threads, PAR_MIN_ITEMS)
    }

    /// Creates a pool with an explicit inline threshold: batches smaller
    /// than `inline_min` verify on the caller's thread regardless of the
    /// worker count. `inline_min == 0` behaves like `1` (every non-empty
    /// batch may fan out). Verdicts never depend on the threshold.
    pub fn with_inline_min(threads: usize, inline_min: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(1)
        } else {
            threads
        };
        VerifyPool {
            threads,
            inline_min: inline_min.max(1),
        }
    }

    /// A pool that always verifies inline on the caller's thread.
    pub fn single_threaded() -> Self {
        VerifyPool::new(1)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured inline threshold.
    pub fn inline_min(&self) -> usize {
        self.inline_min
    }

    /// Verifies a batch of signatures; `out[i]` is the verdict for
    /// `items[i]`, identical to `items[i].2.verify(items[i].0, items[i].1)`.
    pub fn verify_sigs(&self, items: &[(&[u8], &Sig, &PublicKey)]) -> Vec<bool> {
        self.run(items, signer::verify_batch)
    }

    /// Verifies a batch of VRF evaluations; `out[i]` is the authenticated
    /// output (or `None`), identical to `PublicKey::vrf_verify` per item.
    pub fn vrf_verify(&self, items: &[(&[u8], &VrfEvaluation, &PublicKey)]) -> Vec<Option<Digest>> {
        self.run(items, signer::vrf_verify_batch)
    }

    /// Splits `items` into per-worker chunks, applies `f` to each chunk on
    /// its own scoped thread, and stitches the outputs back in order.
    fn run<I, O, F>(&self, items: &[I], f: F) -> Vec<O>
    where
        I: Sync,
        O: Send,
        F: Fn(&[I]) -> Vec<O> + Sync,
    {
        if self.threads <= 1 || items.len() < self.inline_min {
            return f(items);
        }
        let workers = self.threads.min(items.len().div_ceil(MIN_CHUNK)).max(1);
        let chunk = items.len().div_ceil(workers);
        let mut out = Vec::with_capacity(items.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = items.chunks(chunk).map(|c| s.spawn(|| f(c))).collect();
            for h in handles {
                out.extend(h.join().expect("verify worker panicked"));
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::{CryptoScheme, KeyPair};

    fn schnorr_fixture(n: usize) -> (Vec<KeyPair>, Vec<Vec<u8>>, Vec<Sig>) {
        let scheme = CryptoScheme::schnorr_test_256();
        let keys: Vec<KeyPair> = (0..n)
            .map(|i| scheme.keypair_from_seed(format!("pool-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..n as u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let sigs: Vec<Sig> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        (keys, msgs, sigs)
    }

    #[test]
    fn pooled_verdicts_match_per_item_for_every_thread_count() {
        let (keys, msgs, mut sigs) = schnorr_fixture(13);
        // Forge two of them.
        sigs[4] = keys[4].sign(b"different message");
        sigs[9] = keys[0].sign(&msgs[9]);
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let items: Vec<(&[u8], &Sig, &PublicKey)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (&m[..], &sigs[i], &pks[i]))
            .collect();
        let expected: Vec<bool> = items.iter().map(|(m, s, pk)| pk.verify(m, s)).collect();
        for threads in [1, 2, 3, 4, 7] {
            let pool = VerifyPool::new(threads);
            assert_eq!(pool.verify_sigs(&items), expected, "threads={threads}");
        }
        assert!(!expected[4] && !expected[9] && expected[0]);
    }

    #[test]
    fn pooled_vrf_matches_per_item() {
        let scheme = CryptoScheme::schnorr_test_256();
        let keys: Vec<KeyPair> = (0..9)
            .map(|i| scheme.keypair_from_seed(format!("vrf-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..9u32).map(|i| i.to_be_bytes().to_vec()).collect();
        let mut evals: Vec<VrfEvaluation> = keys
            .iter()
            .zip(&msgs)
            .map(|(k, m)| k.vrf_evaluate(m))
            .collect();
        // Item 5 presents another message's evaluation.
        evals[5] = keys[5].vrf_evaluate(b"stolen");
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let items: Vec<(&[u8], &VrfEvaluation, &PublicKey)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (&m[..], &evals[i], &pks[i]))
            .collect();
        let expected: Vec<Option<Digest>> =
            items.iter().map(|(m, e, pk)| pk.vrf_verify(m, e)).collect();
        for threads in [1, 3, 8] {
            let pool = VerifyPool::new(threads);
            assert_eq!(pool.vrf_verify(&items), expected, "threads={threads}");
        }
        assert!(expected[5].is_none() && expected[0].is_some());
    }

    #[test]
    fn small_batches_and_sim_scheme_stay_inline() {
        // The sim scheme plus tiny batches exercise the inline path; the
        // contract is only about results, which must match per-item checks.
        let scheme = CryptoScheme::sim();
        let keys: Vec<KeyPair> = (0..3)
            .map(|i| scheme.keypair_from_seed(format!("s{i}").as_bytes()))
            .collect();
        let sigs: Vec<Sig> = keys.iter().map(|k| k.sign(b"m")).collect();
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let items: Vec<(&[u8], &Sig, &PublicKey)> = sigs
            .iter()
            .zip(&pks)
            .map(|(s, pk)| (&b"m"[..], s, pk))
            .collect();
        let pool = VerifyPool::new(4);
        assert_eq!(pool.verify_sigs(&items), vec![true; 3]);
        assert!(pool.verify_sigs(&[]).is_empty());
    }

    #[test]
    fn auto_thread_selection_is_positive() {
        assert!(VerifyPool::new(0).threads() >= 1);
        assert_eq!(VerifyPool::single_threaded().threads(), 1);
        assert_eq!(VerifyPool::default(), VerifyPool::single_threaded());
    }

    #[test]
    fn inline_threshold_is_tunable_and_never_changes_verdicts() {
        assert_eq!(VerifyPool::new(2).inline_min(), PAR_MIN_ITEMS);
        assert_eq!(VerifyPool::with_inline_min(2, 0).inline_min(), 1);
        let (keys, msgs, mut sigs) = schnorr_fixture(6);
        sigs[2] = keys[2].sign(b"not the message");
        let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
        let items: Vec<(&[u8], &Sig, &PublicKey)> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (&m[..], &sigs[i], &pks[i]))
            .collect();
        let expected: Vec<bool> = items.iter().map(|(m, s, pk)| pk.verify(m, s)).collect();
        // 6 items sit below the default threshold (inline) but above a
        // threshold of 2 (fan out); verdicts must be identical either way.
        for inline_min in [1, 2, 8, 64] {
            let pool = VerifyPool::with_inline_min(3, inline_min);
            assert_eq!(pool.verify_sigs(&items), expected, "inline={inline_min}");
        }
    }
}

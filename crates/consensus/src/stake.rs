//! The governors' stake ledger and signed stake transfers.
//!
//! §3.4.3: leader election probability is proportional to stake, which can
//! be *"money or any reliable form of asset"*; stake movements are signed
//! by the governors involved and committed in a stake-transform block at
//! the end of the round.

use std::fmt;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};

/// Errors from stake operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StakeError {
    /// Unknown governor index.
    UnknownGovernor(u32),
    /// The sender's balance is insufficient.
    InsufficientStake {
        /// The paying governor.
        from: u32,
        /// Its balance.
        balance: u64,
        /// The attempted amount.
        amount: u64,
    },
    /// Transfer of zero units (disallowed as it is meaningless spam).
    ZeroAmount,
    /// A transfer signature failed to verify.
    BadSignature,
    /// Replay: the nonce is not the sender's next nonce.
    BadNonce {
        /// Expected next nonce.
        expected: u64,
        /// The transfer's nonce.
        got: u64,
    },
}

impl fmt::Display for StakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StakeError::UnknownGovernor(g) => write!(f, "unknown governor g{g}"),
            StakeError::InsufficientStake {
                from,
                balance,
                amount,
            } => write!(f, "g{from} has {balance} stake, cannot move {amount}"),
            StakeError::ZeroAmount => write!(f, "zero-amount transfer"),
            StakeError::BadSignature => write!(f, "transfer signature invalid"),
            StakeError::BadNonce { expected, got } => {
                write!(f, "expected nonce {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for StakeError {}

/// A signed stake movement between two governors.
#[derive(Clone, Debug, PartialEq)]
pub struct StakeTransfer {
    /// Paying governor (index).
    pub from: u32,
    /// Receiving governor (index).
    pub to: u32,
    /// Units moved.
    pub amount: u64,
    /// Sender's transfer counter (replay protection).
    pub nonce: u64,
    /// Sender's signature over all of the above.
    pub signature: Sig,
}

impl StakeTransfer {
    fn signing_bytes(from: u32, to: u32, amount: u64, nonce: u64) -> Vec<u8> {
        let mut h = Sha256::new();
        h.update_field(b"prb-stake-transfer");
        h.update(&from.to_be_bytes());
        h.update(&to.to_be_bytes());
        h.update(&amount.to_be_bytes());
        h.update(&nonce.to_be_bytes());
        h.finalize().to_bytes().to_vec()
    }

    /// Creates and signs a transfer.
    pub fn create(from: u32, to: u32, amount: u64, nonce: u64, key: &KeyPair) -> Self {
        let signature = key.sign(&Self::signing_bytes(from, to, amount, nonce));
        StakeTransfer {
            from,
            to,
            amount,
            nonce,
            signature,
        }
    }

    /// Verifies the sender signature.
    pub fn verify(&self, sender_pk: &PublicKey) -> bool {
        sender_pk.verify(
            &Self::signing_bytes(self.from, self.to, self.amount, self.nonce),
            &self.signature,
        )
    }
}

/// Balances of all governors, with per-governor transfer nonces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StakeTable {
    stakes: Vec<u64>,
    nonces: Vec<u64>,
}

impl StakeTable {
    /// Builds a table from initial balances.
    pub fn new(stakes: Vec<u64>) -> Self {
        let n = stakes.len();
        StakeTable {
            stakes,
            nonces: vec![0; n],
        }
    }

    /// Equal stake `amount` for `governors` governors.
    pub fn uniform(governors: usize, amount: u64) -> Self {
        Self::new(vec![amount; governors])
    }

    /// Restores a table from a checkpoint snapshot: balances plus the
    /// transfer nonces, so replay protection survives a state-sync.
    ///
    /// # Panics
    ///
    /// Panics if the two vectors differ in length.
    pub fn from_parts(stakes: Vec<u64>, nonces: Vec<u64>) -> Self {
        assert_eq!(stakes.len(), nonces.len(), "one nonce per governor");
        StakeTable { stakes, nonces }
    }

    /// The per-governor transfer nonces (for checkpoint snapshots).
    pub fn nonces(&self) -> &[u64] {
        &self.nonces
    }

    /// Balance of governor `g`.
    pub fn stake(&self, g: u32) -> Option<u64> {
        self.stakes.get(g as usize).copied()
    }

    /// All balances, indexed by governor.
    pub fn stakes(&self) -> &[u64] {
        &self.stakes
    }

    /// Total stake in the system (invariant under transfers).
    pub fn total(&self) -> u64 {
        self.stakes.iter().sum()
    }

    /// Number of governors.
    pub fn governor_count(&self) -> usize {
        self.stakes.len()
    }

    /// Next expected nonce for governor `g`.
    pub fn next_nonce(&self, g: u32) -> Option<u64> {
        self.nonces.get(g as usize).copied()
    }

    /// Validates and applies a transfer (signature checked by caller via
    /// [`StakeTransfer::verify`]; this checks balances and nonces).
    ///
    /// # Errors
    ///
    /// Returns a [`StakeError`]; the table is unchanged on error.
    pub fn apply(&mut self, t: &StakeTransfer) -> Result<(), StakeError> {
        if t.amount == 0 {
            return Err(StakeError::ZeroAmount);
        }
        let from = t.from as usize;
        let to = t.to as usize;
        if from >= self.stakes.len() {
            return Err(StakeError::UnknownGovernor(t.from));
        }
        if to >= self.stakes.len() {
            return Err(StakeError::UnknownGovernor(t.to));
        }
        if self.nonces[from] != t.nonce {
            return Err(StakeError::BadNonce {
                expected: self.nonces[from],
                got: t.nonce,
            });
        }
        if self.stakes[from] < t.amount {
            return Err(StakeError::InsufficientStake {
                from: t.from,
                balance: self.stakes[from],
                amount: t.amount,
            });
        }
        self.stakes[from] -= t.amount;
        self.stakes[to] += t.amount;
        self.nonces[from] += 1;
        Ok(())
    }

    /// Applies every transfer that validates (signature + balance + nonce),
    /// in the given order; returns the indices of rejected transfers.
    ///
    /// This is the deterministic `NEW_STATE` construction of §3.4.3: every
    /// governor applying the same transfer list to the same previous state
    /// reaches the same state.
    pub fn apply_all<'a>(
        &mut self,
        transfers: impl IntoIterator<Item = &'a StakeTransfer>,
        pk_of: impl Fn(u32) -> Option<PublicKey>,
    ) -> Vec<usize> {
        let mut rejected = Vec::new();
        for (i, t) in transfers.into_iter().enumerate() {
            let ok = pk_of(t.from).map(|pk| t.verify(&pk)).unwrap_or(false);
            if !ok || self.apply(t).is_err() {
                rejected.push(i);
            }
        }
        rejected
    }

    /// Burns governor `g`'s entire balance — the expulsion penalty for a
    /// convicted equivocator. With zero stake the governor can no longer
    /// produce election claims (`ElectionClaim::compute` returns `None`),
    /// so slashing doubles as committee removal. The burn is recorded in
    /// the certified state: [`StakeTable::digest`] changes, and `total()`
    /// permanently drops by the burned amount.
    ///
    /// Idempotent: slashing an already-slashed governor burns 0. Returns
    /// the burned amount, or `None` for an unknown governor.
    pub fn slash(&mut self, g: u32) -> Option<u64> {
        let balance = self.stakes.get_mut(g as usize)?;
        let burned = *balance;
        *balance = 0;
        Some(burned)
    }

    /// Canonical digest of the state (the `NEW_STATE` commitment).
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(b"prb-stake-state");
        for (&s, &n) in self.stakes.iter().zip(&self.nonces) {
            h.update(&s.to_be_bytes());
            h.update(&n.to_be_bytes());
        }
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    fn key(i: u32) -> KeyPair {
        CryptoScheme::sim().keypair_from_seed(format!("gov-{i}").as_bytes())
    }

    #[test]
    fn transfer_moves_stake_and_preserves_total() {
        let mut table = StakeTable::uniform(3, 10);
        let t = StakeTransfer::create(0, 1, 4, 0, &key(0));
        assert!(t.verify(&key(0).public_key()));
        table.apply(&t).unwrap();
        assert_eq!(table.stake(0), Some(6));
        assert_eq!(table.stake(1), Some(14));
        assert_eq!(table.total(), 30);
    }

    #[test]
    fn insufficient_stake_rejected() {
        let mut table = StakeTable::uniform(2, 3);
        let t = StakeTransfer::create(0, 1, 5, 0, &key(0));
        assert_eq!(
            table.apply(&t),
            Err(StakeError::InsufficientStake {
                from: 0,
                balance: 3,
                amount: 5
            })
        );
        assert_eq!(table.stake(0), Some(3));
    }

    #[test]
    fn nonce_replay_rejected() {
        let mut table = StakeTable::uniform(2, 10);
        let t = StakeTransfer::create(0, 1, 1, 0, &key(0));
        table.apply(&t).unwrap();
        assert_eq!(
            table.apply(&t),
            Err(StakeError::BadNonce {
                expected: 1,
                got: 0
            })
        );
        assert_eq!(table.next_nonce(0), Some(1));
    }

    #[test]
    fn zero_and_unknown_rejected() {
        let mut table = StakeTable::uniform(2, 10);
        let t0 = StakeTransfer::create(0, 1, 0, 0, &key(0));
        assert_eq!(table.apply(&t0), Err(StakeError::ZeroAmount));
        let t1 = StakeTransfer::create(0, 9, 1, 0, &key(0));
        assert_eq!(table.apply(&t1), Err(StakeError::UnknownGovernor(9)));
        let t2 = StakeTransfer::create(9, 0, 1, 0, &key(9));
        assert_eq!(table.apply(&t2), Err(StakeError::UnknownGovernor(9)));
    }

    #[test]
    fn signature_binds_fields() {
        let t = StakeTransfer::create(0, 1, 4, 0, &key(0));
        let mut tampered = t.clone();
        tampered.amount = 5;
        assert!(!tampered.verify(&key(0).public_key()));
        let mut tampered = t.clone();
        tampered.to = 2;
        assert!(!tampered.verify(&key(0).public_key()));
        assert!(!t.verify(&key(1).public_key()));
    }

    #[test]
    fn apply_all_is_deterministic_and_skips_bad() {
        let transfers = vec![
            StakeTransfer::create(0, 1, 4, 0, &key(0)),
            StakeTransfer::create(0, 1, 100, 1, &key(0)), // too big
            StakeTransfer::create(1, 2, 2, 0, &key(1)),
            StakeTransfer::create(2, 0, 1, 5, &key(2)), // bad nonce
            StakeTransfer::create(2, 0, 1, 0, &key(1)), // wrong signer
        ];
        let run = || {
            let mut table = StakeTable::uniform(3, 10);
            let rejected = table.apply_all(&transfers, |g| Some(key(g).public_key()));
            (table, rejected)
        };
        let (t1, r1) = run();
        let (t2, r2) = run();
        assert_eq!(t1, t2);
        assert_eq!(r1, r2);
        assert_eq!(r1, vec![1, 3, 4]);
        assert_eq!(t1.digest(), t2.digest());
        assert_eq!(t1.stake(0), Some(6));
        assert_eq!(t1.stake(1), Some(12));
        assert_eq!(t1.stake(2), Some(12));
    }

    #[test]
    fn digest_changes_with_state() {
        let a = StakeTable::uniform(3, 10);
        let mut b = a.clone();
        let t = StakeTransfer::create(0, 1, 1, 0, &key(0));
        b.apply(&t).unwrap();
        assert_ne!(a.digest(), b.digest());
        // Nonce participates in the digest (prevents replay-equivalence).
        let mut c = StakeTable::uniform(3, 10);
        let back = StakeTransfer::create(1, 0, 1, 0, &key(1));
        c.apply(&t).unwrap();
        c.apply(&back).unwrap();
        assert_eq!(c.stakes(), a.stakes());
        assert_ne!(c.digest(), a.digest());
    }

    #[test]
    fn slash_burns_stake_and_marks_the_state() {
        let mut table = StakeTable::uniform(3, 10);
        let before = table.digest();
        assert_eq!(table.slash(1), Some(10));
        assert_eq!(table.stake(1), Some(0));
        assert_eq!(table.total(), 20, "burned stake leaves the system");
        assert_ne!(
            table.digest(),
            before,
            "expulsion is part of the certified state"
        );
        // Idempotent, and the slashed governor can no longer pay.
        assert_eq!(table.slash(1), Some(0));
        let t = StakeTransfer::create(1, 0, 1, 0, &key(1));
        assert!(matches!(
            table.apply(&t),
            Err(StakeError::InsufficientStake { .. })
        ));
        assert_eq!(table.slash(9), None);
    }

    #[test]
    fn error_display() {
        assert!(StakeError::UnknownGovernor(4).to_string().contains("g4"));
        assert!(StakeError::ZeroAmount.to_string().contains("zero"));
    }
}

//! Quorum-signed checkpoints of the replicated state.
//!
//! Every `checkpoint_interval` blocks each governor snapshots its chain
//! head together with the stake vector (balances + transfer nonces) and
//! the full reputation table, signs the snapshot's digest under a
//! dedicated domain tag and gossips the signature as a
//! [`CheckpointShare`]. Once a BFT quorum (`> 2/3` of the active
//! committee) of matching shares accumulates, the shares form a
//! [`CheckpointCert`] — a self-verifying proof that the committee agreed
//! on the state at that serial. A recovering or freshly joined governor
//! that verifies a cert can adopt the state wholesale and fetch only the
//! blocks *after* the checkpoint: O(delta) state-sync instead of an
//! O(chain) replay from genesis, in the spirit of reputation-snapshot
//! (re)anchoring in RepChain (arXiv:1901.05741).
//!
//! Like [`crate::evidence`], certs need only the committee's public keys
//! to check, so they can be relayed by untrusted peers; signatures from
//! governors expelled via equivocation evidence are excluded from the
//! quorum.

use std::fmt;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};

/// Domain tag for checkpoint-share signatures.
const CHECKPOINT_TAG: &[u8] = b"prb-checkpoint";

/// One collector's reputation vector, flattened for snapshotting: the
/// multiplicative per-provider weights plus the two additive counters of
/// §3.4 (kept scheme-agnostic so `prb-consensus` does not depend on the
/// reputation crate).
#[derive(Clone, Debug, PartialEq)]
pub struct CollectorSnapshot {
    /// Multiplicative screening weights, one per overseen provider slot.
    pub weights: Vec<f64>,
    /// The misreport counter (±1 per checked transaction).
    pub misreport: i64,
    /// The forge counter (≤ 0 in honest operation).
    pub forge: i64,
}

/// The full replicated state a checkpoint commits to.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointState {
    /// Serial of the chain head the snapshot was taken at.
    pub serial: u64,
    /// Hash of the block at `serial`.
    pub block_hash: Digest,
    /// Governor stake balances.
    pub stakes: Vec<u64>,
    /// Governor stake-transfer nonces (replay protection survives sync).
    pub stake_nonces: Vec<u64>,
    /// One reputation snapshot per collector.
    pub reputation: Vec<CollectorSnapshot>,
}

impl CheckpointState {
    /// The canonical digest every share signs. Weights are committed via
    /// their IEEE-754 bit patterns, so replicas agree iff their floats are
    /// bit-identical — the same determinism contract the simulation
    /// already relies on.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(CHECKPOINT_TAG);
        h.update(&self.serial.to_be_bytes());
        h.update_field(self.block_hash.as_bytes());
        h.update(&(self.stakes.len() as u64).to_be_bytes());
        for &s in &self.stakes {
            h.update(&s.to_be_bytes());
        }
        for &n in &self.stake_nonces {
            h.update(&n.to_be_bytes());
        }
        h.update(&(self.reputation.len() as u64).to_be_bytes());
        for c in &self.reputation {
            h.update(&(c.weights.len() as u64).to_be_bytes());
            for &w in &c.weights {
                h.update(&w.to_bits().to_be_bytes());
            }
            h.update(&c.misreport.to_be_bytes());
            h.update(&c.forge.to_be_bytes());
        }
        h.finalize()
    }
}

/// Canonical signing bytes for a share over a state digest.
fn share_bytes(governor: u32, serial: u64, state_digest: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update_field(CHECKPOINT_TAG);
    h.update(b"share");
    h.update(&governor.to_be_bytes());
    h.update(&serial.to_be_bytes());
    h.update_field(state_digest.as_bytes());
    h.finalize()
}

/// One governor's signature over a checkpoint state digest.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointShare {
    /// Serial the snapshot was taken at.
    pub serial: u64,
    /// Digest of the signer's [`CheckpointState`].
    pub state_digest: Digest,
    /// The signing governor's index.
    pub governor: u32,
    /// Signature over the above under the checkpoint domain tag.
    pub sig: Sig,
}

impl CheckpointShare {
    /// Signs a share for the given state digest.
    pub fn create(serial: u64, state_digest: Digest, governor: u32, key: &KeyPair) -> Self {
        let msg = share_bytes(governor, serial, &state_digest);
        CheckpointShare {
            serial,
            state_digest,
            governor,
            sig: key.sign(msg.as_bytes()),
        }
    }

    /// Verifies the signature against the claimed governor's key.
    pub fn verify(&self, pks: &[PublicKey]) -> bool {
        let Some(pk) = pks.get(self.governor as usize) else {
            return false;
        };
        let msg = share_bytes(self.governor, self.serial, &self.state_digest);
        pk.verify(msg.as_bytes(), &self.sig)
    }
}

/// Why a checkpoint certificate failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// Fewer valid, non-expelled, distinct signers than the quorum.
    UnderQuorum {
        /// Valid signatures counted.
        got: usize,
        /// Signatures required.
        need: usize,
    },
    /// A signature names an out-of-committee governor or fails to verify.
    BadSignature {
        /// The offending signer index.
        governor: u32,
    },
    /// The state's vector lengths are inconsistent with each other.
    MalformedState,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::UnderQuorum { got, need } => {
                write!(f, "{got} valid signatures, quorum is {need}")
            }
            CheckpointError::BadSignature { governor } => {
                write!(f, "signature of g{governor} invalid")
            }
            CheckpointError::MalformedState => write!(f, "inconsistent state vectors"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl CheckpointError {
    /// A short stable label for metric keys (`checkpoint.rejected.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            CheckpointError::UnderQuorum { .. } => "under_quorum",
            CheckpointError::BadSignature { .. } => "bad_signature",
            CheckpointError::MalformedState => "malformed_state",
        }
    }
}

/// BFT quorum over the active committee: `> 2/3` of `active` members.
pub fn quorum(active: usize) -> usize {
    2 * active / 3 + 1
}

/// A quorum-certified checkpoint: the state plus the signatures vouching
/// for it.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointCert {
    /// The agreed state.
    pub state: CheckpointState,
    /// `(governor, signature)` pairs, sorted by governor index.
    pub sigs: Vec<(u32, Sig)>,
}

impl CheckpointCert {
    /// Verifies the certificate: the state is well-formed, every counted
    /// signature is by a distinct, non-expelled committee member over this
    /// state's digest, and at least [`quorum`] of the active committee
    /// signed. Expelled governors' signatures are ignored (not fatal):
    /// evidence may spread after a share was honestly signed.
    ///
    /// # Errors
    ///
    /// Returns the first [`CheckpointError`] encountered.
    pub fn verify(&self, pks: &[PublicKey], expelled: &[u32]) -> Result<(), CheckpointError> {
        let m = pks.len();
        if self.state.stake_nonces.len() != self.state.stakes.len() {
            return Err(CheckpointError::MalformedState);
        }
        let digest = self.state.digest();
        let active = m - expelled.iter().filter(|&&g| (g as usize) < m).count();
        let need = quorum(active);
        let mut seen = vec![false; m];
        let mut got = 0usize;
        for (governor, sig) in &self.sigs {
            let g = *governor as usize;
            if g >= m {
                return Err(CheckpointError::BadSignature {
                    governor: *governor,
                });
            }
            if expelled.contains(governor) || seen[g] {
                continue;
            }
            let msg = share_bytes(*governor, self.state.serial, &digest);
            if !pks[g].verify(msg.as_bytes(), sig) {
                return Err(CheckpointError::BadSignature {
                    governor: *governor,
                });
            }
            seen[g] = true;
            got += 1;
        }
        if got < need {
            return Err(CheckpointError::UnderQuorum { got, need });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    fn keys(m: usize) -> (Vec<KeyPair>, Vec<PublicKey>) {
        let scheme = CryptoScheme::sim();
        let keys: Vec<_> = (0..m)
            .map(|g| scheme.keypair_from_seed(format!("ckpt-g{g}").as_bytes()))
            .collect();
        let pks = keys.iter().map(|k| k.public_key()).collect();
        (keys, pks)
    }

    fn state(serial: u64) -> CheckpointState {
        CheckpointState {
            serial,
            block_hash: prb_crypto::sha256::sha256(&serial.to_be_bytes()),
            stakes: vec![10, 20, 30, 40],
            stake_nonces: vec![0, 1, 0, 2],
            reputation: vec![
                CollectorSnapshot {
                    weights: vec![1.0, 0.5],
                    misreport: 3,
                    forge: 0,
                },
                CollectorSnapshot {
                    weights: vec![0.25, 1.0],
                    misreport: -1,
                    forge: -2,
                },
            ],
        }
    }

    fn cert(serial: u64, signers: &[usize], keys: &[KeyPair]) -> CheckpointCert {
        let st = state(serial);
        let digest = st.digest();
        let sigs = signers
            .iter()
            .map(|&g| {
                let share = CheckpointShare::create(serial, digest, g as u32, &keys[g]);
                (g as u32, share.sig)
            })
            .collect();
        CheckpointCert { state: st, sigs }
    }

    #[test]
    fn digest_commits_to_every_field() {
        let base = state(5);
        let mut variants = vec![base.clone(); 6];
        variants[0].serial = 6;
        variants[1].block_hash = prb_crypto::sha256::sha256(b"other");
        variants[2].stakes[1] = 21;
        variants[3].stake_nonces[0] = 9;
        variants[4].reputation[0].weights[1] = 0.75;
        variants[5].reputation[1].forge = 0;
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.digest(), base.digest(), "variant {i} collided");
        }
        assert_eq!(base.digest(), state(5).digest(), "digest is deterministic");
    }

    #[test]
    fn share_roundtrip_and_forgery() {
        let (keys, pks) = keys(4);
        let digest = state(3).digest();
        let share = CheckpointShare::create(3, digest, 2, &keys[2]);
        assert!(share.verify(&pks));
        // Wrong signer index, wrong serial, wrong digest: all rejected.
        let mut wrong = share.clone();
        wrong.governor = 1;
        assert!(!wrong.verify(&pks));
        let mut wrong = share.clone();
        wrong.serial = 4;
        assert!(!wrong.verify(&pks));
        let mut wrong = share;
        wrong.state_digest = prb_crypto::sha256::sha256(b"x");
        assert!(!wrong.verify(&pks));
    }

    #[test]
    fn quorum_formula() {
        assert_eq!(quorum(4), 3);
        assert_eq!(quorum(5), 4);
        assert_eq!(quorum(6), 5);
        assert_eq!(quorum(7), 5);
    }

    #[test]
    fn full_quorum_cert_verifies() {
        let (keys, pks) = keys(4);
        let c = cert(5, &[0, 1, 2, 3], &keys);
        assert_eq!(c.verify(&pks, &[]), Ok(()));
        // Exactly at quorum (3 of 4) also verifies.
        let c = cert(5, &[0, 2, 3], &keys);
        assert_eq!(c.verify(&pks, &[]), Ok(()));
    }

    #[test]
    fn under_quorum_cert_rejected() {
        let (keys, pks) = keys(4);
        let c = cert(5, &[0, 1], &keys);
        assert_eq!(
            c.verify(&pks, &[]),
            Err(CheckpointError::UnderQuorum { got: 2, need: 3 })
        );
        // Duplicate signatures do not inflate the count.
        let mut dup = cert(5, &[0, 1], &keys);
        let extra = dup.sigs[0].clone();
        dup.sigs.push(extra);
        assert_eq!(
            dup.verify(&pks, &[]),
            Err(CheckpointError::UnderQuorum { got: 2, need: 3 })
        );
    }

    #[test]
    fn forged_signature_rejected() {
        let (keys, pks) = keys(4);
        let mut c = cert(5, &[0, 1, 2], &keys);
        // g2's slot actually signed by g3's key.
        let digest = c.state.digest();
        let forged = CheckpointShare::create(5, digest, 2, &keys[3]);
        c.sigs[2] = (2, forged.sig);
        assert_eq!(
            c.verify(&pks, &[]),
            Err(CheckpointError::BadSignature { governor: 2 })
        );
        // A signature over a *different* state digest is also forged: the
        // cert's state no longer matches what was signed.
        let mut c = cert(5, &[0, 1, 2], &keys);
        c.state.stakes[0] += 1;
        assert!(matches!(
            c.verify(&pks, &[]),
            Err(CheckpointError::BadSignature { .. })
        ));
        // Out-of-committee signer index.
        let mut c = cert(5, &[0, 1, 2], &keys);
        c.sigs[0].0 = 9;
        assert_eq!(
            c.verify(&pks, &[]),
            Err(CheckpointError::BadSignature { governor: 9 })
        );
    }

    #[test]
    fn expelled_signers_excluded_from_quorum() {
        let (keys, pks) = keys(4);
        // All four signed, but g1 was expelled (equivocation evidence):
        // active committee is 3, quorum is 3, and g1's signature must not
        // count — the remaining 3 honest signatures carry the cert.
        let c = cert(5, &[0, 1, 2, 3], &keys);
        assert_eq!(c.verify(&pks, &[1]), Ok(()));
        // With g1 expelled AND g3 missing, only 2 of the needed 3 remain.
        let c = cert(5, &[0, 1, 2], &keys);
        assert_eq!(
            c.verify(&pks, &[1]),
            Err(CheckpointError::UnderQuorum { got: 2, need: 3 })
        );
        // An expelled governor cannot manufacture a cert from its own
        // signature repeated under different slots.
        let digest = state(5).digest();
        let evil = CheckpointShare::create(5, digest, 1, &keys[1]);
        let c = CheckpointCert {
            state: state(5),
            sigs: vec![(1, evil.sig.clone()), (1, evil.sig.clone()), (1, evil.sig)],
        };
        assert!(matches!(
            c.verify(&pks, &[1]),
            Err(CheckpointError::UnderQuorum { got: 0, .. })
        ));
    }

    #[test]
    fn malformed_state_rejected() {
        let (keys, pks) = keys(4);
        let mut c = cert(5, &[0, 1, 2], &keys);
        c.state.stake_nonces.pop();
        assert_eq!(c.verify(&pks, &[]), Err(CheckpointError::MalformedState));
    }

    #[test]
    fn error_display_and_kind() {
        let e = CheckpointError::UnderQuorum { got: 1, need: 3 };
        assert!(e.to_string().contains("quorum is 3"));
        assert_eq!(e.kind(), "under_quorum");
        assert_eq!(
            CheckpointError::BadSignature { governor: 2 }.kind(),
            "bad_signature"
        );
        assert_eq!(CheckpointError::MalformedState.kind(), "malformed_state");
    }
}

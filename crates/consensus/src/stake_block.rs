//! The 3-step stake-transform block protocol (§3.4.3), run over the
//! simulated network so its `O(m²)` message complexity is measurable.
//!
//! 1. The round leader combines the previous stake state with the signed
//!    transfers broadcast during the round into `NEW_STATE` and broadcasts
//!    it with its signature.
//! 2. Every non-leading governor recomputes `NEW_STATE` from the transfers
//!    *it* received; on a match it returns its signature to the leader, on
//!    a mismatch it broadcasts expulsion evidence (the leader's signed,
//!    provably wrong digest).
//! 3. The leader packs the digest and one signature per *active*
//!    governor into a stake-transform block and broadcasts it; followers
//!    verify the signature set and adopt the new state. Expelled
//!    governors drop out of the quorum on both sides, so the committee
//!    keeps committing after a conviction.
//!
//! Determinism note: the paper assumes atomic broadcast, under which every
//! governor holds the same transfer set in the same order. Our simulator
//! delivers with per-link jitter, so governors canonically sort the round's
//! transfers before applying them — same set ⇒ same state.

use std::collections::HashMap;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};
use prb_net::message::Envelope;
use prb_net::sim::{Actor, Context};
use prb_obs::{Obs, ObsHandle};

use crate::stake::{StakeTable, StakeTransfer};
use crate::verify_pool::VerifyPool;

/// A committed stake-transform block.
#[derive(Clone, Debug, PartialEq)]
pub struct StakeBlock {
    /// The round this block closes.
    pub round: u64,
    /// Digest of `NEW_STATE`.
    pub state_digest: Digest,
    /// The governor that led the round.
    pub leader: u32,
    /// One signature per governor over `(round, digest)`.
    pub signatures: Vec<(u32, Sig)>,
}

/// Messages of the stake-block protocol.
#[derive(Clone, Debug)]
pub enum StakeMsg {
    /// Driver command: a governor should broadcast this transfer.
    SubmitTransfer(StakeTransfer),
    /// A transfer relayed to all governors.
    Transfer(StakeTransfer),
    /// Driver command: the round begins with the given leader.
    StartRound {
        /// Round number.
        round: u64,
        /// The elected leader for this round.
        leader: u32,
    },
    /// Step 1: the leader's signed `NEW_STATE` digest.
    NewState {
        /// Round number.
        round: u64,
        /// Digest of the leader's computed state.
        digest: Digest,
        /// Leader signature over `(round, digest)`.
        sig: Sig,
    },
    /// Step 2: a follower's signature back to the leader.
    Ack {
        /// Round number.
        round: u64,
        /// Follower signature over `(round, digest)`.
        sig: Sig,
    },
    /// Step 2 (failure path): evidence that the leader signed a digest
    /// inconsistent with the round's transfers.
    Expel {
        /// Round number.
        round: u64,
        /// The digest the leader signed.
        claimed: Digest,
        /// The leader's signature proving it claimed `claimed`.
        leader_sig: Sig,
    },
    /// Step 3: the committed block.
    Commit(StakeBlock),
}

fn state_sig_bytes(round: u64, digest: &Digest) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update_field(b"prb-stake-block");
    h.update(&round.to_be_bytes());
    h.update_field(digest.as_bytes());
    h.finalize().to_bytes().to_vec()
}

/// A governor participating in the stake-block protocol.
#[derive(Debug)]
pub struct StakeGovernor {
    index: u32,
    peers: Vec<usize>,
    key: KeyPair,
    pks: Vec<PublicKey>,
    table: StakeTable,
    pending: Vec<StakeTransfer>,
    round: u64,
    leader: u32,
    /// Leader-side: collected acks for the current round.
    acks: HashMap<u32, Sig>,
    /// Leader-side: digest it proposed this round.
    proposed: Option<Digest>,
    /// If set, propose this digest instead of the honest one (test hook for
    /// the expulsion path).
    pub equivocate_digest: Option<Digest>,
    committed: Vec<StakeBlock>,
    expelled: Vec<u32>,
    /// Drains the Commit certificate's `m` signatures as one batch.
    pool: VerifyPool,
    obs: ObsHandle,
}

impl StakeGovernor {
    /// Creates governor `index` of `m`, where governor `g`'s actor lives at
    /// network index `net_base + g`.
    pub fn new(
        index: u32,
        m: u32,
        net_base: usize,
        key: KeyPair,
        pks: Vec<PublicKey>,
        table: StakeTable,
    ) -> Self {
        let peers = (0..m as usize).map(|g| net_base + g).collect();
        StakeGovernor {
            index,
            peers,
            key,
            pks,
            table,
            pending: Vec::new(),
            round: 0,
            leader: 0,
            acks: HashMap::new(),
            proposed: None,
            equivocate_digest: None,
            committed: Vec::new(),
            expelled: Vec::new(),
            pool: VerifyPool::single_threaded(),
            obs: Obs::off(),
        }
    }

    /// Replaces the pool used for certificate verification (defaults to
    /// inline single-threaded batching). Verdicts are identical for every
    /// thread count; only wall-clock changes.
    pub fn with_verify_pool(mut self, pool: VerifyPool) -> Self {
        self.pool = pool;
        self
    }

    /// Installs an observability hub (defaults to [`Obs::off`]); the
    /// governor then reports certificate batch sizes and wall-clock crypto
    /// time (`crypto.batch.size` / `wall.crypto_ns`).
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The current stake table.
    pub fn table(&self) -> &StakeTable {
        &self.table
    }

    /// Blocks committed so far.
    pub fn committed(&self) -> &[StakeBlock] {
        &self.committed
    }

    /// Governors this node has expelled.
    pub fn expelled(&self) -> &[u32] {
        &self.expelled
    }

    fn is_leader(&self) -> bool {
        self.index == self.leader
    }

    /// Computes `NEW_STATE` from the current table plus pending transfers
    /// in canonical order. Returns `(table, digest)`.
    fn compute_new_state(&self) -> (StakeTable, Digest) {
        let mut transfers = self.pending.clone();
        transfers.sort_by_key(|t| (t.from, t.nonce, t.to, t.amount));
        let mut table = self.table.clone();
        let pks = &self.pks;
        table.apply_all(&transfers, |g| pks.get(g as usize).cloned());
        let digest = table.digest();
        (table, digest)
    }

    fn broadcast(&self, ctx: &mut Context<'_, StakeMsg>, kind: &'static str, msg: &StakeMsg) {
        for &peer in &self.peers {
            if peer != ctx.self_idx() {
                ctx.send_sized(peer, kind, 64, msg.clone());
            }
        }
    }

    fn finish_round(&mut self, block: StakeBlock) {
        let (table, digest) = self.compute_new_state();
        // Only adopt when the committed digest matches our own computation;
        // a mismatch here means we missed transfers (outside the synchrony
        // budget) and must re-sync — recorded as a non-adoption.
        if digest == block.state_digest {
            self.table = table;
        }
        self.pending.clear();
        self.committed.push(block);
        self.acks.clear();
        self.proposed = None;
    }
}

impl Actor for StakeGovernor {
    type Msg = StakeMsg;

    fn on_message(&mut self, env: Envelope<StakeMsg>, ctx: &mut Context<'_, StakeMsg>) {
        match env.payload {
            StakeMsg::SubmitTransfer(t) => {
                self.broadcast(ctx, "stake-transfer", &StakeMsg::Transfer(t.clone()));
                self.pending.push(t);
            }
            StakeMsg::Transfer(t) => {
                self.pending.push(t);
            }
            StakeMsg::StartRound { round, leader } => {
                self.round = round;
                self.leader = leader;
                self.acks.clear();
                if self.is_leader() {
                    let (_, honest) = self.compute_new_state();
                    let digest = self.equivocate_digest.unwrap_or(honest);
                    let sig = self.key.sign(&state_sig_bytes(round, &digest));
                    self.proposed = Some(digest);
                    self.acks.insert(self.index, sig.clone());
                    self.broadcast(
                        ctx,
                        "stake-newstate",
                        &StakeMsg::NewState { round, digest, sig },
                    );
                    self.maybe_commit(ctx);
                }
            }
            StakeMsg::NewState { round, digest, sig } => {
                if round != self.round {
                    return;
                }
                let leader_pk = &self.pks[self.leader as usize];
                if !leader_pk.verify(&state_sig_bytes(round, &digest), &sig) {
                    return; // not really from the leader; ignore
                }
                let (_, own) = self.compute_new_state();
                if own == digest {
                    let ack_sig = self.key.sign(&state_sig_bytes(round, &digest));
                    let leader_net = self.peers[self.leader as usize];
                    ctx.send_sized(
                        leader_net,
                        "stake-ack",
                        64,
                        StakeMsg::Ack {
                            round,
                            sig: ack_sig,
                        },
                    );
                } else {
                    // Provable misbehaviour: the leader signed a digest that
                    // does not follow from the round's transfers.
                    let evidence = StakeMsg::Expel {
                        round,
                        claimed: digest,
                        leader_sig: sig,
                    };
                    self.broadcast(ctx, "stake-expel", &evidence);
                    if !self.expelled.contains(&self.leader) {
                        self.expelled.push(self.leader);
                    }
                }
            }
            StakeMsg::Ack { round, sig } => {
                if round != self.round || !self.is_leader() {
                    return;
                }
                let Some(digest) = self.proposed else { return };
                // Identify the signer by trying all governor keys (the wire
                // format carries no sender id beyond the envelope).
                let from_gov = self
                    .peers
                    .iter()
                    .position(|&p| p == env.from)
                    .map(|g| g as u32);
                if let Some(g) = from_gov {
                    // Expelled governors no longer count toward the quorum.
                    if !self.expelled.contains(&g)
                        && self.pks[g as usize].verify(&state_sig_bytes(round, &digest), &sig)
                    {
                        self.acks.insert(g, sig);
                    }
                }
                self.maybe_commit(ctx);
            }
            StakeMsg::Expel {
                round,
                claimed,
                leader_sig,
            } => {
                if round != self.round {
                    return;
                }
                let leader_pk = &self.pks[self.leader as usize];
                // Evidence checks: the leader really signed `claimed`, and
                // `claimed` differs from what the transfers imply.
                if leader_pk.verify(&state_sig_bytes(round, &claimed), &leader_sig) {
                    let (_, own) = self.compute_new_state();
                    if own != claimed && !self.expelled.contains(&self.leader) {
                        self.expelled.push(self.leader);
                    }
                }
            }
            StakeMsg::Commit(block) => {
                if block.round != self.round {
                    return;
                }
                // Verify the certificate — every *active* (non-expelled)
                // governor must have signed the same `(round, digest)`
                // message, so the set drains through the pool as a single
                // batch. Expelled governors neither count toward nor
                // against the recomputed quorum.
                let msg = state_sig_bytes(block.round, &block.state_digest);
                let mut signers: Vec<u32> = block.signatures.iter().map(|(g, _)| *g).collect();
                signers.sort_unstable();
                signers.dedup();
                let in_range = signers.len() == block.signatures.len()
                    && block.signatures.len() >= self.quorum()
                    && block
                        .signatures
                        .iter()
                        .all(|(g, _)| (*g as usize) < self.pks.len() && !self.expelled.contains(g));
                let all_valid = in_range && {
                    let items: Vec<(&[u8], &Sig, &PublicKey)> = block
                        .signatures
                        .iter()
                        .map(|(g, sig)| (&msg[..], sig, &self.pks[*g as usize]))
                        .collect();
                    self.obs.observe("crypto.batch.size", items.len() as u64);
                    let t0 = self.obs.is_enabled().then(std::time::Instant::now);
                    let ok = self.pool.verify_sigs(&items).iter().all(|&ok| ok);
                    if let Some(t0) = t0 {
                        let ns = t0.elapsed().as_nanos() as u64;
                        self.obs.add_counter("wall.crypto_ns", ns);
                        // Certificates authenticate the *committee*, not
                        // provider transactions, so the pipelined engine
                        // cannot defer them — tracked separately so the
                        // E14 crypto split can tell the non-deferrable
                        // slice apart.
                        self.obs.add_counter("wall.cert_ns", ns);
                    }
                    ok
                };
                if all_valid {
                    self.finish_round(block);
                }
            }
        }
    }
}

impl StakeGovernor {
    /// Signatures required to commit: every governor still on the active
    /// committee. Expulsions shrink the quorum so a round can close
    /// without the culprit's cooperation.
    fn quorum(&self) -> usize {
        self.pks.len() - self.expelled.len()
    }

    fn maybe_commit(&mut self, ctx: &mut Context<'_, StakeMsg>) {
        if !self.is_leader() || self.proposed.is_none() {
            return;
        }
        if self.acks.len() == self.quorum() {
            let digest = self.proposed.expect("checked above");
            let mut signatures: Vec<(u32, Sig)> =
                self.acks.iter().map(|(g, s)| (*g, s.clone())).collect();
            signatures.sort_by_key(|(g, _)| *g);
            let block = StakeBlock {
                round: self.round,
                state_digest: digest,
                leader: self.index,
                signatures,
            };
            self.broadcast(ctx, "stake-commit", &StakeMsg::Commit(block.clone()));
            self.finish_round(block);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;
    use prb_net::sim::{NetConfig, Network};
    use prb_net::time::SimTime;

    fn build(m: u32, stake: u64) -> (Network<StakeGovernor>, Vec<KeyPair>) {
        let scheme = CryptoScheme::sim();
        let keys: Vec<KeyPair> = (0..m)
            .map(|g| scheme.keypair_from_seed(format!("sg{g}").as_bytes()))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let mut net = Network::new(NetConfig::uniform(1, 5), 11);
        for g in 0..m {
            net.add_node(StakeGovernor::new(
                g,
                m,
                0,
                keys[g as usize].clone(),
                pks.clone(),
                StakeTable::uniform(m as usize, stake),
            ));
        }
        (net, keys)
    }

    fn start_round(net: &mut Network<StakeGovernor>, m: u32, round: u64, leader: u32, at: u64) {
        for g in 0..m as usize {
            net.send_external(
                g,
                "start-round",
                StakeMsg::StartRound { round, leader },
                SimTime(at),
            );
        }
    }

    #[test]
    fn happy_path_commits_identical_state_everywhere() {
        let m = 4;
        let (mut net, keys) = build(m, 10);
        // Governor 0 moves 3 units to governor 2.
        let t = StakeTransfer::create(0, 2, 3, 0, &keys[0]);
        net.send_external(0, "submit", StakeMsg::SubmitTransfer(t), SimTime(0));
        // Leave Δ for the transfer to spread, then run the round.
        start_round(&mut net, m, 1, 1, 100);
        net.run_until_idle(10_000);
        let reference = net.node(0).table().clone();
        assert_eq!(reference.stake(0), Some(7));
        assert_eq!(reference.stake(2), Some(13));
        for g in 0..m as usize {
            assert_eq!(net.node(g).table(), &reference, "governor {g} state");
            assert_eq!(net.node(g).committed().len(), 1);
            assert!(net.node(g).expelled().is_empty());
            assert_eq!(net.node(g).committed()[0].signatures.len(), m as usize);
        }
    }

    #[test]
    fn multiple_rounds_apply_sequentially() {
        let m = 3;
        let (mut net, keys) = build(m, 10);
        let t0 = StakeTransfer::create(0, 1, 2, 0, &keys[0]);
        net.send_external(0, "submit", StakeMsg::SubmitTransfer(t0), SimTime(0));
        start_round(&mut net, m, 1, 0, 100);
        net.run_until_idle(10_000);
        let t1 = StakeTransfer::create(1, 2, 5, 0, &keys[1]);
        net.send_external(1, "submit", StakeMsg::SubmitTransfer(t1), SimTime(200));
        start_round(&mut net, m, 2, 2, 300);
        net.run_until_idle(10_000);
        for g in 0..m as usize {
            let table = net.node(g).table();
            assert_eq!(table.stake(0), Some(8));
            assert_eq!(table.stake(1), Some(7));
            assert_eq!(table.stake(2), Some(15));
            assert_eq!(net.node(g).committed().len(), 2);
        }
    }

    #[test]
    fn equivocating_leader_is_expelled_by_all() {
        let m = 4;
        let (mut net, keys) = build(m, 10);
        let t = StakeTransfer::create(0, 2, 3, 0, &keys[0]);
        net.send_external(0, "submit", StakeMsg::SubmitTransfer(t), SimTime(0));
        // Leader 1 proposes a bogus digest.
        net.node_mut(1).equivocate_digest = Some(prb_crypto::sha256::sha256(b"bogus"));
        start_round(&mut net, m, 1, 1, 100);
        net.run_until_idle(10_000);
        for g in 0..m as usize {
            if g == 1 {
                continue;
            }
            assert_eq!(net.node(g).expelled(), &[1], "governor {g}");
            assert!(net.node(g).committed().is_empty());
            // State unchanged: the round never committed.
            assert_eq!(net.node(g).table().stake(0), Some(10));
        }
    }

    #[test]
    fn quorum_recomputes_after_expulsion_and_rounds_continue() {
        let m = 4;
        let (mut net, keys) = build(m, 10);
        // Round 1: leader 1 equivocates and is expelled by every honest
        // governor (no commit).
        net.node_mut(1).equivocate_digest = Some(prb_crypto::sha256::sha256(b"bogus"));
        start_round(&mut net, m, 1, 1, 100);
        net.run_until_idle(10_000);
        for g in [0usize, 2, 3] {
            assert_eq!(net.node(g).expelled(), &[1]);
        }
        // Round 2: honest leader 0. The culprit still acks, but its
        // signature no longer counts; the round must commit with the
        // recomputed quorum of m − 1 signatures.
        let t = StakeTransfer::create(2, 3, 4, 0, &keys[2]);
        net.send_external(2, "submit", StakeMsg::SubmitTransfer(t), SimTime(20_000));
        start_round(&mut net, m, 2, 0, 20_100);
        net.run_until_idle(100_000);
        // Every governor commits — including the culprit, which expelled
        // itself when it verified the evidence against its own signature —
        // but the certificate carries only the m − 1 active signatures.
        for g in 0..m as usize {
            assert_eq!(net.node(g).committed().len(), 1, "governor {g}");
            let block = &net.node(g).committed()[0];
            assert_eq!(block.signatures.len(), m as usize - 1);
            assert!(
                block.signatures.iter().all(|(signer, _)| *signer != 1),
                "expelled governor must not appear in the certificate"
            );
            assert_eq!(net.node(g).table().stake(2), Some(6));
            assert_eq!(net.node(g).table().stake(3), Some(14));
        }
    }

    #[test]
    fn invalid_transfer_is_excluded_consistently() {
        let m = 3;
        let (mut net, keys) = build(m, 5);
        // Over-spend: amount 50 > balance 5.
        let bad = StakeTransfer::create(0, 1, 50, 0, &keys[0]);
        let good = StakeTransfer::create(2, 1, 2, 0, &keys[2]);
        net.send_external(0, "submit", StakeMsg::SubmitTransfer(bad), SimTime(0));
        net.send_external(2, "submit", StakeMsg::SubmitTransfer(good), SimTime(0));
        start_round(&mut net, m, 1, 0, 100);
        net.run_until_idle(10_000);
        for g in 0..m as usize {
            let table = net.node(g).table();
            assert_eq!(table.stake(0), Some(5), "bad transfer must not apply");
            assert_eq!(table.stake(1), Some(7));
            assert_eq!(table.stake(2), Some(3));
            assert_eq!(net.node(g).committed().len(), 1);
        }
    }

    #[test]
    fn message_complexity_is_quadratic_in_m() {
        // Each governor submits one transfer; total protocol messages
        // should scale ~m² (transfers m·(m−1) dominate).
        let count_for = |m: u32| {
            let (mut net, keys) = build(m, 10);
            for g in 0..m {
                let t = StakeTransfer::create(g, (g + 1) % m, 1, 0, &keys[g as usize]);
                net.send_external(
                    g as usize,
                    "submit",
                    StakeMsg::SubmitTransfer(t),
                    SimTime(0),
                );
            }
            start_round(&mut net, m, 1, 0, 100);
            net.run_until_idle(100_000);
            let s = net.stats();
            s.kind("stake-transfer").sent
                + s.kind("stake-newstate").sent
                + s.kind("stake-ack").sent
                + s.kind("stake-commit").sent
        };
        let c4 = count_for(4);
        let c8 = count_for(8);
        let c16 = count_for(16);
        // Quadratic growth: doubling m should roughly 4× the count.
        let r1 = c8 as f64 / c4 as f64;
        let r2 = c16 as f64 / c8 as f64;
        assert!((2.8..5.2).contains(&r1), "c4={c4} c8={c8} ratio {r1}");
        assert!((2.8..5.2).contains(&r2), "c8={c8} c16={c16} ratio {r2}");
    }
}

//! PoS-VRF leader election (§3.4.3).
//!
//! Each round `r`, governor `g_j` with `y_j` stake units computes
//! `⟨hash_{j,u}, π_{j,u}⟩ ← VRF_{g_j}(r, j, u)` for every stake unit `u`,
//! broadcasts the evaluations, and the owner of the globally least hash
//! leads the round. Because the VRF output is pseudorandom, the winning
//! probability of each governor is proportional to its stake.

use std::fmt;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, VrfEvaluation};

use crate::verify_pool::VerifyPool;

/// The VRF input for `(round, governor, unit)` — the paper's
/// `VRF_{g_j}(r, j, u)` with a chain tag for domain separation between
/// deployments.
pub fn election_message(chain_tag: &[u8], round: u64, governor: u32, unit: u64) -> Vec<u8> {
    let mut h = Sha256::new();
    h.update_field(b"prb-election");
    h.update_field(chain_tag);
    h.update(&round.to_be_bytes());
    h.update(&governor.to_be_bytes());
    h.update(&unit.to_be_bytes());
    h.finalize().to_bytes().to_vec()
}

/// One governor's election claim for a round: its best (least) VRF output
/// over its stake units, with the proof for that unit.
#[derive(Clone, Debug, PartialEq)]
pub struct ElectionClaim {
    /// Claiming governor.
    pub governor: u32,
    /// The stake unit achieving the least hash.
    pub unit: u64,
    /// The VRF evaluation for that unit.
    pub evaluation: VrfEvaluation,
}

impl ElectionClaim {
    /// Computes a governor's claim: evaluates the VRF once per stake unit
    /// and keeps the minimum output.
    ///
    /// Returns `None` for zero stake (no units, no claim).
    pub fn compute(
        chain_tag: &[u8],
        round: u64,
        governor: u32,
        stake: u64,
        key: &KeyPair,
    ) -> Option<Self> {
        let mut best: Option<(Digest, u64, VrfEvaluation)> = None;
        for unit in 0..stake {
            let msg = election_message(chain_tag, round, governor, unit);
            let eval = key.vrf_evaluate(&msg);
            let out = eval.output();
            if best.as_ref().is_none_or(|(b, _, _)| out < *b) {
                best = Some((out, unit, eval));
            }
        }
        best.map(|(_, unit, evaluation)| ElectionClaim {
            governor,
            unit,
            evaluation,
        })
    }

    /// Verifies the claim's proof; returns the authenticated output.
    ///
    /// The verifier must separately ensure `unit < stake(governor)` — a
    /// governor could otherwise mint extra lottery tickets.
    pub fn verify(&self, chain_tag: &[u8], round: u64, pk: &PublicKey) -> Option<Digest> {
        let msg = election_message(chain_tag, round, self.governor, self.unit);
        pk.vrf_verify(&msg, &self.evaluation)
    }
}

/// Result of an election round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectionResult {
    /// The winning governor.
    pub leader: u32,
    /// The winning (least) VRF output.
    pub winning_hash: Digest,
}

/// Why a claim was rejected during tallying.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClaimRejection {
    /// Proof failed to verify.
    BadProof,
    /// The claimed unit is at or beyond the governor's stake.
    UnitOutOfRange,
    /// The claiming governor index is unknown.
    UnknownGovernor,
    /// The claiming governor was expelled from the committee on
    /// equivocation evidence; its claims are ignored regardless of any
    /// residual stake.
    Expelled,
}

impl fmt::Display for ClaimRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClaimRejection::BadProof => "vrf proof invalid",
            ClaimRejection::UnitOutOfRange => "claimed stake unit out of range",
            ClaimRejection::UnknownGovernor => "unknown governor",
            ClaimRejection::Expelled => "governor expelled from committee",
        })
    }
}

/// Tallies verified claims and elects the least hash.
///
/// `stakes[g]` and `pks[g]` give each governor's stake and public key.
/// Invalid claims are skipped and reported; ties on the hash (which are
/// cryptographically negligible but possible in tests) break toward the
/// smaller governor index so every honest tallier agrees.
///
/// Returns `(result, rejections)`; `result` is `None` when no claim
/// survived.
pub fn elect(
    chain_tag: &[u8],
    round: u64,
    claims: &[ElectionClaim],
    stakes: &[u64],
    pks: &[PublicKey],
) -> (Option<ElectionResult>, Vec<(u32, ClaimRejection)>) {
    elect_with_pool(
        chain_tag,
        round,
        claims,
        stakes,
        pks,
        &VerifyPool::single_threaded(),
    )
}

/// [`elect`] with the claims' VRF proofs verified as one batch through a
/// [`VerifyPool`] — a round's `m` claim verifications share one randomized
/// linear combination (and, for large `m`, multiple worker threads) instead
/// of `m` independent exponentiation chains.
///
/// The result and the rejection list are identical to [`elect`]'s, entry
/// for entry, regardless of the pool's thread count.
pub fn elect_with_pool(
    chain_tag: &[u8],
    round: u64,
    claims: &[ElectionClaim],
    stakes: &[u64],
    pks: &[PublicKey],
    pool: &VerifyPool,
) -> (Option<ElectionResult>, Vec<(u32, ClaimRejection)>) {
    elect_excluding(chain_tag, round, claims, stakes, pks, &[], pool)
}

/// [`elect_with_pool`] restricted to the *active* committee: claims from
/// governors listed in `expelled` are rejected with
/// [`ClaimRejection::Expelled`] before any proof work. Expulsion already
/// slashes the culprit's stake to zero (so its claims would fail
/// structurally anyway), but the explicit exclusion makes the tally's
/// reasoning auditable and keeps working even if the culprit somehow
/// regains stake through an in-flight transfer.
pub fn elect_excluding(
    chain_tag: &[u8],
    round: u64,
    claims: &[ElectionClaim],
    stakes: &[u64],
    pks: &[PublicKey],
    expelled: &[u32],
    pool: &VerifyPool,
) -> (Option<ElectionResult>, Vec<(u32, ClaimRejection)>) {
    // Pass 1: structural checks, recording which claims reach the proof
    // stage and the VRF message each one must verify against.
    let mut verdicts: Vec<Option<ClaimRejection>> = vec![None; claims.len()];
    let mut live = Vec::new();
    let mut msgs = Vec::new();
    for (i, claim) in claims.iter().enumerate() {
        let g = claim.governor as usize;
        if expelled.contains(&claim.governor) {
            verdicts[i] = Some(ClaimRejection::Expelled);
            continue;
        }
        if g >= stakes.len() || g >= pks.len() {
            verdicts[i] = Some(ClaimRejection::UnknownGovernor);
            continue;
        }
        if claim.unit >= stakes[g] {
            verdicts[i] = Some(ClaimRejection::UnitOutOfRange);
            continue;
        }
        live.push(i);
        msgs.push(election_message(
            chain_tag,
            round,
            claim.governor,
            claim.unit,
        ));
    }
    // Pass 2: one pooled batch over every surviving proof.
    let items: Vec<(&[u8], &VrfEvaluation, &PublicKey)> = live
        .iter()
        .zip(&msgs)
        .map(|(&i, msg)| {
            (
                &msg[..],
                &claims[i].evaluation,
                &pks[claims[i].governor as usize],
            )
        })
        .collect();
    let outputs = pool.vrf_verify(&items);
    // Pass 3: fold verdicts back in claim order, tallying the least hash.
    let mut rejections = Vec::new();
    let mut best: Option<(Digest, u32)> = None;
    let mut live_pos = 0;
    for (i, claim) in claims.iter().enumerate() {
        if let Some(why) = verdicts[i] {
            rejections.push((claim.governor, why));
            continue;
        }
        let output = outputs[live_pos];
        live_pos += 1;
        let Some(output) = output else {
            rejections.push((claim.governor, ClaimRejection::BadProof));
            continue;
        };
        let key = (output, claim.governor);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    (
        best.map(|(winning_hash, leader)| ElectionResult {
            leader,
            winning_hash,
        }),
        rejections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    const TAG: &[u8] = b"election-test";

    fn keys(m: u32) -> Vec<KeyPair> {
        (0..m)
            .map(|i| CryptoScheme::sim().keypair_from_seed(format!("g{i}").as_bytes()))
            .collect()
    }

    fn run_round(round: u64, stakes: &[u64], keys: &[KeyPair]) -> Option<ElectionResult> {
        let claims: Vec<ElectionClaim> = keys
            .iter()
            .enumerate()
            .filter_map(|(g, k)| ElectionClaim::compute(TAG, round, g as u32, stakes[g], k))
            .collect();
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let (result, rejections) = elect(TAG, round, &claims, stakes, &pks);
        assert!(rejections.is_empty(), "{rejections:?}");
        result
    }

    #[test]
    fn all_governors_agree_and_result_is_deterministic() {
        let keys = keys(4);
        let stakes = [3, 1, 2, 5];
        let a = run_round(7, &stakes, &keys);
        let b = run_round(7, &stakes, &keys);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn different_rounds_rotate_leaders() {
        let keys = keys(4);
        let stakes = [1, 1, 1, 1];
        let leaders: Vec<u32> = (0..32)
            .map(|r| run_round(r, &stakes, &keys).unwrap().leader)
            .collect();
        let mut distinct = leaders.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() >= 3, "leaders {leaders:?} too concentrated");
    }

    #[test]
    fn zero_stake_governor_never_claims_or_wins() {
        let keys = keys(3);
        let stakes = [0, 1, 1];
        for r in 0..50 {
            let result = run_round(r, &stakes, &keys).unwrap();
            assert_ne!(result.leader, 0);
        }
        assert!(ElectionClaim::compute(TAG, 0, 0, 0, &keys[0]).is_none());
    }

    #[test]
    fn stake_proportionality_statistical() {
        // Governor 0 holds 3/4 of the stake; over many rounds it should win
        // roughly 75% of elections.
        let keys = keys(2);
        let stakes = [30, 10];
        let rounds = 600;
        let wins0 = (0..rounds)
            .filter(|&r| run_round(r, &stakes, &keys).unwrap().leader == 0)
            .count();
        let rate = wins0 as f64 / rounds as f64;
        assert!((0.67..0.83).contains(&rate), "win rate {rate}");
    }

    #[test]
    fn forged_claim_rejected() {
        let keys = keys(2);
        let stakes = [2, 2];
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        // Governor 1 presents a claim computed with governor 0's key.
        let mut claim = ElectionClaim::compute(TAG, 3, 0, 2, &keys[0]).unwrap();
        claim.governor = 1;
        let (result, rejections) = elect(TAG, 3, std::slice::from_ref(&claim), &stakes, &pks);
        assert_eq!(result, None);
        assert_eq!(rejections, vec![(1, ClaimRejection::BadProof)]);
    }

    #[test]
    fn overclaimed_units_rejected() {
        let keys = keys(2);
        let stakes = [1, 1];
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        // Governor 0 evaluates unit 5 it does not own.
        let msg = election_message(TAG, 1, 0, 5);
        let claim = ElectionClaim {
            governor: 0,
            unit: 5,
            evaluation: keys[0].vrf_evaluate(&msg),
        };
        let (_, rejections) = elect(TAG, 1, &[claim], &stakes, &pks);
        assert_eq!(rejections, vec![(0, ClaimRejection::UnitOutOfRange)]);
    }

    #[test]
    fn unknown_governor_rejected() {
        let keys = keys(1);
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let claim = ElectionClaim::compute(TAG, 1, 7, 1, &keys[0]).unwrap();
        let (_, rejections) = elect(TAG, 1, &[claim], &[1], &pks);
        assert_eq!(rejections, vec![(7, ClaimRejection::UnknownGovernor)]);
    }

    #[test]
    fn expelled_governor_cannot_win_even_with_stake() {
        let keys = keys(3);
        let stakes = [5, 1, 1];
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let claims: Vec<ElectionClaim> = keys
            .iter()
            .enumerate()
            .filter_map(|(g, k)| ElectionClaim::compute(TAG, 2, g as u32, stakes[g], k))
            .collect();
        let pool = VerifyPool::single_threaded();
        let (full, _) = elect_excluding(TAG, 2, &claims, &stakes, &pks, &[], &pool);
        let (result, rejections) = elect_excluding(TAG, 2, &claims, &stakes, &pks, &[0], &pool);
        assert_eq!(rejections, vec![(0, ClaimRejection::Expelled)]);
        let result = result.unwrap();
        assert_ne!(result.leader, 0, "expelled claims never tally");
        // Exclusion only removes governor 0's claim from the race.
        let (without, _) = elect(TAG, 2, &claims[1..], &stakes, &pks);
        assert_eq!(Some(result), without);
        assert!(full.is_some());
        assert!(ClaimRejection::Expelled.to_string().contains("expelled"));
    }

    #[test]
    fn claim_verification_binds_round_and_tag() {
        let keys = keys(1);
        let pk = keys[0].public_key();
        let claim = ElectionClaim::compute(TAG, 5, 0, 1, &keys[0]).unwrap();
        assert!(claim.verify(TAG, 5, &pk).is_some());
        assert!(claim.verify(TAG, 6, &pk).is_none());
        assert!(claim.verify(b"other-chain", 5, &pk).is_none());
    }

    #[test]
    fn pooled_election_matches_sequential_including_rejections() {
        let scheme = CryptoScheme::schnorr_test_256();
        let keys: Vec<KeyPair> = (0..4)
            .map(|i| scheme.keypair_from_seed(format!("p{i}").as_bytes()))
            .collect();
        let stakes = [2, 2, 2, 2];
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let mut claims: Vec<ElectionClaim> = keys
            .iter()
            .enumerate()
            .filter_map(|(g, k)| ElectionClaim::compute(TAG, 9, g as u32, stakes[g], k))
            .collect();
        // Mix every rejection flavour into the batch.
        claims[1].governor = 2; // proof no longer matches the message -> BadProof
        claims.push(ElectionClaim {
            governor: 3,
            unit: 99,
            evaluation: keys[3].vrf_evaluate(b"whatever"),
        }); // UnitOutOfRange
        let mut unknown = claims[0].clone();
        unknown.governor = 42;
        claims.push(unknown); // UnknownGovernor
        let sequential = elect(TAG, 9, &claims, &stakes, &pks);
        for threads in [1, 2, 4] {
            let pooled = elect_with_pool(
                TAG,
                9,
                &claims,
                &stakes,
                &pks,
                &crate::verify_pool::VerifyPool::new(threads),
            );
            assert_eq!(pooled, sequential, "threads={threads}");
        }
        let (result, rejections) = sequential;
        assert!(result.is_some());
        assert_eq!(rejections.len(), 3);
        assert!(rejections.contains(&(2, ClaimRejection::BadProof)));
        assert!(rejections.contains(&(3, ClaimRejection::UnitOutOfRange)));
        assert!(rejections.contains(&(42, ClaimRejection::UnknownGovernor)));
    }

    #[test]
    fn works_with_real_schnorr_vrf() {
        let scheme = CryptoScheme::schnorr_test_256();
        let keys: Vec<KeyPair> = (0..2)
            .map(|i| scheme.keypair_from_seed(format!("s{i}").as_bytes()))
            .collect();
        let stakes = [2, 2];
        let pks: Vec<PublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let claims: Vec<ElectionClaim> = keys
            .iter()
            .enumerate()
            .filter_map(|(g, k)| ElectionClaim::compute(TAG, 0, g as u32, stakes[g], k))
            .collect();
        let (result, rejections) = elect(TAG, 0, &claims, &stakes, &pks);
        assert!(rejections.is_empty());
        assert!(result.is_some());
    }
}

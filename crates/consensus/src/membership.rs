//! Dynamic membership: quorum-certified join/leave/evict protocols and
//! the epoch log that makes committee size a function of chain serial.
//!
//! A node enters or leaves the deployment through a [`MembershipRequest`]
//! — subject-signed for voluntary moves (a join posts a stake bond, a
//! leave renounces participation), unsigned for an eviction (the quorum
//! of governor shares *is* the authorization, exactly like an expulsion
//! conviction). Each governor that accepts a request signs its digest as
//! a [`MembershipShare`]; a BFT quorum of matching shares forms a
//! [`MembershipCert`], the on-chain-auditable analogue of the checkpoint
//! certificates in [`crate::checkpoint`]. Certs persist across restarts
//! via `prb-store`, so membership epochs survive a crash.
//!
//! The [`EpochLog`] records every committee departure and readmission
//! against the chain serial it took effect at. Quorum sizing then reads
//! the membership epoch *at a given serial* instead of the current
//! committee count: a checkpoint certificate formed before an expulsion
//! or voluntary leave still verifies after it, because `active_at` and
//! `departed_at` reconstruct the committee as it stood when the cert's
//! shares were signed.

use std::fmt;

use prb_crypto::sha256::{Digest, Sha256};
use prb_crypto::signer::{KeyPair, PublicKey, Sig};

use crate::checkpoint::quorum;

/// Domain tag for membership signatures.
const MEMBERSHIP_TAG: &[u8] = b"prb-membership";

/// Which tier the subject of a membership action belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemberRole {
    /// A collector (screened reporter).
    Collector,
    /// A governor (committee member).
    Governor,
}

impl MemberRole {
    fn tag(self) -> u8 {
        match self {
            MemberRole::Collector => 0,
            MemberRole::Governor => 1,
        }
    }
}

/// What the request does to the subject's membership.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum MembershipAction {
    /// Stake-backed admission (or readmission after a leave).
    Join,
    /// Voluntary departure; the subject renounces participation.
    Leave,
    /// Committee-initiated removal (reputation or responsiveness fell
    /// below threshold). Carries no subject signature — the quorum of
    /// governor shares authorizes it.
    Evict,
}

impl MembershipAction {
    fn tag(self) -> u8 {
        match self {
            MembershipAction::Join => 0,
            MembershipAction::Leave => 1,
            MembershipAction::Evict => 2,
        }
    }
}

/// A membership state transition offered to the committee.
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipRequest {
    /// Tier of the subject.
    pub role: MemberRole,
    /// The subject's index within its tier.
    pub member: u32,
    /// What happens to the subject.
    pub action: MembershipAction,
    /// Stake units bonded with a join (0 for leave/evict). Admission is
    /// stake-backed: governors refuse to sign a bondless join.
    pub bond: u64,
    /// The round the transition takes effect at. Every governor applies
    /// certified transitions at the start of this round, so the whole
    /// committee switches epochs on the same boundary.
    pub effective_round: u64,
    /// The subject's signature over [`MembershipRequest::digest`] for
    /// `Join`/`Leave`; `None` for `Evict`.
    pub sig: Option<Sig>,
}

impl MembershipRequest {
    /// The canonical digest governors sign shares over. Deliberately
    /// excludes the subject signature so that every governor's share —
    /// however the request reached it — counts toward the same cert.
    pub fn digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update_field(MEMBERSHIP_TAG);
        h.update(&[self.role.tag(), self.action.tag()]);
        h.update(&self.member.to_be_bytes());
        h.update(&self.bond.to_be_bytes());
        h.update(&self.effective_round.to_be_bytes());
        h.finalize()
    }

    /// Creates a subject-signed `Join`/`Leave` request.
    pub fn create(
        role: MemberRole,
        member: u32,
        action: MembershipAction,
        bond: u64,
        effective_round: u64,
        key: &KeyPair,
    ) -> Self {
        let mut req = MembershipRequest {
            role,
            member,
            action,
            bond,
            effective_round,
            sig: None,
        };
        req.sig = Some(key.sign(req.digest().as_bytes()));
        req
    }

    /// An unsigned eviction proposal (quorum-authorized, no subject
    /// signature).
    pub fn evict(role: MemberRole, member: u32, effective_round: u64) -> Self {
        MembershipRequest {
            role,
            member,
            action: MembershipAction::Evict,
            bond: 0,
            effective_round,
            sig: None,
        }
    }

    /// Whether the request is acceptably authorized: `Join`/`Leave` carry
    /// a valid subject signature under `subject_pk`; `Evict` carries none
    /// (its authorization is the share quorum itself).
    pub fn authorized(&self, subject_pk: &PublicKey) -> bool {
        match self.action {
            MembershipAction::Evict => self.sig.is_none(),
            MembershipAction::Join | MembershipAction::Leave => self
                .sig
                .as_ref()
                .is_some_and(|s| subject_pk.verify(self.digest().as_bytes(), s)),
        }
    }
}

/// Canonical signing bytes for a governor's share over a request digest.
fn share_bytes(governor: u32, digest: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update_field(MEMBERSHIP_TAG);
    h.update(b"share");
    h.update(&governor.to_be_bytes());
    h.update_field(digest.as_bytes());
    h.finalize()
}

/// One governor's endorsement of a membership request.
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipShare {
    /// Digest of the endorsed [`MembershipRequest`].
    pub request_digest: Digest,
    /// The signing governor's index.
    pub governor: u32,
    /// Signature under the membership domain tag.
    pub sig: Sig,
}

impl MembershipShare {
    /// Signs a share endorsing `request_digest`.
    pub fn create(request_digest: Digest, governor: u32, key: &KeyPair) -> Self {
        let msg = share_bytes(governor, &request_digest);
        MembershipShare {
            request_digest,
            governor,
            sig: key.sign(msg.as_bytes()),
        }
    }

    /// Verifies the signature against the claimed governor's key.
    pub fn verify(&self, pks: &[PublicKey]) -> bool {
        let Some(pk) = pks.get(self.governor as usize) else {
            return false;
        };
        let msg = share_bytes(self.governor, &self.request_digest);
        pk.verify(msg.as_bytes(), &self.sig)
    }
}

/// Why a membership certificate failed verification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MembershipError {
    /// Fewer valid, distinct, in-committee signers than the quorum.
    UnderQuorum {
        /// Valid signatures counted.
        got: usize,
        /// Signatures required.
        need: usize,
    },
    /// A governor signature names an unknown index or fails to verify.
    BadSignature {
        /// The offending signer index.
        governor: u32,
    },
    /// The subject signature is missing, present where forbidden, or
    /// fails to verify.
    BadSubject,
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::UnderQuorum { got, need } => {
                write!(f, "{got} valid signatures, quorum is {need}")
            }
            MembershipError::BadSignature { governor } => {
                write!(f, "signature of g{governor} invalid")
            }
            MembershipError::BadSubject => write!(f, "subject authorization invalid"),
        }
    }
}

impl std::error::Error for MembershipError {}

impl MembershipError {
    /// A short stable label for metric keys.
    pub fn kind(&self) -> &'static str {
        match self {
            MembershipError::UnderQuorum { .. } => "under_quorum",
            MembershipError::BadSignature { .. } => "bad_signature",
            MembershipError::BadSubject => "bad_subject",
        }
    }
}

/// A quorum-certified membership transition.
#[derive(Clone, Debug, PartialEq)]
pub struct MembershipCert {
    /// The certified request.
    pub request: MembershipRequest,
    /// `(governor, signature)` pairs, sorted by governor index.
    pub sigs: Vec<(u32, Sig)>,
}

impl MembershipCert {
    /// Verifies the certificate: the subject authorization holds, every
    /// counted signature is by a distinct committee member over this
    /// request's digest, and at least [`quorum`] of `active` committee
    /// members signed.
    ///
    /// # Errors
    ///
    /// Returns the first [`MembershipError`] encountered.
    pub fn verify(
        &self,
        subject_pk: &PublicKey,
        governor_pks: &[PublicKey],
        active: usize,
    ) -> Result<(), MembershipError> {
        if !self.request.authorized(subject_pk) {
            return Err(MembershipError::BadSubject);
        }
        let m = governor_pks.len();
        let digest = self.request.digest();
        let need = quorum(active);
        let mut seen = vec![false; m];
        let mut got = 0usize;
        for (governor, sig) in &self.sigs {
            let g = *governor as usize;
            if g >= m {
                return Err(MembershipError::BadSignature {
                    governor: *governor,
                });
            }
            if seen[g] {
                continue;
            }
            let msg = share_bytes(*governor, &digest);
            if !governor_pks[g].verify(msg.as_bytes(), sig) {
                return Err(MembershipError::BadSignature {
                    governor: *governor,
                });
            }
            seen[g] = true;
            got += 1;
        }
        if got < need {
            return Err(MembershipError::UnderQuorum { got, need });
        }
        Ok(())
    }
}

/// What an epoch event did to the member's committee standing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochKind {
    /// The member left the active committee (leave, evict or expulsion).
    Departure,
    /// The member rejoined the active committee.
    Readmission,
}

/// One committee transition, anchored to the chain serial it took effect
/// at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochEvent {
    /// Chain height when the transition was applied.
    pub serial: u64,
    /// The member's committee index.
    pub member: u32,
    /// Departure or readmission.
    pub kind: EpochKind,
}

/// The committee's membership history as a function of chain serial.
///
/// Events are appended in application order (serials are monotone within
/// one governor's view). `departed_at(s)` reconstructs who was out of
/// the committee when the block at serial `s` was being certified: an
/// event at serial `e` affects certs at serials strictly greater than
/// `e`, so a certificate formed at the very height a departure was
/// recorded still counts the departing member as active — its share was
/// signed before the departure took effect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EpochLog {
    /// Committee size at genesis.
    initial: usize,
    events: Vec<EpochEvent>,
}

impl EpochLog {
    /// A log for a committee of `initial` members, no events yet.
    pub fn new(initial: usize) -> Self {
        EpochLog {
            initial,
            events: Vec::new(),
        }
    }

    /// The genesis committee size.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// All recorded events, in application order.
    pub fn events(&self) -> &[EpochEvent] {
        &self.events
    }

    /// Records `member` leaving the committee at chain height `serial`.
    /// Idempotent: a member already departed is not re-recorded.
    pub fn record_departure(&mut self, member: u32, serial: u64) {
        if self.is_departed_now(member) {
            return;
        }
        self.events.push(EpochEvent {
            serial,
            member,
            kind: EpochKind::Departure,
        });
    }

    /// Records `member` rejoining at chain height `serial`. Idempotent:
    /// only a currently departed member is re-admitted.
    pub fn record_readmission(&mut self, member: u32, serial: u64) {
        if !self.is_departed_now(member) {
            return;
        }
        self.events.push(EpochEvent {
            serial,
            member,
            kind: EpochKind::Readmission,
        });
    }

    /// Whether `member` is departed in the latest epoch.
    pub fn is_departed_now(&self, member: u32) -> bool {
        self.departed_members(u64::MAX).contains(&member)
    }

    /// Members out of the committee for certs at `serial`: every member
    /// whose last event strictly below `serial` was a departure. Sorted.
    pub fn departed_at(&self, serial: u64) -> Vec<u32> {
        self.departed_members(serial)
    }

    /// Active committee size for certs at `serial`.
    pub fn active_at(&self, serial: u64) -> usize {
        self.initial - self.departed_members(serial).len()
    }

    fn departed_members(&self, serial: u64) -> Vec<u32> {
        let mut departed = Vec::new();
        for e in self.events.iter().filter(|e| e.serial < serial) {
            match e.kind {
                EpochKind::Departure => {
                    if !departed.contains(&e.member) {
                        departed.push(e.member);
                    }
                }
                EpochKind::Readmission => departed.retain(|&m| m != e.member),
            }
        }
        departed.sort_unstable();
        departed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::CryptoScheme;

    fn keys(m: usize) -> (Vec<KeyPair>, Vec<PublicKey>) {
        let scheme = CryptoScheme::sim();
        let keys: Vec<_> = (0..m)
            .map(|g| scheme.keypair_from_seed(format!("mem-g{g}").as_bytes()))
            .collect();
        let pks = keys.iter().map(|k| k.public_key()).collect();
        (keys, pks)
    }

    fn subject() -> (KeyPair, PublicKey) {
        let key = CryptoScheme::sim().keypair_from_seed(b"mem-subject");
        let pk = key.public_key();
        (key, pk)
    }

    fn cert(req: &MembershipRequest, signers: &[usize], keys: &[KeyPair]) -> MembershipCert {
        let digest = req.digest();
        let sigs = signers
            .iter()
            .map(|&g| {
                let share = MembershipShare::create(digest, g as u32, &keys[g]);
                (g as u32, share.sig)
            })
            .collect();
        MembershipCert {
            request: req.clone(),
            sigs,
        }
    }

    #[test]
    fn digest_commits_to_every_field_but_the_signature() {
        let (key, _) = subject();
        let base =
            MembershipRequest::create(MemberRole::Collector, 3, MembershipAction::Join, 2, 7, &key);
        let mut variants = vec![base.clone(); 4];
        variants[0].role = MemberRole::Governor;
        variants[1].member = 4;
        variants[2].bond = 3;
        variants[3].effective_round = 8;
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(v.digest(), base.digest(), "variant {i} collided");
        }
        // The subject signature is excluded: a re-signed copy digests the
        // same, so shares from differently-relayed copies agree.
        let mut resigned = base.clone();
        resigned.sig = Some(key.sign(b"other"));
        assert_eq!(resigned.digest(), base.digest());
        let evict = MembershipRequest::evict(MemberRole::Collector, 3, 7);
        assert_ne!(evict.digest(), base.digest());
    }

    #[test]
    fn subject_authorization_rules() {
        let (key, pk) = subject();
        let (stranger, _) = subject_with(b"stranger");
        let join =
            MembershipRequest::create(MemberRole::Collector, 1, MembershipAction::Join, 1, 5, &key);
        assert!(join.authorized(&pk));
        // A request signed by someone else fails.
        let forged = MembershipRequest::create(
            MemberRole::Collector,
            1,
            MembershipAction::Join,
            1,
            5,
            &stranger,
        );
        assert!(!forged.authorized(&pk));
        // A stripped signature fails for Join/Leave.
        let mut stripped = join.clone();
        stripped.sig = None;
        assert!(!stripped.authorized(&pk));
        // Evictions must NOT carry a subject signature (a signed one is
        // malformed — it would masquerade as consent).
        let evict = MembershipRequest::evict(MemberRole::Governor, 2, 5);
        assert!(evict.authorized(&pk));
        let mut signed_evict = evict.clone();
        signed_evict.sig = Some(key.sign(b"x"));
        assert!(!signed_evict.authorized(&pk));
    }

    fn subject_with(seed: &[u8]) -> (KeyPair, PublicKey) {
        let key = CryptoScheme::sim().keypair_from_seed(seed);
        let pk = key.public_key();
        (key, pk)
    }

    #[test]
    fn share_roundtrip_and_forgery() {
        let (gkeys, pks) = keys(4);
        let digest = MembershipRequest::evict(MemberRole::Collector, 0, 3).digest();
        let share = MembershipShare::create(digest, 2, &gkeys[2]);
        assert!(share.verify(&pks));
        let mut wrong = share.clone();
        wrong.governor = 1;
        assert!(!wrong.verify(&pks));
        let mut wrong = share;
        wrong.request_digest = prb_crypto::sha256::sha256(b"x");
        assert!(!wrong.verify(&pks));
    }

    #[test]
    fn cert_quorum_and_forgery() {
        let (gkeys, pks) = keys(4);
        let (key, pk) = subject();
        let req = MembershipRequest::create(
            MemberRole::Collector,
            5,
            MembershipAction::Leave,
            0,
            9,
            &key,
        );
        // 3 of 4 active: quorum.
        assert_eq!(cert(&req, &[0, 1, 2], &gkeys).verify(&pk, &pks, 4), Ok(()));
        // 2 of 4: under quorum; duplicates do not inflate.
        let mut thin = cert(&req, &[0, 1], &gkeys);
        assert_eq!(
            thin.verify(&pk, &pks, 4),
            Err(MembershipError::UnderQuorum { got: 2, need: 3 })
        );
        let extra = thin.sigs[0].clone();
        thin.sigs.push(extra);
        assert_eq!(
            thin.verify(&pk, &pks, 4),
            Err(MembershipError::UnderQuorum { got: 2, need: 3 })
        );
        // With a 3-member active committee the same 3 signatures carry it.
        assert_eq!(cert(&req, &[0, 1, 2], &gkeys).verify(&pk, &pks, 3), Ok(()));
        // Forged governor signature.
        let mut forged = cert(&req, &[0, 1, 2], &gkeys);
        forged.sigs[2] = (2, MembershipShare::create(req.digest(), 2, &gkeys[3]).sig);
        assert_eq!(
            forged.verify(&pk, &pks, 4),
            Err(MembershipError::BadSignature { governor: 2 })
        );
        // Out-of-committee signer index.
        let mut oob = cert(&req, &[0, 1, 2], &gkeys);
        oob.sigs[0].0 = 9;
        assert_eq!(
            oob.verify(&pk, &pks, 4),
            Err(MembershipError::BadSignature { governor: 9 })
        );
        // Bad subject authorization dominates.
        let mut stripped = cert(&req, &[0, 1, 2], &gkeys);
        stripped.request.sig = None;
        assert_eq!(
            stripped.verify(&pk, &pks, 4),
            Err(MembershipError::BadSubject)
        );
    }

    #[test]
    fn error_display_and_kind() {
        let e = MembershipError::UnderQuorum { got: 1, need: 3 };
        assert!(e.to_string().contains("quorum is 3"));
        assert_eq!(e.kind(), "under_quorum");
        assert_eq!(
            MembershipError::BadSignature { governor: 2 }.kind(),
            "bad_signature"
        );
        assert_eq!(MembershipError::BadSubject.kind(), "bad_subject");
    }

    #[test]
    fn epoch_log_reconstructs_committee_at_serial() {
        let mut log = EpochLog::new(4);
        assert_eq!(log.active_at(0), 4);
        assert_eq!(log.departed_at(100), Vec::<u32>::new());
        log.record_departure(1, 6);
        log.record_departure(3, 10);
        log.record_readmission(1, 12);
        // Strictly-below semantics: a cert at the departure serial still
        // counts the departing member as active.
        assert_eq!(log.departed_at(6), Vec::<u32>::new());
        assert_eq!(log.active_at(6), 4);
        assert_eq!(log.departed_at(7), vec![1]);
        assert_eq!(log.active_at(7), 3);
        assert_eq!(log.departed_at(11), vec![1, 3]);
        assert_eq!(log.active_at(11), 2);
        // Readmission restores membership for later serials.
        assert_eq!(log.departed_at(13), vec![3]);
        assert_eq!(log.active_at(13), 3);
    }

    #[test]
    fn epoch_log_idempotence() {
        let mut log = EpochLog::new(4);
        log.record_departure(2, 5);
        log.record_departure(2, 6); // already departed: ignored
        assert_eq!(log.events().len(), 1);
        log.record_readmission(0, 7); // never departed: ignored
        assert_eq!(log.events().len(), 1);
        log.record_readmission(2, 8);
        log.record_readmission(2, 9); // already back: ignored
        assert_eq!(log.events().len(), 2);
        assert!(!log.is_departed_now(2));
        assert_eq!(log.initial(), 4);
    }

    #[test]
    fn cert_formed_before_departure_still_verifies_after_it() {
        // The satellite-2 scenario at the membership layer: a checkpoint
        // cert whose quorum includes a later-departed governor is sized
        // by the epoch at its serial, not the current committee.
        let mut log = EpochLog::new(4);
        log.record_departure(3, 8);
        // A cert at serial 6 (before the departure): all 4 were active,
        // so quorum is 3 and g3's signature counts.
        assert_eq!(log.active_at(6), 4);
        assert!(!log.departed_at(6).contains(&3));
        // A cert at serial 9 (after): 3 active, g3 excluded.
        assert_eq!(log.active_at(9), 3);
        assert!(log.departed_at(9).contains(&3));
    }
}

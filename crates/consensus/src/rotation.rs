//! A rotating-leader block replication protocol (Tendermint-flavoured
//! baseline, §2.2): the leader of round `h` is `h mod m`; it proposes a
//! block, replicas vote, and the block commits on a `> 2/3` vote
//! certificate. A round timer skips crashed leaders (the round advances
//! with an empty commit).
//!
//! This is the fully-executable counterpart of
//! [`crate::round_robin::leader_of_round`], used by ablation A4 to compare
//! the paper's VRF-PoS election against deterministic rotation under
//! identical network conditions — including leader-crash behaviour, where
//! rotation needs explicit skip logic while VRF-PoS simply elects among
//! the live claimants.

use std::collections::{HashMap, HashSet};

use prb_crypto::sha256::Digest;
use prb_net::message::Envelope;
use prb_net::sim::{Actor, Context};
use prb_net::time::SimDuration;
use prb_net::TimerId;
use prb_obs::{phases, EventKind as ObsEvent, Obs, ObsHandle, Span};

/// Messages of the rotation protocol.
#[derive(Clone, Debug)]
pub enum RotationMsg {
    /// Driver command: start height `h` (all replicas, same tick).
    StartHeight {
        /// The height to run.
        height: u64,
        /// Value the leader should propose (driver-supplied payload).
        value: Digest,
    },
    /// Leader's proposal for the height.
    Propose {
        /// Height being decided.
        height: u64,
        /// Proposed value.
        value: Digest,
    },
    /// A replica's vote.
    Vote {
        /// Height being decided.
        height: u64,
        /// Voted value.
        value: Digest,
    },
}

/// One rotation replica.
#[derive(Debug)]
pub struct RotationReplica {
    index: u32,
    m: u32,
    net_base: usize,
    height: u64,
    pending_value: Option<Digest>,
    votes: HashMap<(u64, Digest), HashSet<u32>>,
    decided: Vec<(u64, Option<Digest>)>,
    round_timer: Option<TimerId>,
    timeout: SimDuration,
    obs: ObsHandle,
    /// Open commit spans: height start → decision.
    height_spans: HashMap<u64, Span>,
}

impl RotationReplica {
    /// Creates replica `index` of `m` at network index `net_base + index`.
    pub fn new(index: u32, m: u32, net_base: usize, timeout: SimDuration) -> Self {
        RotationReplica {
            index,
            m,
            net_base,
            height: 0,
            pending_value: None,
            votes: HashMap::new(),
            decided: Vec::new(),
            round_timer: None,
            timeout,
            obs: Obs::off(),
            height_spans: HashMap::new(),
        }
    }

    /// Installs an observability hub (defaults to [`Obs::off`]); the
    /// replica then emits `rot.decided` events and `commit` phase spans.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn net_idx(&self) -> u64 {
        (self.net_base + self.index as usize) as u64
    }

    /// Heights decided so far; `None` marks a skipped (timed-out) leader.
    pub fn decided(&self) -> &[(u64, Option<Digest>)] {
        &self.decided
    }

    fn leader_of(&self, height: u64) -> u32 {
        (height % self.m as u64) as u32
    }

    fn quorum(&self) -> usize {
        (2 * self.m as usize) / 3 + 1
    }

    fn broadcast(&self, ctx: &mut Context<'_, RotationMsg>, kind: &'static str, msg: &RotationMsg) {
        for g in 0..self.m as usize {
            let peer = self.net_base + g;
            if peer != ctx.self_idx() {
                ctx.send_sized(peer, kind, 40, msg.clone());
            }
        }
    }

    fn record_vote(&mut self, height: u64, value: Digest, from: u32) -> bool {
        let votes = self.votes.entry((height, value)).or_default();
        votes.insert(from);
        votes.len() >= self.quorum()
    }

    fn decide(&mut self, height: u64, value: Option<Digest>, now: u64) {
        if self.decided.iter().any(|(h, _)| *h == height) {
            return;
        }
        self.decided.push((height, value));
        self.round_timer = None;
        self.obs.emit(
            now,
            self.net_idx(),
            ObsEvent::RotationDecided {
                height,
                skipped: value.is_none(),
            },
        );
        if let Some(span) = self.height_spans.remove(&height) {
            self.obs.end_span(span, now, self.net_idx());
        }
    }
}

impl Actor for RotationReplica {
    type Msg = RotationMsg;

    fn on_message(&mut self, env: Envelope<RotationMsg>, ctx: &mut Context<'_, RotationMsg>) {
        match env.payload {
            RotationMsg::StartHeight { height, value } => {
                self.height = height;
                self.pending_value = Some(value);
                self.round_timer = Some(ctx.set_timer(self.timeout));
                self.height_spans
                    .entry(height)
                    .or_insert_with(|| Span::begin(phases::COMMIT, ctx.now().ticks()));
                if self.leader_of(height) == self.index {
                    let msg = RotationMsg::Propose { height, value };
                    self.broadcast(ctx, "rot-propose", &msg);
                    // Leader votes for its own proposal.
                    if self.record_vote(height, value, self.index) {
                        self.decide(height, Some(value), ctx.now().ticks());
                    }
                    self.broadcast(ctx, "rot-vote", &RotationMsg::Vote { height, value });
                }
            }
            RotationMsg::Propose { height, value } => {
                if height != self.height {
                    return;
                }
                let from = env.from.checked_sub(self.net_base).map(|g| g as u32);
                if from != Some(self.leader_of(height)) {
                    return; // only the height's leader may propose
                }
                if self.record_vote(height, value, self.index) {
                    self.decide(height, Some(value), ctx.now().ticks());
                }
                self.broadcast(ctx, "rot-vote", &RotationMsg::Vote { height, value });
            }
            RotationMsg::Vote { height, value } => {
                if height != self.height {
                    return;
                }
                let Some(from) = env.from.checked_sub(self.net_base).map(|g| g as u32) else {
                    return;
                };
                if self.record_vote(height, value, from) {
                    self.decide(height, Some(value), ctx.now().ticks());
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, RotationMsg>) {
        if self.round_timer != Some(timer) {
            return;
        }
        // Leader silent for a whole round: skip the height.
        let height = self.height;
        self.decide(height, None, ctx.now().ticks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::sha256::sha256;
    use prb_net::fault::FaultPlan;
    use prb_net::sim::{NetConfig, Network};
    use prb_net::time::SimTime;

    fn build(m: u32) -> Network<RotationReplica> {
        let mut net = Network::new(NetConfig::uniform(1, 4), 17);
        for i in 0..m {
            net.add_node(RotationReplica::new(i, m, 0, SimDuration(200)));
        }
        net
    }

    fn start_height(net: &mut Network<RotationReplica>, m: u32, height: u64, at: u64) -> Digest {
        let value = sha256(format!("block-{height}").as_bytes());
        for g in 0..m as usize {
            net.send_external(
                g,
                "start",
                RotationMsg::StartHeight { height, value },
                SimTime(at),
            );
        }
        value
    }

    #[test]
    fn leaders_rotate_and_all_decide() {
        let m = 4;
        let mut net = build(m);
        let mut values = Vec::new();
        for h in 0..6u64 {
            values.push(start_height(&mut net, m, h, h * 500));
        }
        net.run_until_idle(100_000);
        for g in 0..m as usize {
            let decided = net.node(g).decided();
            assert_eq!(decided.len(), 6, "replica {g}");
            for (h, v) in decided {
                assert_eq!(*v, Some(values[*h as usize]), "replica {g} height {h}");
            }
        }
    }

    #[test]
    fn crashed_leader_heights_are_skipped_not_stuck() {
        let m = 4;
        let mut net = build(m);
        let mut faults = FaultPlan::none();
        faults.crash(1, SimTime(0)); // leader of heights 1, 5, …
        net.set_faults(faults);
        for h in 0..4u64 {
            start_height(&mut net, m, h, h * 500);
        }
        net.run_until_idle(100_000);
        for g in [0usize, 2, 3] {
            let decided = net.node(g).decided();
            assert_eq!(decided.len(), 4, "replica {g}");
            let by_height: HashMap<u64, Option<Digest>> = decided.iter().cloned().collect();
            assert!(by_height[&0].is_some());
            assert_eq!(by_height[&1], None, "crashed leader's height skipped");
            assert!(by_height[&2].is_some());
            assert!(by_height[&3].is_some());
        }
    }

    #[test]
    fn non_leader_proposals_are_ignored() {
        let m = 4;
        let mut net = build(m);
        start_height(&mut net, m, 0, 0);
        // Replica 2 (not the leader of height 0) injects a rogue proposal
        // via an external message (from == EXTERNAL ⇒ rejected).
        let rogue = sha256(b"rogue");
        net.send_external(
            3,
            "rogue",
            RotationMsg::Propose {
                height: 0,
                value: rogue,
            },
            SimTime(1),
        );
        net.run_until_idle(100_000);
        for g in 0..m as usize {
            let decided = net.node(g).decided();
            assert_eq!(decided.len(), 1);
            assert_ne!(decided[0].1, Some(rogue));
        }
    }

    #[test]
    fn message_complexity_is_quadratic() {
        let count = |m: u32| {
            let mut net = build(m);
            start_height(&mut net, m, 0, 0);
            net.run_until_idle(1_000_000);
            net.stats().kind("rot-propose").sent + net.stats().kind("rot-vote").sent
        };
        let c4 = count(4);
        let c8 = count(8);
        let ratio = c8 as f64 / c4 as f64;
        assert!((3.0..5.0).contains(&ratio), "c4={c4} c8={c8}");
    }
}

//! A simplified PBFT replica — the message-complexity baseline (§2.2).
//!
//! The paper positions its leader-based scheme against classical BFT
//! protocols (PBFT in early Hyperledger Fabric, BFT-SMaRt, Tendermint).
//! For experiment E6/A4 we implement the normal-case three-phase exchange
//! of PBFT over the simulated network:
//!
//! - **pre-prepare**: the primary broadcasts the proposal,
//! - **prepare**: every replica broadcasts a prepare once it has the
//!   proposal; a replica is *prepared* after `2f` matching prepares,
//! - **commit**: prepared replicas broadcast a commit; a replica decides
//!   after `2f + 1` matching commits.
//!
//! This yields the classical `O(m²)` per decision, versus the reputation
//! protocol's `O(b_limit·m)` block dissemination. View changes are
//! triggered by a driver-set timeout when the primary is crashed: replicas
//! broadcast view-change votes and move to view `v+1` on `2f + 1` votes
//! (a simplification of the full PBFT view-change certificate, sufficient
//! for crash faults; Byzantine primaries are out of scope for the
//! baseline, which only serves as a message-count and latency yardstick).
//!
//! A replica that slept through one or more view changes (a healed crash
//! window) catches up via state transfer instead of stalling: the first
//! message it sees from a higher view triggers a [`PbftMsg::StateRequest`]
//! to the sender (rate-limited to one per observed view), and the
//! [`PbftMsg::StateResponse`] carries the responder's view and decided
//! log, which the requester merges (deduplicated by sequence number)
//! before adopting the view. Responses are accepted only from the replica
//! the request went to, while an answer is outstanding, and only when the
//! claimed view is not behind ours — unsolicited, stale or malformed
//! responses are forgeries and never overwrite local state.

use std::collections::{HashMap, HashSet};

use prb_crypto::sha256::Digest;
use prb_net::message::Envelope;
use prb_net::sim::{Actor, Context};
use prb_net::time::SimDuration;
use prb_net::TimerId;
use prb_obs::{phases, EventKind as ObsEvent, Obs, ObsHandle, Span};

/// PBFT protocol messages.
#[derive(Clone, Debug)]
pub enum PbftMsg {
    /// Driver command to the current primary: propose this value.
    ClientRequest(Digest),
    /// Primary's proposal for (view, seq).
    PrePrepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Proposed value.
        value: Digest,
    },
    /// Replica's prepare vote.
    Prepare {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Value being prepared.
        value: Digest,
    },
    /// Replica's commit vote.
    Commit {
        /// View number.
        view: u64,
        /// Sequence number.
        seq: u64,
        /// Value being committed.
        value: Digest,
    },
    /// View-change vote for `new_view`.
    ViewChange {
        /// The proposed new view.
        new_view: u64,
    },
    /// A replica that observed traffic from a higher view (e.g. after a
    /// crash window) asking the sender for its current state.
    StateRequest,
    /// Reply to [`PbftMsg::StateRequest`]: the responder's view and its
    /// full decided log. The requester adopts the higher view and merges
    /// any decisions it missed (deduplicated by sequence number).
    StateResponse {
        /// The responder's current view.
        view: u64,
        /// Everything the responder has decided, as `(seq, value)` pairs.
        decided: Vec<(u64, Digest)>,
    },
}

/// One PBFT replica.
#[derive(Debug)]
pub struct PbftReplica {
    index: u32,
    m: u32,
    net_base: usize,
    view: u64,
    next_seq: u64,
    /// Outstanding client requests (primary only).
    backlog: Vec<Digest>,
    prepares: HashMap<(u64, u64, Digest), HashSet<u32>>,
    commits: HashMap<(u64, u64, Digest), HashSet<u32>>,
    prepared: HashSet<(u64, u64)>,
    committed_seqs: HashSet<(u64, u64)>,
    decided: Vec<(u64, Digest)>,
    /// Sequence numbers present in `decided` — guards against the same
    /// request being decided twice across a view change or a state
    /// transfer replaying history.
    decided_seqs: HashSet<u64>,
    /// Views we have already sent a [`PbftMsg::StateRequest`] for, so a
    /// burst of higher-view traffic triggers exactly one request.
    state_requested: HashSet<u64>,
    /// The replica we most recently asked for state, if an answer is
    /// still outstanding. Responses from anyone else — or arriving when
    /// nothing was asked — are forged or stale and must not overwrite
    /// local state.
    state_request_peer: Option<u32>,
    /// Byzantine test hook: when set and this replica is primary, it
    /// equivocates on proposals — pre-preparing `.0` toward even-indexed
    /// replicas and `.1` toward odd-indexed ones (processing `.0` on its
    /// own path). Honest replicas must never decide conflicting values;
    /// a clean split starves both quorums and the view change recovers.
    pub equivocate_values: Option<(Digest, Digest)>,
    view_votes: HashMap<u64, HashSet<u32>>,
    /// Pre-prepares for views we have not entered yet (buffered so a fast
    /// new primary does not outrun slower replicas' view changes).
    future_preprepares: Vec<(u64, u64, Digest)>,
    /// Pending request timer (for view change detection).
    request_timer: Option<TimerId>,
    timeout: SimDuration,
    obs: ObsHandle,
    /// Open vote spans: pre-prepare accepted → prepared.
    vote_spans: HashMap<(u64, u64), Span>,
    /// Open commit spans: prepared → committed.
    commit_spans: HashMap<(u64, u64), Span>,
}

impl PbftReplica {
    /// Creates replica `index` of `m`; replica `i` lives at network index
    /// `net_base + i`. `timeout` arms the view-change timer per request.
    pub fn new(index: u32, m: u32, net_base: usize, timeout: SimDuration) -> Self {
        PbftReplica {
            index,
            m,
            net_base,
            view: 0,
            next_seq: 0,
            backlog: Vec::new(),
            prepares: HashMap::new(),
            commits: HashMap::new(),
            prepared: HashSet::new(),
            committed_seqs: HashSet::new(),
            decided: Vec::new(),
            decided_seqs: HashSet::new(),
            state_requested: HashSet::new(),
            state_request_peer: None,
            equivocate_values: None,
            view_votes: HashMap::new(),
            future_preprepares: Vec::new(),
            request_timer: None,
            timeout,
            obs: Obs::off(),
            vote_spans: HashMap::new(),
            commit_spans: HashMap::new(),
        }
    }

    /// Installs an observability hub (defaults to [`Obs::off`]); the
    /// replica then emits `pbft.*` events and `vote`/`commit` phase
    /// spans.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    fn net_idx(&self) -> u64 {
        (self.net_base + self.index as usize) as u64
    }

    /// Values this replica has decided, in decision order.
    pub fn decided(&self) -> &[(u64, Digest)] {
        &self.decided
    }

    /// The replica's current view.
    pub fn view(&self) -> u64 {
        self.view
    }

    /// Maximum tolerated faults: `f = ⌊(m−1)/3⌋`.
    pub fn max_faults(&self) -> u32 {
        (self.m - 1) / 3
    }

    fn quorum(&self) -> usize {
        (2 * self.max_faults() + 1) as usize
    }

    fn primary_of(&self, view: u64) -> u32 {
        (view % self.m as u64) as u32
    }

    fn is_primary(&self) -> bool {
        self.primary_of(self.view) == self.index
    }

    fn broadcast(&self, ctx: &mut Context<'_, PbftMsg>, kind: &'static str, msg: &PbftMsg) {
        for g in 0..self.m as usize {
            let peer = self.net_base + g;
            if peer != ctx.self_idx() {
                ctx.send_sized(peer, kind, 48, msg.clone());
            }
        }
    }

    fn gov_of(&self, net_idx: usize) -> Option<u32> {
        let rel = net_idx.checked_sub(self.net_base)?;
        (rel < self.m as usize).then_some(rel as u32)
    }

    fn try_propose(&mut self, ctx: &mut Context<'_, PbftMsg>) {
        if !self.is_primary() {
            return;
        }
        while let Some(value) = self.backlog.pop() {
            let seq = self.next_seq;
            self.next_seq += 1;
            if let Some((a, b)) = self.equivocate_values {
                // Byzantine primary: split the committee between two
                // conflicting proposals for the same (view, seq).
                for g in 0..self.m as usize {
                    let peer = self.net_base + g;
                    if peer == ctx.self_idx() {
                        continue;
                    }
                    let split = if g % 2 == 0 { a } else { b };
                    let msg = PbftMsg::PrePrepare {
                        view: self.view,
                        seq,
                        value: split,
                    };
                    ctx.send_sized(peer, "pbft-preprepare", 48, msg);
                }
                self.on_preprepare(self.view, seq, a, ctx);
                continue;
            }
            let msg = PbftMsg::PrePrepare {
                view: self.view,
                seq,
                value,
            };
            self.broadcast(ctx, "pbft-preprepare", &msg);
            // The primary votes implicitly via its own prepare/commit path.
            self.on_preprepare(self.view, seq, value, ctx);
        }
    }

    fn on_preprepare(
        &mut self,
        view: u64,
        seq: u64,
        value: Digest,
        ctx: &mut Context<'_, PbftMsg>,
    ) {
        if view > self.view {
            // A fast new primary outran our view change; replay on entry.
            self.future_preprepares.push((view, seq, value));
            return;
        }
        if view < self.view {
            return;
        }
        let now = ctx.now().ticks();
        self.obs
            .emit(now, self.net_idx(), ObsEvent::PbftPrePrepare { view, seq });
        self.vote_spans
            .entry((view, seq))
            .or_insert_with(|| Span::begin(phases::VOTE, now));
        self.record_prepare(view, seq, value, self.index);
        self.broadcast(ctx, "pbft-prepare", &PbftMsg::Prepare { view, seq, value });
        self.check_prepared(view, seq, value, ctx);
    }

    fn record_prepare(&mut self, view: u64, seq: u64, value: Digest, from: u32) {
        self.prepares
            .entry((view, seq, value))
            .or_default()
            .insert(from);
    }

    fn check_prepared(
        &mut self,
        view: u64,
        seq: u64,
        value: Digest,
        ctx: &mut Context<'_, PbftMsg>,
    ) {
        let have = self
            .prepares
            .get(&(view, seq, value))
            .map(HashSet::len)
            .unwrap_or(0);
        // Prepared: pre-prepare + 2f prepares (own vote counted).
        if have >= self.quorum() && self.prepared.insert((view, seq)) {
            let now = ctx.now().ticks();
            self.obs
                .emit(now, self.net_idx(), ObsEvent::PbftPrepared { view, seq });
            if let Some(span) = self.vote_spans.remove(&(view, seq)) {
                self.obs.end_span(span, now, self.net_idx());
            }
            self.commit_spans
                .entry((view, seq))
                .or_insert_with(|| Span::begin(phases::COMMIT, now));
            // Stage occupancy: instances prepared but not yet committed —
            // >1 means consensus is genuinely pipelined across serials.
            self.obs
                .set_gauge("pbft.commit_stage_open", self.commit_spans.len() as f64);
            self.commits
                .entry((view, seq, value))
                .or_default()
                .insert(self.index);
            self.broadcast(ctx, "pbft-commit", &PbftMsg::Commit { view, seq, value });
            self.check_committed(view, seq, value, now);
        }
    }

    /// Asks `from` for its state the first time we observe traffic from
    /// `view > self.view` — the catch-up path for a replica that slept
    /// through one or more view changes (e.g. a healed crash window).
    /// Rate-limited to one request per observed view.
    fn maybe_request_state(&mut self, view: u64, from: usize, ctx: &mut Context<'_, PbftMsg>) {
        if view <= self.view || !self.state_requested.insert(view) {
            return;
        }
        self.obs.metrics().inc("pbft.state_requests");
        self.state_request_peer = self.gov_of(from);
        ctx.send_sized(from, "pbft-staterequest", 8, PbftMsg::StateRequest);
    }

    /// Validates a [`PbftMsg::StateResponse`] before letting it touch
    /// local state, and merges it when it passes. Returns whether the
    /// claimed view should be adopted (it exceeds ours).
    ///
    /// A response counts only if it is *solicited* — it comes from the
    /// exact replica we last sent a [`PbftMsg::StateRequest`] to while
    /// the answer is still outstanding — its claimed `view` is not behind
    /// ours (stale), and its decided log is well-formed (no duplicate
    /// sequence numbers). Anything else is dropped without side effects:
    /// an unsolicited "response" is indistinguishable from a forgery and
    /// previously allowed any replica to overwrite a peer's decided log
    /// and fast-forward its view.
    fn accept_state_response(&mut self, from: u32, view: u64, decided: &[(u64, Digest)]) -> bool {
        if self.state_request_peer != Some(from) || view < self.view {
            self.obs.metrics().inc("pbft.state_responses_rejected");
            return false;
        }
        let mut seqs: Vec<u64> = decided.iter().map(|&(seq, _)| seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        if seqs.len() != decided.len() {
            self.obs.metrics().inc("pbft.state_responses_rejected");
            return false;
        }
        self.state_request_peer = None;
        // Merge any decisions we slept through; dedupe by seq so
        // overlapping responses (or our own commit-quorum path) cannot
        // double-decide.
        let mut merged = false;
        for &(seq, value) in decided {
            if self.decided_seqs.insert(seq) {
                self.decided.push((seq, value));
                merged = true;
            }
        }
        if merged {
            // Restore global decision order after the merge.
            self.decided.sort_by_key(|&(seq, _)| seq);
            self.next_seq = self
                .next_seq
                .max(self.decided.last().map(|&(seq, _)| seq + 1).unwrap_or(0));
        }
        view > self.view
    }

    /// Enters `new_view` (which must be higher than the current view):
    /// replays buffered pre-prepares and, if this replica is the new
    /// primary, re-proposes its backlog.
    fn enter_view(&mut self, new_view: u64, ctx: &mut Context<'_, PbftMsg>) {
        self.view = new_view;
        self.obs.emit(
            ctx.now().ticks(),
            self.net_idx(),
            ObsEvent::PbftViewChange { view: new_view },
        );
        self.prepared.clear();
        // Replay pre-prepares buffered for this view.
        let ready: Vec<_> = self
            .future_preprepares
            .iter()
            .filter(|(v, _, _)| *v <= new_view)
            .copied()
            .collect();
        self.future_preprepares.retain(|(v, _, _)| *v > new_view);
        for (v, seq, value) in ready {
            self.on_preprepare(v, seq, value, ctx);
        }
        // The new primary re-proposes its backlog.
        self.try_propose(ctx);
    }

    fn check_committed(&mut self, view: u64, seq: u64, value: Digest, now: u64) {
        let have = self
            .commits
            .get(&(view, seq, value))
            .map(HashSet::len)
            .unwrap_or(0);
        if have >= self.quorum() && self.committed_seqs.insert((view, seq)) {
            if self.decided_seqs.insert(seq) {
                self.decided.push((seq, value));
            }
            self.request_timer = None;
            self.obs
                .emit(now, self.net_idx(), ObsEvent::PbftCommitted { view, seq });
            if let Some(span) = self.commit_spans.remove(&(view, seq)) {
                self.obs.end_span(span, now, self.net_idx());
            }
            self.obs
                .set_gauge("pbft.commit_stage_open", self.commit_spans.len() as f64);
        }
    }
}

impl Actor for PbftReplica {
    type Msg = PbftMsg;

    fn on_message(&mut self, env: Envelope<PbftMsg>, ctx: &mut Context<'_, PbftMsg>) {
        match env.payload {
            PbftMsg::ClientRequest(value) => {
                self.backlog.push(value);
                self.request_timer = Some(ctx.set_timer(self.timeout));
                self.try_propose(ctx);
            }
            PbftMsg::PrePrepare { view, seq, value } => {
                if self.gov_of(env.from) != Some(self.primary_of(view)) {
                    return; // only the view's primary may pre-prepare
                }
                self.maybe_request_state(view, env.from, ctx);
                self.on_preprepare(view, seq, value, ctx);
            }
            PbftMsg::Prepare { view, seq, value } => {
                let Some(from) = self.gov_of(env.from) else {
                    return;
                };
                if view < self.view {
                    return;
                }
                self.maybe_request_state(view, env.from, ctx);
                // Future-view prepares are recorded; the quorum check only
                // fires once we have pre-prepared in that view ourselves.
                self.record_prepare(view, seq, value, from);
                if view == self.view {
                    self.check_prepared(view, seq, value, ctx);
                }
            }
            PbftMsg::Commit { view, seq, value } => {
                let Some(from) = self.gov_of(env.from) else {
                    return;
                };
                if view < self.view {
                    return;
                }
                self.maybe_request_state(view, env.from, ctx);
                self.commits
                    .entry((view, seq, value))
                    .or_default()
                    .insert(from);
                self.check_committed(view, seq, value, ctx.now().ticks());
            }
            PbftMsg::StateRequest => {
                if self.gov_of(env.from).is_none() {
                    return;
                }
                let msg = PbftMsg::StateResponse {
                    view: self.view,
                    decided: self.decided.clone(),
                };
                let bytes = 8 + 40 * self.decided.len();
                ctx.send_sized(env.from, "pbft-stateresponse", bytes, msg);
            }
            PbftMsg::StateResponse { view, decided } => {
                let Some(from) = self.gov_of(env.from) else {
                    return;
                };
                if self.accept_state_response(from, view, &decided) {
                    self.enter_view(view, ctx);
                }
            }
            PbftMsg::ViewChange { new_view } => {
                let Some(from) = self.gov_of(env.from) else {
                    return;
                };
                if new_view <= self.view {
                    return;
                }
                let votes = self.view_votes.entry(new_view).or_default();
                votes.insert(from);
                if votes.len() >= self.quorum() {
                    self.enter_view(new_view, ctx);
                }
            }
        }
    }

    fn on_timer(&mut self, timer: TimerId, ctx: &mut Context<'_, PbftMsg>) {
        if self.request_timer != Some(timer) {
            return; // stale timer
        }
        self.request_timer = None;
        // Suspect the primary: vote to move to the next view.
        let new_view = self.view + 1;
        let votes = self.view_votes.entry(new_view).or_default();
        votes.insert(self.index);
        let msg = PbftMsg::ViewChange { new_view };
        self.broadcast(ctx, "pbft-viewchange", &msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::sha256::sha256;
    use prb_net::fault::FaultPlan;
    use prb_net::sim::{NetConfig, Network};
    use prb_net::time::SimTime;

    fn build(m: u32) -> Network<PbftReplica> {
        let mut net = Network::new(NetConfig::uniform(1, 4), 21);
        for i in 0..m {
            net.add_node(PbftReplica::new(i, m, 0, SimDuration(500)));
        }
        net
    }

    #[test]
    fn normal_case_all_replicas_decide_same_value() {
        let m = 4;
        let mut net = build(m);
        let v = sha256(b"block-1");
        net.send_external(0, "client", PbftMsg::ClientRequest(v), SimTime(0));
        net.run_until(SimTime(400));
        for i in 0..m as usize {
            assert_eq!(net.node(i).decided(), &[(0, v)], "replica {i}");
            assert_eq!(net.node(i).view(), 0);
        }
    }

    #[test]
    fn sequential_requests_decide_in_order() {
        let m = 4;
        let mut net = build(m);
        let v1 = sha256(b"b1");
        let v2 = sha256(b"b2");
        net.send_external(0, "client", PbftMsg::ClientRequest(v1), SimTime(0));
        net.send_external(0, "client", PbftMsg::ClientRequest(v2), SimTime(100));
        net.run_until(SimTime(600));
        for i in 0..m as usize {
            assert_eq!(net.node(i).decided(), &[(0, v1), (1, v2)]);
        }
    }

    #[test]
    fn crashed_primary_triggers_view_change_and_recovery() {
        let m = 4;
        let mut net = build(m);
        let mut faults = FaultPlan::none();
        faults.crash(0, SimTime(0)); // primary of view 0 is dead
        net.set_faults(faults);
        let v = sha256(b"after-crash");
        // The request reaches every live replica (client broadcast).
        for i in 1..m as usize {
            net.send_external(i, "client", PbftMsg::ClientRequest(v), SimTime(0));
        }
        net.run_until(SimTime(3_000));
        for i in 1..m as usize {
            assert_eq!(net.node(i).view(), 1, "replica {i} should be in view 1");
            assert_eq!(net.node(i).decided(), &[(0, v)], "replica {i}");
        }
    }

    #[test]
    fn message_count_is_quadratic() {
        let count_for = |m: u32| {
            let mut net = build(m);
            let v = sha256(b"payload");
            net.send_external(0, "client", PbftMsg::ClientRequest(v), SimTime(0));
            net.run_until(SimTime(400));
            let s = net.stats();
            s.kind("pbft-preprepare").sent
                + s.kind("pbft-prepare").sent
                + s.kind("pbft-commit").sent
        };
        let c4 = count_for(4);
        let c8 = count_for(8);
        let c16 = count_for(16);
        let r1 = c8 as f64 / c4 as f64;
        let r2 = c16 as f64 / c8 as f64;
        assert!((3.0..5.0).contains(&r1), "c4={c4} c8={c8}");
        assert!((3.0..5.0).contains(&r2), "c8={c8} c16={c16}");
    }

    #[test]
    fn f_and_quorum_sizes() {
        let r = PbftReplica::new(0, 4, 0, SimDuration(10));
        assert_eq!(r.max_faults(), 1);
        assert_eq!(r.quorum(), 3);
        let r = PbftReplica::new(0, 10, 0, SimDuration(10));
        assert_eq!(r.max_faults(), 3);
        assert_eq!(r.quorum(), 7);
    }

    #[test]
    fn healed_replica_catches_up_via_state_transfer() {
        let m = 7; // f = 2: tolerates the dead primary plus one sleeper
        let mut net = build(m);
        let mut faults = FaultPlan::none();
        faults.crash(0, SimTime(0)); // primary of view 0, permanently dead
        faults.crash_window(6, SimTime(0), SimTime(5_000));
        net.set_faults(faults);
        let v1 = sha256(b"while-6-slept");
        for i in 1..6 {
            net.send_external(i, "client", PbftMsg::ClientRequest(v1), SimTime(0));
        }
        // Replicas 1..=5 view-change to view 1 and decide v1 while 6 is
        // down; after healing, traffic for v2 carries the higher view and
        // triggers 6's state transfer.
        let v2 = sha256(b"after-heal");
        net.send_external(1, "client", PbftMsg::ClientRequest(v2), SimTime(6_000));
        net.run_until(SimTime(12_000));
        assert_eq!(net.node(6).view(), 1, "sleeper should adopt view 1");
        assert_eq!(
            net.node(6).decided(),
            &[(0, v1), (1, v2)],
            "sleeper should hold the missed decision and the live one, in seq order"
        );
        for i in 1..6 {
            assert_eq!(net.node(i).decided(), &[(0, v1), (1, v2)], "replica {i}");
        }
        assert!(net.stats().kind("pbft-staterequest").sent >= 1);
        assert!(net.stats().kind("pbft-stateresponse").sent >= 1);
    }

    #[test]
    fn no_state_requests_in_the_normal_case() {
        let m = 4;
        let mut net = build(m);
        let v = sha256(b"quiet");
        net.send_external(0, "client", PbftMsg::ClientRequest(v), SimTime(0));
        net.run_until(SimTime(400));
        assert_eq!(net.stats().kind("pbft-staterequest").sent, 0);
    }

    #[test]
    fn unsolicited_state_response_is_rejected() {
        // A forged response arriving when no request is outstanding must
        // not overwrite the decided log or fast-forward the view.
        let mut r = PbftReplica::new(3, 4, 0, SimDuration(500));
        let forged = vec![(0, sha256(b"planted")), (5, sha256(b"also planted"))];
        assert!(!r.accept_state_response(1, 7, &forged));
        assert!(r.decided().is_empty(), "forged log must not be adopted");
        assert_eq!(r.next_seq, 0);
    }

    #[test]
    fn state_response_from_wrong_peer_is_rejected() {
        let mut r = PbftReplica::new(3, 4, 0, SimDuration(500));
        r.state_request_peer = Some(2); // we asked replica 2...
        let forged = vec![(0, sha256(b"planted"))];
        assert!(!r.accept_state_response(1, 7, &forged)); // ...1 answers
        assert!(r.decided().is_empty());
        // The genuine answer still goes through afterwards.
        let real = vec![(0, sha256(b"real"))];
        assert!(r.accept_state_response(2, 7, &real));
        assert_eq!(r.decided(), &[(0, sha256(b"real"))]);
        assert_eq!(r.next_seq, 1);
    }

    #[test]
    fn stale_and_malformed_state_responses_are_rejected() {
        let mut r = PbftReplica::new(3, 4, 0, SimDuration(500));
        r.view = 5;
        r.state_request_peer = Some(1);
        // Stale: the responder's claimed view is behind ours.
        assert!(!r.accept_state_response(1, 4, &[(0, sha256(b"old"))]));
        assert!(r.decided().is_empty());
        // Malformed: duplicate sequence numbers in one response.
        let dup = vec![(0, sha256(b"a")), (0, sha256(b"b"))];
        assert!(!r.accept_state_response(1, 6, &dup));
        assert!(r.decided().is_empty());
        // Equal view is fine (nothing to adopt) and consumes the request.
        assert!(!r.accept_state_response(1, 5, &[(0, sha256(b"ok"))]));
        assert_eq!(r.decided(), &[(0, sha256(b"ok"))]);
        assert_eq!(r.state_request_peer, None);
    }

    #[test]
    fn equivocating_primary_never_splits_decisions() {
        // Primary 0 sends conflicting pre-prepares to the two halves of
        // the committee. Neither value can gather a 2f+1 quorum, so no
        // replica may decide either value at seq 0 — safety holds and the
        // view change eventually removes the primary.
        let m = 4;
        let mut net = build(m);
        net.node_mut(0).equivocate_values = Some((sha256(b"fork-a"), sha256(b"fork-b")));
        net.send_external(
            0,
            "client",
            PbftMsg::ClientRequest(sha256(b"ignored")),
            SimTime(0),
        );
        net.run_until(SimTime(3_000));
        for seq in 0..2u64 {
            let mut values: Vec<Digest> = (0..m as usize)
                .flat_map(|i| {
                    net.node(i)
                        .decided()
                        .iter()
                        .filter(|&&(s, _)| s == seq)
                        .map(|&(_, v)| v)
                        .collect::<Vec<_>>()
                })
                .collect();
            values.sort_unstable();
            values.dedup();
            assert!(
                values.len() <= 1,
                "seq {seq} decided conflicting values {values:?}"
            );
        }
        // The clean split specifically starves both quorums entirely.
        for i in 1..m as usize {
            assert!(net.node(i).decided().is_empty(), "replica {i}");
        }
    }

    #[test]
    fn non_primary_preprepare_is_ignored() {
        let m = 4;
        let mut net = build(m);
        // Replica 2 (not primary of view 0) tries to pre-prepare directly.
        // We simulate by injecting the message as if from node 2 via a
        // driver-triggered send: replica 1 must ignore it because the
        // sender is not the primary. External messages have from=EXTERNAL,
        // which maps to no governor, so they are ignored too.
        let v = sha256(b"rogue");
        net.send_external(
            1,
            "rogue",
            PbftMsg::PrePrepare {
                view: 0,
                seq: 0,
                value: v,
            },
            SimTime(0),
        );
        net.run_until(SimTime(300));
        assert!(net.node(1).decided().is_empty());
    }
}

//! Round-robin leader rotation — the Tendermint-style baseline (§2.2).
//!
//! Ablation A4 compares the paper's VRF-PoS election against the simplest
//! permissioned alternative: rotate the leader deterministically each
//! round. Rotation is fair in *rounds* but ignores stake; the experiment
//! contrasts leadership frequency under both schemes for skewed stakes.

/// The round-robin leader of `round` among `m` governors.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn leader_of_round(round: u64, m: u32) -> u32 {
    assert!(m > 0, "no governors");
    (round % m as u64) as u32
}

/// Stake-weighted deterministic rotation: governors appear proportionally
/// to their stake within a cycle of `total_stake` rounds, in governor
/// order. (E.g. stakes `[2,1]` give the schedule `0,0,1,0,0,1,…`.)
///
/// # Panics
///
/// Panics if all stakes are zero.
pub fn weighted_leader_of_round(round: u64, stakes: &[u64]) -> u32 {
    let total: u64 = stakes.iter().sum();
    assert!(total > 0, "no stake in the system");
    let mut slot = round % total;
    for (g, &s) in stakes.iter().enumerate() {
        if slot < s {
            return g as u32;
        }
        slot -= s;
    }
    unreachable!("slot < total by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_cycles() {
        let leaders: Vec<u32> = (0..8).map(|r| leader_of_round(r, 3)).collect();
        assert_eq!(leaders, vec![0, 1, 2, 0, 1, 2, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "no governors")]
    fn zero_governors_panics() {
        leader_of_round(0, 0);
    }

    #[test]
    fn weighted_rotation_matches_stakes() {
        let stakes = [2, 1, 3];
        let leaders: Vec<u32> = (0..12)
            .map(|r| weighted_leader_of_round(r, &stakes))
            .collect();
        assert_eq!(leaders, vec![0, 0, 1, 2, 2, 2, 0, 0, 1, 2, 2, 2]);
        // Frequencies over one cycle are exactly stake-proportional.
        let count = |g: u32| leaders[..6].iter().filter(|&&l| l == g).count() as u64;
        assert_eq!(count(0), 2);
        assert_eq!(count(1), 1);
        assert_eq!(count(2), 3);
    }

    #[test]
    fn zero_stake_governor_skipped() {
        let stakes = [0, 2];
        for r in 0..10 {
            assert_eq!(weighted_leader_of_round(r, &stakes), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no stake")]
    fn all_zero_stakes_panic() {
        weighted_leader_of_round(0, &[0, 0]);
    }
}

//! # prb-consensus
//!
//! Consensus machinery for the `prb` permissioned blockchain (reproduction
//! of *"An Efficient Permissioned Blockchain with Provable Reputation
//! Mechanism"*, ICDCS 2021):
//!
//! - [`stake`] — the governors' stake ledger with signed, replay-protected
//!   transfers and the deterministic `NEW_STATE` construction,
//! - [`election`] — PoS-VRF leader election: one VRF evaluation per stake
//!   unit, least hash leads (§3.4.3),
//! - [`stake_block`] — the 3-step stake-transform block protocol with
//!   signature collection and provable leader expulsion, run over the
//!   simulated network (message complexity `O(m²)`, measured by E6),
//! - [`pbft`] — a simplified PBFT baseline (normal case + crash-fault view
//!   change) for the message-complexity comparison,
//! - [`evidence`] — self-verifying equivocation evidence (two conflicting
//!   signed proposal headers) backing the accountability pipeline that
//!   detects and expels double-signing governors (E12),
//! - [`checkpoint`] — quorum-signed checkpoints of the chain head, stake
//!   vector and reputation table, backing O(delta) state-sync and durable
//!   restart (E16),
//! - [`membership`] — dynamic membership: quorum-certified
//!   join/leave/evict transitions and the [`membership::EpochLog`] that
//!   sizes quorums by the committee epoch at a given serial (E17),
//! - [`round_robin`] — deterministic rotation schedules,
//! - [`rotation`] — the executable rotating-leader replication protocol
//!   (propose + ≥2/3 votes, crashed leaders skipped by timeout),
//! - [`verify_pool`] — a std-only worker pool draining batched
//!   signature/VRF verifications through `prb_crypto::batch`,
//! - [`pipeline`] — deferred (submit-now / collect-later) signature
//!   validation backing the pipelined round engine: consensus on serial
//!   `N+1` overlaps validation of serial `N` with bit-identical verdicts
//!   (E14).
//!
//! # Quickstart
//!
//! ```
//! use prb_consensus::election::{elect, ElectionClaim};
//! use prb_crypto::signer::CryptoScheme;
//!
//! let scheme = CryptoScheme::sim();
//! let keys: Vec<_> = (0..3)
//!     .map(|g| scheme.keypair_from_seed(format!("g{g}").as_bytes()))
//!     .collect();
//! let stakes = [4, 2, 1];
//! let claims: Vec<_> = keys
//!     .iter()
//!     .enumerate()
//!     .filter_map(|(g, k)| ElectionClaim::compute(b"chain", 1, g as u32, stakes[g], k))
//!     .collect();
//! let pks: Vec<_> = keys.iter().map(|k| k.public_key()).collect();
//! let (result, rejected) = elect(b"chain", 1, &claims, &stakes, &pks);
//! assert!(rejected.is_empty());
//! assert!(result.is_some());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
pub mod election;
pub mod evidence;
pub mod membership;
pub mod pbft;
pub mod pipeline;
pub mod rotation;
pub mod round_robin;
pub mod stake;
pub mod stake_block;
pub mod verify_pool;

pub use checkpoint::{CheckpointCert, CheckpointShare, CheckpointState, CollectorSnapshot};
pub use election::{elect, elect_excluding, elect_with_pool, ElectionClaim, ElectionResult};
pub use evidence::{EquivocationEvidence, SignedHeader};
pub use membership::{
    EpochLog, MemberRole, MembershipAction, MembershipCert, MembershipRequest, MembershipShare,
};
pub use pipeline::{DeferItem, DeferStats, DeferredValidator, Ticket};
pub use stake::{StakeTable, StakeTransfer};
pub use stake_block::{StakeBlock, StakeGovernor, StakeMsg};
pub use verify_pool::VerifyPool;

//! Deferred signature validation for the pipelined round engine.
//!
//! The discrete-event simulation processes every node's events on one
//! thread, so a governor that verifies signatures *synchronously* stalls
//! the whole simulation for the duration of the batch: round wall-clock
//! becomes the **sum** of consensus work and validation work. The
//! [`DeferredValidator`] breaks that sum apart. A batch of signature
//! checks is **submitted** at one simulation event — handed to a worker
//! thread that owns its data — and **collected** (joined) at a later,
//! deterministically chosen simulation event. In between, the main thread
//! keeps processing events (other nodes' messages, other governors'
//! crypto), so the worker's wall-clock hides behind useful progress and
//! the round approaches `max(consensus, validation)` instead of their sum.
//!
//! Determinism is preserved by construction: a signature verdict is a pure
//! function of `(message, signature, public key)`, so *when* the worker
//! runs — or how many OS threads the embedded [`VerifyPool`] fans out to —
//! can never change the collected verdict vector. As long as submit and
//! collect points are fixed simulation events, every protocol decision
//! downstream of the verdicts is bit-identical to the synchronous engine
//! (property-tested by `pipeline_depth_never_changes_the_ledger`).
//!
//! Accounting: each worker measures its own elapsed wall-clock
//! (`work_ns`); each collect measures the main thread's join stall
//! (`wait_ns`). Their difference — work that finished behind the main
//! thread's back — is the **overlap** (`wall.overlap_ns` in the obs
//! summary), the quantity E14 asserts on.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::Instant;

use prb_crypto::signer::{PublicKey, Sig};

use crate::verify_pool::VerifyPool;

/// An owned signature-check item: `(message, signature, public key)`.
///
/// Owned (not borrowed) because the worker thread outlives the submitting
/// call frame; clones are cheap — keys share their precomputed tables via
/// `Arc`.
pub type DeferItem = (Vec<u8>, Sig, PublicKey);

/// Handle to a submitted batch, redeemed exactly once via
/// [`DeferredValidator::collect`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ticket(u64);

/// A verified batch travelling back from the worker thread.
#[derive(Debug)]
struct Done {
    id: u64,
    verdicts: Vec<bool>,
    work_ns: u64,
}

/// Cumulative deferral accounting (nanoseconds are host wall-clock).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeferStats {
    /// Batches submitted.
    pub batches: u64,
    /// Signature checks submitted across all batches.
    pub items: u64,
    /// Total worker wall-clock spent verifying.
    pub work_ns: u64,
    /// Total main-thread stall inside `collect` joins.
    pub wait_ns: u64,
    /// Worker wall-clock hidden behind main-thread progress:
    /// `Σ max(0, work − wait)` per batch.
    pub overlap_ns: u64,
}

/// Asynchronous batch signature verifier with deterministic verdicts.
///
/// Submit owned batches at one simulation event, collect them at a later
/// one; verdicts are positionally identical to verifying each item inline
/// with [`PublicKey::verify`], whatever the wall-clock interleaving.
#[derive(Debug)]
pub struct DeferredValidator {
    jobs: Option<Sender<(u64, Vec<DeferItem>)>>,
    done: Receiver<Done>,
    worker: Option<JoinHandle<()>>,
    next: u64,
    /// Items per batch submitted but not yet collected (by ticket id).
    inflight: HashMap<u64, usize>,
    /// Batches the worker finished that no collect has claimed yet.
    ready: HashMap<u64, (Vec<bool>, u64)>,
    stats: DeferStats,
}

impl DeferredValidator {
    /// Creates a validator with one persistent worker thread draining
    /// batches through `pool` in submission order (the pool may fan out
    /// further inside a batch). A long-lived worker rather than a spawn
    /// per batch: eager screening submits many small batches per round,
    /// and per-spawn overhead would eat the overlap it buys.
    pub fn new(pool: VerifyPool) -> Self {
        let (jobs, job_rx) = channel::<(u64, Vec<DeferItem>)>();
        let (done_tx, done) = channel::<Done>();
        let worker = std::thread::spawn(move || {
            while let Ok((id, items)) = job_rx.recv() {
                let start = Instant::now();
                let refs: Vec<(&[u8], &Sig, &PublicKey)> = items
                    .iter()
                    .map(|(msg, sig, pk)| (&msg[..], sig, pk))
                    .collect();
                let verdicts = pool.verify_sigs(&refs);
                let work_ns = start.elapsed().as_nanos() as u64;
                if done_tx
                    .send(Done {
                        id,
                        verdicts,
                        work_ns,
                    })
                    .is_err()
                {
                    return; // validator dropped mid-flight
                }
            }
        });
        DeferredValidator {
            jobs: Some(jobs),
            done,
            worker: Some(worker),
            next: 0,
            inflight: HashMap::new(),
            ready: HashMap::new(),
            stats: DeferStats::default(),
        }
    }

    /// Hands `items` to the worker thread and returns the ticket that
    /// redeems its verdicts. Empty batches are accepted (and collect to
    /// an empty verdict vector) so callers need not special-case them.
    pub fn submit(&mut self, items: Vec<DeferItem>) -> Ticket {
        let n = items.len();
        let id = self.next;
        self.next += 1;
        self.jobs
            .as_ref()
            .expect("validator still alive")
            .send((id, items))
            .expect("deferred worker gone");
        self.inflight.insert(id, n);
        self.stats.batches += 1;
        self.stats.items += n as u64;
        Ticket(id)
    }

    /// Joins the batch behind `ticket` and returns its verdict vector
    /// (`out[i]` is the verdict for `items[i]` as submitted).
    ///
    /// # Panics
    ///
    /// Panics if the ticket was never issued or already collected, or if
    /// the worker thread panicked.
    pub fn collect(&mut self, ticket: Ticket) -> Vec<bool> {
        let items = self
            .inflight
            .remove(&ticket.0)
            .expect("deferred ticket unknown or already collected");
        let wait_start = Instant::now();
        while !self.ready.contains_key(&ticket.0) {
            let d = self.done.recv().expect("deferred worker panicked");
            self.ready.insert(d.id, (d.verdicts, d.work_ns));
        }
        let wait_ns = wait_start.elapsed().as_nanos() as u64;
        let (verdicts, work_ns) = self.ready.remove(&ticket.0).expect("just inserted");
        debug_assert_eq!(verdicts.len(), items);
        self.stats.work_ns += work_ns;
        self.stats.wait_ns += wait_ns;
        self.stats.overlap_ns += work_ns.saturating_sub(wait_ns);
        verdicts
    }

    /// Batches submitted but not yet collected.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Signature checks submitted but not yet collected.
    pub fn items_in_flight(&self) -> usize {
        self.inflight.values().sum()
    }

    /// Cumulative accounting since construction.
    pub fn stats(&self) -> DeferStats {
        self.stats
    }
}

impl Drop for DeferredValidator {
    /// Shuts the worker down (closing the job channel ends its loop) and
    /// joins it so no verification thread outlives the simulation that
    /// spawned it.
    fn drop(&mut self) {
        drop(self.jobs.take());
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prb_crypto::signer::{CryptoScheme, KeyPair};

    fn fixture(n: usize) -> (Vec<KeyPair>, Vec<Vec<u8>>, Vec<Sig>) {
        let scheme = CryptoScheme::schnorr_test_256();
        let keys: Vec<KeyPair> = (0..n)
            .map(|i| scheme.keypair_from_seed(format!("defer-{i}").as_bytes()))
            .collect();
        let msgs: Vec<Vec<u8>> = (0..n as u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let sigs: Vec<Sig> = keys.iter().zip(&msgs).map(|(k, m)| k.sign(m)).collect();
        (keys, msgs, sigs)
    }

    #[test]
    fn deferred_verdicts_match_inline_verification() {
        let (keys, msgs, mut sigs) = fixture(10);
        sigs[3] = keys[3].sign(b"forged");
        sigs[7] = keys[0].sign(&msgs[7]);
        let items: Vec<DeferItem> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), sigs[i].clone(), keys[i].public_key()))
            .collect();
        let expected: Vec<bool> = items.iter().map(|(m, s, pk)| pk.verify(m, s)).collect();
        let mut dv = DeferredValidator::new(VerifyPool::new(2));
        let ticket = dv.submit(items);
        assert_eq!(dv.in_flight(), 1);
        assert_eq!(dv.collect(ticket), expected);
        assert_eq!(dv.in_flight(), 0);
        assert!(!expected[3] && !expected[7] && expected[0]);
        let stats = dv.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.items, 10);
    }

    #[test]
    fn tickets_collect_in_any_order() {
        let (keys, msgs, sigs) = fixture(6);
        let batch = |range: std::ops::Range<usize>| -> Vec<DeferItem> {
            range
                .map(|i| (msgs[i].clone(), sigs[i].clone(), keys[i].public_key()))
                .collect()
        };
        let mut dv = DeferredValidator::new(VerifyPool::single_threaded());
        let t0 = dv.submit(batch(0..3));
        let t1 = dv.submit(batch(3..6));
        assert_eq!(dv.items_in_flight(), 6);
        // Collect out of submission order; verdicts stay positional.
        assert_eq!(dv.collect(t1), vec![true; 3]);
        assert_eq!(dv.collect(t0), vec![true; 3]);
        assert_eq!(dv.stats().items, 6);
    }

    #[test]
    fn empty_batches_are_fine() {
        let mut dv = DeferredValidator::new(VerifyPool::single_threaded());
        let t = dv.submit(Vec::new());
        assert!(dv.collect(t).is_empty());
    }

    #[test]
    #[should_panic(expected = "deferred ticket unknown")]
    fn double_collect_panics() {
        let mut dv = DeferredValidator::new(VerifyPool::single_threaded());
        let t = dv.submit(Vec::new());
        dv.collect(t);
        dv.collect(t);
    }

    #[test]
    fn drop_joins_outstanding_workers() {
        let (keys, msgs, sigs) = fixture(4);
        let items: Vec<DeferItem> = msgs
            .iter()
            .enumerate()
            .map(|(i, m)| (m.clone(), sigs[i].clone(), keys[i].public_key()))
            .collect();
        let mut dv = DeferredValidator::new(VerifyPool::single_threaded());
        let _ticket = dv.submit(items);
        drop(dv); // must not leak the worker (joins internally)
    }
}

//! # prb — An Efficient Permissioned Blockchain with Provable Reputation Mechanism
//!
//! A full Rust reproduction of the ICDCS 2021 paper (Chen, Chen, Cheng,
//! Deng, Huang, Li, Ling, Zhang; full version arXiv:2002.06852): a
//! three-tier permissioned blockchain — providers, collectors, governors —
//! in which governors skip a tunable fraction of transaction validations
//! and rely on a multiplicative-weights reputation mechanism whose regret
//! is provably `O(√T)`.
//!
//! This crate is the facade: it re-exports the workspace's crates.
//!
//! | Crate | Contents |
//! |---|---|
//! | [`crypto`] | SHA-256, HMAC, bignum, Schnorr, DLEQ, VRF, Merkle, PKI |
//! | [`net`] | deterministic discrete-event synchronous network |
//! | [`ledger`] | transactions, blocks, hash-chained ledger, validity oracle |
//! | [`reputation`] | reputation vectors, RWM, screening math, revenue |
//! | [`consensus`] | PoS-VRF election, stake blocks, PBFT/rotation baselines |
//! | [`store`] | durable crash-safe block store with checkpoint certificates |
//! | [`core`] | the protocol: roles, Algorithms 1–3, argue, simulation driver |
//! | [`workload`] | car-sharing and insurance scenarios, adversary mixes |
//!
//! # Quickstart
//!
//! ```
//! use prb::core::config::ProtocolConfig;
//! use prb::core::sim::Simulation;
//!
//! let mut sim = Simulation::new(ProtocolConfig::default())?;
//! sim.run(3);
//! assert!(sim.chains_agree());
//! # Ok::<(), String>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench` for the
//! experiment harness that regenerates every result in EXPERIMENTS.md.

#![warn(missing_docs)]

pub use prb_consensus as consensus;
pub use prb_core as core;
pub use prb_crypto as crypto;
pub use prb_ledger as ledger;
pub use prb_net as net;
pub use prb_obs as obs;
pub use prb_reputation as reputation;
pub use prb_store as store;
pub use prb_workload as workload;

//! `prb-sim` — run a configurable protocol simulation from the command
//! line.
//!
//! ```text
//! cargo run --release --bin prb-sim -- \
//!     --providers 12 --collectors 6 --governors 4 --replication 3 \
//!     --rounds 20 --f 0.6 --workload carshare \
//!     --misreporter 1:0.7 --concealer 2:0.5 --forger 3:0.3 \
//!     --export-chain chain.bin
//! ```
//!
//! Prints the per-round commit log, the screening/loss summary, the
//! reputation table, and the revenue split; optionally exports governor
//! 0's chain in the canonical binary format (re-importable and
//! re-verifiable with `prb::ledger::chain::Chain::import`).

use std::collections::BTreeMap;

use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::{GovernorMode, ProtocolConfig};
use prb::core::sim::Simulation;
use prb::crypto::signer::CryptoScheme;
use prb::workload::{CarShareWorkload, InsuranceWorkload};

struct Cli {
    values: BTreeMap<String, Vec<String>>,
}

impl Cli {
    fn parse() -> Self {
        let mut values: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            let Some(name) = arg.strip_prefix("--") else {
                eprintln!("ignoring stray argument {arg:?}");
                continue;
            };
            let value = match args.peek() {
                Some(v) if !v.starts_with("--") => args.next().expect("peeked"),
                _ => String::new(),
            };
            values.entry(name.to_owned()).or_default().push(value);
        }
        Cli { values }
    }

    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.values
            .get(name)
            .and_then(|v| v.first())
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.values
            .get(name)
            .and_then(|v| v.first())
            .cloned()
            .unwrap_or_else(|| default.to_owned())
    }

    fn all(&self, name: &str) -> &[String] {
        self.values.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    fn has(&self, name: &str) -> bool {
        self.values.contains_key(name)
    }
}

fn parse_idx_prob(spec: &str) -> Result<(u32, f64), String> {
    let (idx, prob) = spec
        .split_once(':')
        .ok_or_else(|| format!("expected index:probability, got {spec:?}"))?;
    Ok((
        idx.parse().map_err(|_| format!("bad index in {spec:?}"))?,
        prob.parse()
            .map_err(|_| format!("bad probability in {spec:?}"))?,
    ))
}

fn main() -> Result<(), String> {
    let cli = Cli::parse();
    if cli.has("help") {
        println!("prb-sim — run the permissioned reputation blockchain");
        println!("flags: --providers N --collectors N --governors N --replication N");
        println!("       --rounds N --tx-per-provider N --f F --beta B --seed S");
        println!("       --mode reputation|check-all|check-none");
        println!("       --workload uniform|carshare|insurance  --invalid-rate P");
        println!("       --crypto sim|schnorr-256|schnorr-512|schnorr-2048");
        println!("       --verify-threads N   (0 = host parallelism; ledger is identical)");
        println!("       --pipeline-depth N   (0 = serial engine; N>0 overlaps consensus");
        println!("                             with deferred validation; ledger is identical)");
        println!("       --verify-inline-min N  (batch size below which the pool verifies");
        println!("                               inline; verdict-neutral tuning knob)");
        println!("       --misreporter i:p  --concealer i:p  --forger i:p  (repeatable)");
        println!("       --join-rate P --leave-rate P   (per-collector per-round churn");
        println!("                                       probabilities; 0 = static committee)");
        println!("       --bootstrap-rep R    (newcomer screening-weight prior, (0,1])");
        println!("       --decay-halflife N   (half-life in silent rounds; 0 = no decay)");
        println!("       --export-chain PATH");
        return Ok(());
    }

    let mut cfg = ProtocolConfig {
        providers: cli.get("providers", 8u32),
        collectors: cli.get("collectors", 8u32),
        governors: cli.get("governors", 4u32),
        replication: cli.get("replication", 4u32),
        tx_per_provider: cli.get("tx-per-provider", 4u32),
        seed: cli.get("seed", 42u64),
        ..Default::default()
    };
    cfg.reputation.f = cli.get("f", cfg.reputation.f);
    cfg.reputation.beta = cli.get("beta", cfg.reputation.beta);
    cfg.governor_mode = match cli.get_str("mode", "reputation").as_str() {
        "reputation" => GovernorMode::Reputation,
        "check-all" => GovernorMode::CheckAll,
        "check-none" => GovernorMode::CheckNone,
        other => return Err(format!("unknown mode {other:?}")),
    };
    cfg.crypto = CryptoScheme::parse(&cli.get_str("crypto", "sim"))
        .ok_or_else(|| "unknown crypto scheme".to_owned())?;
    cfg.verify_threads = cli.get("verify-threads", cfg.verify_threads);
    cfg.pipeline_depth = cli.get("pipeline-depth", cfg.pipeline_depth);
    cfg.verify_inline_min = cli.get("verify-inline-min", cfg.verify_inline_min);
    cfg.join_rate = cli.get("join-rate", cfg.join_rate);
    cfg.leave_rate = cli.get("leave-rate", cfg.leave_rate);
    cfg.bootstrap_rep = cli.get("bootstrap-rep", cfg.bootstrap_rep);
    cfg.decay_halflife = cli.get("decay-halflife", cfg.decay_halflife);
    let rounds: u32 = cli.get("rounds", 10);
    let invalid_rate: f64 = cli.get("invalid-rate", 0.2);

    let n = cfg.collectors;
    let l = cfg.providers;
    let m = cfg.governors;
    let mut builder = Simulation::builder(cfg).provider_profiles(vec![
        ProviderProfile {
            invalid_rate,
            active: true,
        };
        l as usize
    ]);
    match cli.get_str("workload", "uniform").as_str() {
        "uniform" => {}
        "carshare" => builder = builder.workload(Box::new(CarShareWorkload::new(invalid_rate))),
        "insurance" => builder = builder.workload(Box::new(InsuranceWorkload::new(invalid_rate))),
        other => return Err(format!("unknown workload {other:?}")),
    }
    let mut roles = vec!["honest".to_owned(); n as usize];
    for spec in cli.all("misreporter") {
        let (i, p) = parse_idx_prob(spec)?;
        builder = builder.collector_profile(i, CollectorProfile::misreporter(p));
        roles[i as usize] = format!("misreporter {p}");
    }
    for spec in cli.all("concealer") {
        let (i, p) = parse_idx_prob(spec)?;
        builder = builder.collector_profile(i, CollectorProfile::concealer(p));
        roles[i as usize] = format!("concealer {p}");
    }
    for spec in cli.all("forger") {
        let (i, p) = parse_idx_prob(spec)?;
        builder = builder.collector_profile(i, CollectorProfile::forger(p));
        roles[i as usize] = format!("forger {p}");
    }

    let mut sim = builder.build()?;
    println!(
        "running {rounds} rounds: l={l} n={n} m={m} r={} f={} mode={} workload={} crypto={}",
        sim.config().replication,
        sim.config().reputation.f,
        sim.config().governor_mode,
        cli.get_str("workload", "uniform"),
        sim.config().crypto.name(),
    );
    for outcome in sim.run(rounds) {
        println!(
            "round {:>3}: leader g{}  block #{} ({} txs)",
            outcome.round,
            outcome.leader.map_or("?".into(), |g| g.to_string()),
            outcome.block_serial.unwrap_or(0),
            outcome.txs_in_block
        );
    }
    sim.run_drain_rounds(3);

    println!("\nagreement: {}", sim.chains_agree());
    if sim.config().churn_enabled() {
        let m0 = sim.metrics(0);
        println!(
            "membership: live collectors {:?} | certs {} | applied {} | evictions proposed {} | decay steps {}",
            sim.live_collectors(),
            m0.member_certs_formed,
            m0.member_applied,
            m0.evictions_proposed,
            m0.decay_events
        );
    }
    let metrics = sim.metrics(0);
    println!(
        "governor g0: screened {} | checked {} | unchecked {} ({:.1}%) | validations {}",
        metrics.screened,
        metrics.checked,
        metrics.unchecked,
        100.0 * metrics.unchecked_fraction(),
        metrics.validations
    );
    println!(
        "losses: realized {:.1}, expected {:.2} | argues: {} ok, {} late | forgeries detected: {}",
        metrics.realized_loss,
        metrics.expected_loss,
        metrics.argue_accepted,
        metrics.argue_rejected,
        metrics.forged_detected
    );

    println!("\nreputation (governor g0):");
    let table = sim.governor(0).reputation();
    let mut paid = vec![0.0f64; n as usize];
    for g in 0..m {
        for (c, share) in sim.metrics(g).revenue_paid.iter().enumerate() {
            paid[c] += share;
        }
    }
    for c in 0..n as usize {
        println!(
            "  c{c}: {}  revenue {:>8.2}  [{}]",
            table.collector(c),
            paid[c],
            roles[c]
        );
    }

    if let Some(path) = cli.values.get("export-chain").and_then(|v| v.first()) {
        let bytes = sim.governor(0).chain().export();
        std::fs::write(path, &bytes).map_err(|e| format!("writing {path}: {e}"))?;
        println!("\nexported chain ({} bytes) to {path}", bytes.len());
    }
    Ok(())
}

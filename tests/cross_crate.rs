//! Cross-crate integration tests: the full stack exercised through the
//! `prb` facade, including paths the per-crate tests cannot cover
//! (real-Schnorr end-to-end runs, scenario workloads over the protocol,
//! stake machinery next to protocol rounds).

use prb::consensus::election::{elect, ElectionClaim};
use prb::consensus::stake::{StakeTable, StakeTransfer};
use prb::core::behavior::{CollectorProfile, ProviderProfile};
use prb::core::config::{GovernorMode, ProtocolConfig, RevealPolicy};
use prb::core::sim::Simulation;
use prb::crypto::identity::{IdentityManager, NodeId};
use prb::crypto::signer::CryptoScheme;
use prb::ledger::block::Verdict;
use prb::workload::carshare::{CarShareWorkload, RideRequest};
use prb::workload::insurance::{Application, InsuranceWorkload};

#[test]
fn end_to_end_with_real_schnorr_crypto() {
    // The full protocol with genuine Schnorr signatures and the DLEQ VRF
    // (256-bit test group): slower, so a small deployment.
    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 2,
        crypto: CryptoScheme::schnorr_test_256(),
        seed: 31,
        ..Default::default()
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.2,
                active: true
            };
            4
        ])
        .build()
        .unwrap();
    let outcomes = sim.run(3);
    assert!(outcomes.iter().all(|o| o.block_serial.is_some()));
    assert!(sim.chains_agree());
    assert_eq!(sim.metrics(0).forged_detected, 0);
}

#[test]
fn forged_signatures_rejected_under_real_schnorr() {
    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 2,
        crypto: CryptoScheme::schnorr_test_256(),
        seed: 32,
        ..Default::default()
    };
    let mut sim = Simulation::builder(cfg)
        .collector_profile(1, CollectorProfile::forger(0.8))
        .build()
        .unwrap();
    sim.run(3);
    assert!(sim.metrics(0).forged_detected > 0);
    assert!(sim.governor(0).reputation().collector(1).forge() < 0);
    // Nothing fabricated reached the ledger.
    let chain = sim.governor(0).chain();
    for block in chain.iter() {
        for entry in &block.entries {
            assert!(sim.oracle().borrow().peek(entry.tx.id()).is_some());
        }
    }
}

#[test]
fn carshare_payloads_travel_the_whole_stack() {
    let mut sim = Simulation::builder(ProtocolConfig {
        seed: 33,
        ..Default::default()
    })
    .workload(Box::new(CarShareWorkload::new(0.2)))
    .provider_profiles(vec![
        ProviderProfile {
            invalid_rate: 0.0,
            active: true
        };
        8
    ])
    .build()
    .unwrap();
    sim.run(4);
    let chain = sim.governor(0).chain();
    let mut decoded = 0;
    for block in chain.iter() {
        for entry in &block.entries {
            let req = RideRequest::from_bytes(&entry.tx.payload.data)
                .expect("every ledger payload is a ride request");
            // Verdict must track the domain rule for checked entries.
            if entry.verdict == Verdict::CheckedValid {
                assert!(req.is_serviceable());
            }
            decoded += 1;
        }
    }
    assert!(decoded > 50);
}

#[test]
fn insurance_fraud_never_underwritten_when_checked() {
    let mut sim = Simulation::builder(ProtocolConfig {
        governor_mode: GovernorMode::CheckAll,
        seed: 34,
        ..Default::default()
    })
    .workload(Box::new(InsuranceWorkload::new(0.5)))
    .build()
    .unwrap();
    sim.run(4);
    let chain = sim.governor(0).chain();
    for block in chain.iter() {
        for entry in &block.entries {
            let app = Application::from_bytes(&entry.tx.payload.data).unwrap();
            assert!(entry.verdict.counts_as_valid());
            assert!(app.is_insurable(), "check-all admitted a fraud");
        }
    }
}

#[test]
fn identity_manager_keys_interoperate_with_election() {
    // Keys issued by the IM drive a leader election directly.
    let mut im = IdentityManager::new(CryptoScheme::sim(), b"integration");
    let creds: Vec<_> = (0..4)
        .map(|g| im.enroll(NodeId::governor(g)).unwrap())
        .collect();
    let stakes = [3u64, 1, 2, 2];
    let claims: Vec<ElectionClaim> = creds
        .iter()
        .enumerate()
        .filter_map(|(g, c)| ElectionClaim::compute(b"it", 9, g as u32, stakes[g], &c.keypair))
        .collect();
    let pks: Vec<_> = creds
        .iter()
        .map(|c| c.certificate.public_key.clone())
        .collect();
    let (result, rejections) = elect(b"it", 9, &claims, &stakes, &pks);
    assert!(rejections.is_empty());
    assert!(result.is_some());
}

#[test]
fn stake_transfers_survive_a_protocol_run_side_by_side() {
    // The stake machinery and the tx protocol share crypto identities.
    let scheme = CryptoScheme::sim();
    let keys: Vec<_> = (0..4)
        .map(|g| scheme.keypair_from_seed(format!("joint-{g}").as_bytes()))
        .collect();
    let mut table = StakeTable::uniform(4, 10);
    let t1 = StakeTransfer::create(0, 1, 5, 0, &keys[0]);
    let t2 = StakeTransfer::create(1, 2, 7, 0, &keys[1]);
    let rejected = table.apply_all([&t1, &t2], |g| keys.get(g as usize).map(|k| k.public_key()));
    assert!(rejected.is_empty());
    assert_eq!(table.stake(0), Some(5));
    assert_eq!(table.stake(2), Some(17));

    let mut sim = Simulation::new(ProtocolConfig {
        seed: 35,
        ..Default::default()
    })
    .unwrap();
    sim.run(2);
    assert!(sim.chains_agree());
}

#[test]
fn reveal_policies_compose_with_argue() {
    // AfterRounds reveals + argues must not double-count: a tx argued
    // first and revealed later is processed exactly once.
    let mut cfg = ProtocolConfig {
        seed: 36,
        tx_per_provider: 5,
        ..Default::default()
    };
    cfg.reputation.f = 0.9;
    cfg.reveal = RevealPolicy::AfterRounds(2);
    let mut sim = Simulation::builder(cfg)
        .collector_profiles(vec![CollectorProfile::misreporter(0.6); 8])
        .provider_profiles(vec![ProviderProfile::honest_active(); 8])
        .build()
        .unwrap();
    sim.run(10);
    sim.run_drain_rounds(4);
    let m = sim.metrics(0);
    // Every unchecked tx is revealed at most once: revealed ≤ unchecked.
    assert!(m.revealed <= m.unchecked);
    // Loss accounting is consistent: realized loss counts only wrong
    // recordings, each worth 2.
    assert!(m.realized_loss <= 2.0 * m.revealed as f64);
    assert_eq!(m.realized_loss % 2.0, 0.0);
}

#[test]
fn deterministic_across_the_full_facade() {
    let run = |seed| {
        let mut sim = Simulation::builder(ProtocolConfig {
            seed,
            ..Default::default()
        })
        .workload(Box::new(CarShareWorkload::new(0.3)))
        .collector_profile(2, CollectorProfile::misreporter(0.4))
        .build()
        .unwrap();
        sim.run(5);
        (
            sim.governor(0).chain().latest().hash(),
            sim.metrics(0).expected_loss.to_bits(),
            sim.net_stats().total_sent(),
        )
    };
    assert_eq!(run(77), run(77));
}

#[test]
fn probabilistic_reveal_reveals_a_subset() {
    let mut cfg = ProtocolConfig {
        seed: 38,
        tx_per_provider: 6,
        ..Default::default()
    };
    cfg.reputation.f = 0.9;
    cfg.reveal = RevealPolicy::Probabilistic {
        prob: 0.5,
        rounds: 1,
    };
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.8,
                active: false
            };
            8
        ])
        .build()
        .unwrap();
    sim.run(10);
    sim.run_drain_rounds(3);
    let m = sim.metrics(0);
    assert!(m.unchecked > 0);
    assert!(m.revealed > 0);
    assert!(
        m.revealed < m.unchecked,
        "p=0.5 reveal should leave some unrevealed: {} of {}",
        m.revealed,
        m.unchecked
    );
}

#[test]
fn chain_export_import_roundtrips_a_real_run() {
    let mut sim = Simulation::builder(ProtocolConfig {
        seed: 39,
        ..Default::default()
    })
    .collector_profile(1, CollectorProfile::misreporter(0.5))
    .build()
    .unwrap();
    sim.run(5);
    let chain = sim.governor(0).chain();
    let bytes = chain.export();
    let imported = prb::ledger::chain::Chain::import(&bytes).expect("import verifies");
    assert_eq!(imported.height(), chain.height());
    assert_eq!(imported.latest().hash(), chain.latest().hash());
    assert_eq!(imported.tx_count(), chain.tx_count());
    assert_eq!(imported.audit(), None);
    // Tampering with the exported bytes is rejected on import (flip a byte
    // inside some block body, past the 16-byte header).
    let mut tampered = bytes.clone();
    let idx = tampered.len() / 2;
    tampered[idx] ^= 0x40;
    assert!(
        prb::ledger::chain::Chain::import(&tampered).is_err(),
        "tampered export imported cleanly"
    );
    // Truncation is rejected.
    assert!(prb::ledger::chain::Chain::import(&bytes[..bytes.len() - 3]).is_err());
}

#[test]
fn sim_and_schnorr_runs_agree_on_identical_traces() {
    // The DESIGN.md substitution claim: the sim signer changes crypto cost,
    // not protocol behaviour. Replay one recorded trace under both schemes
    // and compare the *semantic* ledger content (which transactions, which
    // verdicts) — signatures differ, so hashes do; decisions must not.
    use prb::workload::trace::Trace;
    use prb::workload::CarShareWorkload;

    let record = || Trace::record(&mut CarShareWorkload::new(0.3), 4, 4, 2, 777).into_workload();
    let run = |crypto: CryptoScheme| {
        let cfg = ProtocolConfig {
            providers: 4,
            collectors: 4,
            governors: 3,
            replication: 2,
            tx_per_provider: 2,
            crypto,
            seed: 41,
            ..Default::default()
        };
        let mut sim = Simulation::builder(cfg)
            .workload(Box::new(record()))
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.0,
                    active: true
                };
                4
            ])
            .build()
            .unwrap();
        sim.run(4);
        sim.run_drain_rounds(2);
        let chain = sim.governor(0).chain();
        let mut content: Vec<(Vec<u8>, Verdict)> = chain
            .iter()
            .flat_map(|b| &b.entries)
            .map(|e| (e.tx.payload.data.clone(), e.verdict))
            .collect();
        content.sort();
        (content, sim.metrics(0).checked, sim.metrics(0).unchecked)
    };
    let (sim_content, sim_checked, _) = run(CryptoScheme::sim());
    let (sch_content, sch_checked, _) = run(CryptoScheme::schnorr_test_256());
    assert_eq!(
        sim_content, sch_content,
        "ledger content differs across schemes"
    );
    assert_eq!(sim_checked, sch_checked);
    assert!(!sim_content.is_empty());
}

#[test]
fn verify_pool_threads_never_change_the_ledger() {
    // The config contract: `verify_threads` changes wall-clock only. A
    // pooled run and a single-threaded run with the same seed must produce
    // byte-identical chain exports on every governor.
    let run = |verify_threads: usize| {
        let cfg = ProtocolConfig {
            providers: 4,
            collectors: 4,
            governors: 3,
            replication: 2,
            tx_per_provider: 2,
            crypto: CryptoScheme::schnorr_test_256(),
            verify_threads,
            seed: 91,
            ..Default::default()
        };
        let mut sim = Simulation::builder(cfg)
            .provider_profiles(vec![
                ProviderProfile {
                    invalid_rate: 0.2,
                    active: true
                };
                4
            ])
            .collector_profile(1, CollectorProfile::forger(0.5))
            .build()
            .unwrap();
        sim.run(4);
        (0..3)
            .map(|g| sim.governor(g).chain().export())
            .collect::<Vec<_>>()
    };
    let single = run(1);
    let pooled = run(4);
    assert_eq!(single, pooled, "pooled verification altered the ledger");
    assert!(single.iter().all(|bytes| bytes.len() > 100));
}

#[test]
fn obs_trace_reconciles_with_message_stats_across_the_facade() {
    use prb::obs::{EventKind, Obs, RingRecorder};
    use std::rc::Rc;

    let cfg = ProtocolConfig {
        providers: 4,
        collectors: 4,
        governors: 3,
        replication: 2,
        tx_per_provider: 2,
        reveal: RevealPolicy::AfterRounds(1),
        seed: 77,
        ..Default::default()
    };
    let ring = Rc::new(RingRecorder::new(1 << 20));
    let obs = Obs::with_sink(ring.clone());
    let mut sim = Simulation::builder(cfg)
        .provider_profiles(vec![
            ProviderProfile {
                invalid_rate: 0.3,
                active: true
            };
            4
        ])
        .collector_profile(0, CollectorProfile::misreporter(0.5))
        .build()
        .unwrap();
    sim.set_obs(Rc::clone(&obs));
    sim.run(6);
    sim.run_drain_rounds(2);

    // Event counts match the kernel's per-kind MessageStats exactly.
    let stats = sim.net_stats();
    let counts = obs.msg_counts();
    assert!(!counts.is_empty());
    for (kind, c) in &counts {
        let k = stats.kind(kind);
        assert_eq!(c.sent, k.sent, "{kind} sent");
        assert_eq!(c.delivered, k.delivered, "{kind} delivered");
        assert_eq!(c.dropped, k.dropped, "{kind} dropped");
    }
    assert_eq!(
        counts.values().map(|c| c.sent).sum::<u64>(),
        stats.total_sent()
    );

    // Byte accounting: the bytes carried by delivered/dropped events sum
    // to the kernel's per-direction byte totals.
    assert!(
        ring.total_recorded() <= 1 << 20,
        "ring must not have evicted"
    );
    let (mut sent_b, mut dlvd_b, mut drop_b) = (0u64, 0u64, 0u64);
    for e in ring.events() {
        match e.kind {
            EventKind::MsgSent { bytes, .. } => sent_b += bytes,
            EventKind::MsgDelivered { bytes, .. } => dlvd_b += bytes,
            EventKind::MsgDropped { bytes, .. } => drop_b += bytes,
            _ => {}
        }
    }
    // External driver injections are sized 0, so sent bytes from events
    // undercount the kernel total by exactly 0 (they are recorded as 0
    // there too): the totals must agree.
    assert_eq!(sent_b, stats.total_bytes_sent());
    assert_eq!(dlvd_b, stats.total_bytes_delivered());
    assert_eq!(drop_b, stats.total_bytes_dropped());
    assert_eq!(dlvd_b + drop_b, sent_b, "no loss faults: all bytes settle");
}

//! Integration tests for the `prb-sim` command-line binary.

use std::process::Command;

fn prb_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_prb-sim"))
}

#[test]
fn help_prints_usage() {
    let out = prb_sim().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("--providers"));
    assert!(text.contains("--workload"));
    assert!(text.contains("--export-chain"));
}

#[test]
fn default_run_reports_agreement_and_reputation() {
    let out = prb_sim()
        .args(["--rounds", "3"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("agreement: true"), "{text}");
    assert!(text.contains("reputation (governor g0):"));
    assert!(text.contains("round   1: leader g"));
}

#[test]
fn misreporter_flag_is_reflected_in_output() {
    let out = prb_sim()
        .args(["--rounds", "4", "--misreporter", "2:0.8", "--seed", "5"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("[misreporter 0.8]"), "{text}");
}

#[test]
fn export_chain_writes_importable_bytes() {
    let dir = std::env::temp_dir().join(format!("prb-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chain.bin");
    let out = prb_sim()
        .args([
            "--rounds",
            "3",
            "--workload",
            "insurance",
            "--export-chain",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&path).expect("export written");
    let chain = prb::ledger::chain::Chain::import(&bytes).expect("export is importable");
    assert!(chain.height() >= 3);
    assert_eq!(chain.audit(), None);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_cleanly() {
    let out = prb_sim()
        .args(["--mode", "nonsense"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let out = prb_sim()
        .args(["--misreporter", "notanumber"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let out = prb_sim()
        .args(["--workload", "unknown"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
}

#[test]
fn deterministic_output_per_seed() {
    let run = || {
        let out = prb_sim()
            .args(["--rounds", "3", "--seed", "91"])
            .output()
            .expect("binary runs");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).to_string()
    };
    assert_eq!(run(), run());
}

//! The case-execution loop behind the `proptest!` macro.

use rand::{SeedableRng, StdRng};

use crate::strategy::Strategy;

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to generate and run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property assertion.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed so
/// failures reproduce without persisted regression files.
fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Draws `config.cases` values from `strategy` and runs `test` on each;
/// panics (failing the enclosing `#[test]`) on the first assertion error.
pub fn run<S, F>(config: ProptestConfig, strategy: S, mut test: F, name: &str)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_for(name));
    for case in 0..config.cases {
        let value = strategy.generate(&mut rng);
        if let Err(e) = test(value) {
            panic!(
                "proptest '{name}' failed at case {case}/{} (deterministic seed {:#x}):\n{e}",
                config.cases,
                seed_for(name),
            );
        }
    }
}

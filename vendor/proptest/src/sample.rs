//! Sampling helper types.

/// A position-independent index: generated once, then projected onto any
/// collection length with [`index`](Index::index).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Projects onto `0..len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty collection");
        ((self.0 as u128 * len as u128) >> 64) as usize
    }
}

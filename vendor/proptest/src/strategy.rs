//! Value-generation strategies.

use rand::{Rng, RngCore, StdRng};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a
/// strategy simply draws a concrete value from the runner's RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
arbitrary_via_gen!(u8, u16, u32, u64, usize, bool, f64, f32);

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut StdRng) -> Self {
        crate::sample::Index::new(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: rand::SampleUniform + Copy> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7, I 8, J 9);
}

/// A uniform choice between boxed strategies of one value type; built by
/// the `prop_oneof!` macro.
pub struct Union<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// An empty union. Generating from it panics; add arms with
    /// [`or`](Self::or).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { arms: Vec::new() }
    }

    /// Adds one alternative.
    pub fn or<S: Strategy<Value = V> + 'static>(mut self, strat: S) -> Self {
        self.arms.push(Box::new(strat));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut StdRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let pick = rng.gen_range(0..self.arms.len());
        self.arms[pick].generate(rng)
    }
}

//! Collection strategies.

use rand::{Rng, StdRng};

use crate::strategy::Strategy;

/// Lengths accepted by [`vec`]: an exact `usize`, `lo..hi`, or `lo..=hi`.
pub trait IntoSizeRange {
    /// Resolves to inclusive `(min, max)` bounds.
    fn bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for std::ops::Range<usize> {
    fn bounds(self) -> (usize, usize) {
        assert!(self.end > self.start, "empty size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        (*self.start(), *self.end())
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.min..=self.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are drawn
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.bounds();
    VecStrategy { element, min, max }
}

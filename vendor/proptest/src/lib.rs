//! A workspace-local, dependency-free stand-in for the parts of the
//! `proptest` 1.x API that `prb` uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation. It keeps the surface the
//! repository's property tests exercise — [`Strategy`], [`any`],
//! [`Just`], tuple/range/collection strategies, `prop_oneof!`, the
//! `proptest!` test macro and its `prop_assert*` family — but trades the
//! real crate's shrinking and persistence for simplicity:
//!
//! - **No shrinking.** A failing case reports its inputs (via `Debug`
//!   when available in the assertion message) and the deterministic seed,
//!   but is not minimized.
//! - **No regression persistence.** `*.proptest-regressions` files are
//!   ignored.
//! - **Deterministic generation.** Each test's RNG is seeded from a hash
//!   of the test name, so failures reproduce across runs and platforms.
//! - `prop_assume!` skips the case rather than re-drawing it.

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Combines several strategies with the same value type, drawing from one
/// of them uniformly at random per case.
///
/// Weighted arms (`w => strategy`) from the real crate are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($arm))+
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supported grammar (a subset of the real crate's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(
                    $config,
                    ($($strat,)+),
                    |($($arg,)+)| {
                        $body
                        ::core::result::Result::Ok(())
                    },
                    stringify!($name),
                );
            }
        )*
    };
}

/// Fails the current case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case if the two values are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Skips the current case if the precondition does not hold.
///
/// The real crate rejects and re-draws; this stand-in simply counts the
/// case as vacuously passing, which is adequate for the low rejection
/// rates the repository's tests exhibit.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

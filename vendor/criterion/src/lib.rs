//! A workspace-local, dependency-free stand-in for the parts of the
//! `criterion` 0.5 API that `prb`'s benches use.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal harness. It keeps the structural API —
//! [`Criterion`], [`BenchmarkGroup`], `bench_function`, `iter`,
//! `iter_batched`, [`Throughput`], `criterion_group!`/`criterion_main!` —
//! but replaces the statistical machinery with a simple
//! warm-up-then-measure loop that reports the mean wall-clock time per
//! iteration. Good enough to compare hot paths before/after a change;
//! not a replacement for real criterion's outlier analysis.
//!
//! When the binary is invoked with `--test` (as `cargo test --benches`
//! does), each benchmark runs exactly once to check it executes.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` sizes its batches. The stand-in runs one routine
/// call per setup call regardless of the variant.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declared per-iteration work, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing handle passed to `bench_function` closures.
pub struct Bencher {
    test_mode: bool,
    /// Mean time per iteration measured by the last `iter*` call.
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over repeated calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            (self.mean, self.iters) = (Duration::ZERO, 1);
            return;
        }
        // Warm up, then scale the batch so measurement takes ~100ms.
        let warm = Instant::now();
        let mut warm_iters = 0u64;
        while warm.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm.elapsed().as_nanos().max(1) / warm_iters.max(1) as u128;
        let iters = (100_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.mean = start.elapsed() / iters as u32;
        self.iters = iters;
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            (self.mean, self.iters) = (Duration::ZERO, 1);
            return;
        }
        // Batched routines are typically expensive; cap the sample count.
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < 20 && total < Duration::from_millis(200) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean = total / iters.max(1) as u32;
        self.iters = iters;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration (reported, not enforced).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes samples itself.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id.as_ref());
        if self.criterion.test_mode {
            println!("{label}: ok (test mode)");
            return self;
        }
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if bencher.mean > Duration::ZERO => {
                let per_sec = n as f64 / bencher.mean.as_secs_f64();
                format!("  {:>10.1} MiB/s", per_sec / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) if bencher.mean > Duration::ZERO => {
                format!("  {:>10.0} elem/s", n as f64 / bencher.mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!(
            "{label:<44} {:>12} /iter ({} iters){rate}",
            format_duration(bencher.mean),
            bencher.iters
        );
        self
    }

    /// Ends the group (a no-op beyond matching the real API).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// The top-level benchmark harness.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` passes `--test`; `cargo bench` passes
        // `--bench`. Filters and other flags are ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.as_ref().to_string())
            .bench_function("", f);
        self
    }
}

/// Bundles benchmark functions under one name, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Extension methods for slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            // `&mut R` is a sized RngCore, so the Rng methods apply.
            let j = (*rng).gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = (*rng).gen_range(0..self.len());
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements staying sorted is ~impossible");
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = StdRng::seed_from_u64(10);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}

//! A workspace-local, dependency-free stand-in for the parts of the
//! `rand` 0.8 API that `prb` uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this minimal implementation instead of the real crate. It is
//! **not** a cryptographic RNG and is not a general replacement for
//! `rand`; it covers exactly the surface the repository exercises:
//!
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`],
//! - [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! - [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`],
//! - [`thread_rng`] (deterministic per-thread generator).
//!
//! Determinism is a feature here: the simulation kernel requires
//! bit-for-bit reproducible runs for a given seed, which this
//! implementation provides on every platform.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// The raw generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64` (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — the canonical seed expander for xoshiro generators.
pub(crate) struct SplitMix64(pub(crate) u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that can be sampled uniformly from the full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over a sub-range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive = false`) or
    /// `[low, high]` (`inclusive = true`).
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let (lo, hi) = (low as u64, high as u64);
                let span = if inclusive {
                    match hi.checked_sub(lo).and_then(|w| w.checked_add(1)) {
                        Some(w) => w,
                        // Full u64 range.
                        None => return rng.next_u64() as $t,
                    }
                } else {
                    assert!(hi > lo, "cannot sample empty range");
                    hi - lo
                };
                // Widening-multiply range reduction (bias < 2^-64).
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo + draw) as $t
            }
        }
    )*};
}
uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Shift to unsigned space to compute the span safely.
                let (lo, hi) = (low as i64, high as i64);
                let lo_u = (lo as u64).wrapping_add(1 << 63);
                let hi_u = (hi as u64).wrapping_add(1 << 63);
                let drawn = u64::sample_range(rng, lo_u, hi_u, inclusive);
                drawn.wrapping_sub(1 << 63) as i64 as $t
            }
        }
    )*};
}
uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(high >= low, "cannot sample empty float range");
        low + f64::sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(high >= low, "cannot sample empty float range");
        low + f32::sample(rng) * (high - low)
    }
}

/// Range expressions accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// The ergonomic sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s full range (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    /// Fills `dest` with uniform bytes (the byte-slice subset of the real
    /// crate's `Fill`-based method).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A deterministic per-thread generator.
///
/// Unlike the real `rand`, this is **not** entropy-seeded: determinism is
/// required by the simulation kernel, and nothing in the workspace relies
/// on `thread_rng` being unpredictable.
pub fn thread_rng() -> StdRng {
    StdRng::seed_from_u64(0x7072_625f_7468_7264) // "prb_thrd"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&z));
            let w: usize = rng.gen_range(0..=0);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "{hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 11];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_dyn_like_generics() {
        fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
            // The pattern the crypto crate uses: generic ?Sized rng.
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(6);
        assert!(draw(&mut rng) < 100);
    }
}
